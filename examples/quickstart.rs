//! Quickstart: schedule a small batch of transactions on a clique with the
//! online greedy scheduler (Algorithm 1) and inspect the result.
//!
//! ```text
//! cargo run -p dtm-examples --bin quickstart
//! ```

use dtm_core::GreedyPolicy;
use dtm_graph::topology;
use dtm_model::{TraceSource, WorkloadGenerator, WorkloadSpec};
use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};

fn main() {
    // 1. A communication network: complete graph on 8 nodes, unit weights.
    let network = topology::clique(8);

    // 2. A workload: one transaction per node, each requesting 2 of 6
    //    shared objects placed uniformly at random (seeded).
    let spec = WorkloadSpec::batch_uniform(6, 2);
    let instance = WorkloadGenerator::new(spec, 42).generate(&network);
    println!(
        "workload: {} transactions over {} objects on {}",
        instance.num_txns(),
        instance.num_objects(),
        network.name()
    );

    // 3. Run the online greedy scheduler (Algorithm 1 of the paper).
    let result = run_policy(
        &network,
        TraceSource::new(instance),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    result.expect_ok();

    // 4. Independently re-validate the execution from its event log.
    validate_events(&network, &result, &ValidationConfig::default())
        .expect("execution is conflict-free and physically consistent");

    // 5. Inspect.
    println!("\nschedule (txn -> executes at):");
    for (txn, time) in result.schedule.by_time() {
        let tx = &result.txns[&txn];
        let objs: Vec<String> = tx.objects().map(|o| o.to_string()).collect();
        println!(
            "  {txn} @ node {} needs [{}] -> t={time}",
            tx.home,
            objs.join(", ")
        );
    }
    println!("\nmakespan            : {}", result.metrics.makespan);
    println!("mean latency        : {:.2}", result.metrics.latency.mean);
    println!("communication cost  : {}", result.metrics.comm_cost);
    println!("object hops         : {}", result.metrics.hops);
}
