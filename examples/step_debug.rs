//! Single-step a small instance on the tickable step kernel and
//! pretty-print each tick's [`StepEffects`] — living documentation of
//! the engine's phase order:
//!
//! ```text
//! creation -> receive -> generate -> schedule -> execute -> forward
//! ```
//!
//! ```text
//! cargo run -p dtm-examples --bin step_debug
//! ```

use dtm_core::GreedyPolicy;
use dtm_graph::topology;
use dtm_model::{Instance, ObjectId, ObjectInfo, TraceSource, Transaction, TxnId};
use dtm_sim::{Engine, EngineConfig, StepEffects};
use std::fmt::Write as _;

/// One line per phase that did something, in phase order.
fn pretty(fx: &StepEffects) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "t={:<3} live_after={}", fx.t, fx.live_after);
    if !fx.created.is_empty() {
        let _ = writeln!(out, "  created   {:?}", fx.created);
    }
    if !fx.delivered.is_empty() {
        for d in &fx.delivered {
            let _ = writeln!(
                out,
                "  delivered {} at {} (from {})",
                d.object, d.node, d.from
            );
        }
    }
    if !fx.arrived.is_empty() {
        let _ = writeln!(out, "  arrived   {:?}", fx.arrived);
    }
    for (txn, at) in &fx.scheduled {
        let _ = writeln!(out, "  scheduled {txn} -> exec at {at}");
    }
    if !fx.committed.is_empty() {
        let _ = writeln!(out, "  committed {:?}", fx.committed);
    }
    if !fx.aborted.is_empty() {
        let _ = writeln!(out, "  aborted   {:?}", fx.aborted);
    }
    for d in &fx.departed {
        let _ = writeln!(
            out,
            "  departed  {}: {} -> {} (arrives t={})",
            d.object, d.from, d.to, d.arrive
        );
    }
    if fx.is_empty() {
        let _ = writeln!(out, "  (quiet step: objects in transit)");
    }
    out
}

fn main() {
    // A line of 5 nodes; one object at node 0, contended by three
    // transactions at increasing distance — the object must visit them
    // in scheduled-execution order.
    let network = topology::line(5);
    let objects = vec![ObjectInfo {
        id: ObjectId(0),
        origin: dtm_graph::NodeId(0),
        created_at: 0,
    }];
    let txns = vec![
        Transaction::new(TxnId(0), dtm_graph::NodeId(2), [ObjectId(0)], 0),
        Transaction::new(TxnId(1), dtm_graph::NodeId(4), [ObjectId(0)], 0),
        Transaction::new(TxnId(2), dtm_graph::NodeId(1), [ObjectId(0)], 3),
    ];
    let instance = Instance::new(objects, txns);

    println!("step_debug: line(5), 1 object, 3 transactions, greedy policy");
    println!("phases per tick: creation -> receive -> generate -> schedule -> execute -> forward");
    println!();

    let mut kernel = Engine::new(network, GreedyPolicy::new(), EngineConfig::default())
        .into_kernel(TraceSource::new(instance));

    // Single-step: each tick returns a typed StepEffects value.
    while let Some(fx) = kernel.tick() {
        print!("{}", pretty(fx));
    }

    let result = kernel.finish();
    println!();
    println!(
        "done: {} commits, makespan {}, comm cost {}, {} violations",
        result.metrics.committed,
        result.metrics.makespan,
        result.metrics.comm_cost,
        result.violations.len()
    );
}
