//! Network-on-chip scenario: an 8x8 mesh where cores issue transactions
//! against mostly-local shared cache lines (mobile objects), with a few
//! global hot lines — the kind of architecture the paper's introduction
//! motivates (multiprocessors / networks-on-chip).
//!
//! Compares Algorithm 1 (online greedy) against FIFO under increasing
//! load and prints a latency table.
//!
//! ```text
//! cargo run -p dtm-examples --release --bin noc_mesh
//! ```

use dtm_core::{FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::{
    FiniteArrivals, Instance, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec,
};
use dtm_sim::{run_policy, EngineConfig, RunResult};

fn mesh_workload(rate: f64, seed: u64) -> (dtm_graph::Network, Instance) {
    let network = topology::grid(&[8, 8]);
    // 64 cache lines; cores prefer lines homed within 2 hops (locality),
    // modeled with the neighborhood object-choice distribution.
    let spec = WorkloadSpec {
        num_objects: 64,
        k: 2,
        object_choice: ObjectChoice::Neighborhood { radius: 2 },
        arrival: FiniteArrivals::Bernoulli { rate, horizon: 50 },
    };
    let instance = WorkloadGenerator::new(spec, seed).generate(&network);
    (network, instance)
}

fn show(label: &str, rate: f64, res: &RunResult) {
    println!(
        "{label:<8} rate={rate:<5} txns={:<5} makespan={:<6} mean={:<8.2} p95={:<6} max={:<6} comm={}",
        res.metrics.committed,
        res.metrics.makespan,
        res.metrics.latency.mean,
        res.metrics.latency.p95,
        res.metrics.latency.max,
        res.metrics.comm_cost,
    );
}

fn main() {
    println!("8x8 mesh NoC, 64 mobile cache lines, locality radius 2\n");
    for rate in [0.05, 0.15, 0.3] {
        let (network, instance) = mesh_workload(rate, 7);
        if instance.txns.is_empty() {
            continue;
        }
        let greedy = run_policy(
            &network,
            TraceSource::new(instance.clone()),
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        greedy.expect_ok();
        let fifo = run_policy(
            &network,
            TraceSource::new(instance),
            FifoPolicy::new(),
            EngineConfig::default(),
        );
        fifo.expect_ok();
        show("greedy", rate, &greedy);
        show("fifo", rate, &fifo);
        let speedup = fifo.metrics.latency.mean / greedy.metrics.latency.mean.max(1e-9);
        println!("         -> greedy mean-latency speedup over fifo: {speedup:.2}x\n");
    }
}
