//! All four online schedulers head to head on a topology of your choice,
//! including the fully distributed Algorithm 3.
//!
//! ```text
//! cargo run -p dtm-examples --release --bin scheduler_shootout -- [topology]
//! # topology: clique | line | grid | hypercube | star | cluster (default: grid)
//! ```

use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{ClosedLoopSource, WorkloadSpec};
use dtm_offline::{ClusterScheduler, LineScheduler, ListScheduler, StarScheduler};
use dtm_sim::{run_policy, EngineConfig, RunResult, SchedulingPolicy};

fn pick_network(name: &str) -> Network {
    match name {
        "clique" => topology::clique(24),
        "line" => topology::line(48),
        "hypercube" => topology::hypercube(5),
        "star" => topology::star(4, 8),
        "cluster" => topology::cluster(4, 5, 6),
        _ => topology::grid(&[6, 6]),
    }
}

fn bucket_for(net: &Network) -> Box<dyn SchedulingPolicy> {
    use dtm_graph::Structured;
    match net.structured() {
        Some(Structured::Line { .. }) => Box::new(BucketPolicy::new(LineScheduler)),
        Some(Structured::Cluster { .. }) => {
            Box::new(BucketPolicy::new(ClusterScheduler::default()))
        }
        Some(Structured::Star { .. }) => Box::new(BucketPolicy::new(StarScheduler::default())),
        _ => Box::new(BucketPolicy::new(ListScheduler::fifo())),
    }
}

fn run_one(
    net: &Network,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulingPolicy>,
    cfg: EngineConfig,
) -> RunResult {
    let src = ClosedLoopSource::new(net.clone(), spec.clone(), 2, 99);
    let res = run_policy(net, src, policy, cfg);
    res.expect_ok();
    res
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "grid".into());
    let net = pick_network(&arg);
    let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
    println!(
        "{} ({} nodes, diameter {}), closed-loop workload, k=2\n",
        net.name(),
        net.n(),
        net.diameter()
    );
    println!(
        "{:<34} {:>8} {:>9} {:>8} {:>9}",
        "policy", "makespan", "mean-lat", "max-lat", "comm"
    );
    let mut runs: Vec<RunResult> = vec![
        run_one(
            &net,
            &spec,
            Box::new(GreedyPolicy::new()),
            EngineConfig::default(),
        ),
        run_one(&net, &spec, bucket_for(&net), EngineConfig::default()),
        run_one(
            &net,
            &spec,
            Box::new(FifoPolicy::new()),
            EngineConfig::default(),
        ),
        run_one(
            &net,
            &spec,
            Box::new(TspPolicy::new()),
            EngineConfig::default(),
        ),
    ];
    // Algorithm 3: fully distributed (half-speed objects, sparse cover).
    runs.push(run_one(
        &net,
        &spec,
        Box::new(DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 7)),
        DistributedBucketPolicy::<ListScheduler>::engine_config(),
    ));
    for res in &runs {
        println!(
            "{:<34} {:>8} {:>9.1} {:>8} {:>9}",
            res.policy,
            res.metrics.makespan,
            res.metrics.latency.mean,
            res.metrics.latency.max,
            res.metrics.comm_cost
        );
    }
}
