//! Rack-scale datastore scenario: a cluster graph of racks (cliques of β
//! servers, expensive inter-rack bridges of weight γ) serving a skewed
//! (Zipf) transactional workload — the cluster architecture analyzed in
//! Section IV-D.
//!
//! Runs Algorithm 2 (online bucket schedule) around the two-phase cluster
//! batch scheduler and prints bucket-level telemetry alongside the
//! makespan comparison against FIFO.
//!
//! ```text
//! cargo run -p dtm-examples --release --bin cluster_datastore
//! ```

use dtm_core::{BucketPolicy, BucketStats, FifoPolicy};
use dtm_graph::topology;
use dtm_model::{ClosedLoopSource, ObjectChoice, WorkloadSpec};
use dtm_offline::ClusterScheduler;
use dtm_sim::{run_policy, EngineConfig};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    // 4 racks x 6 servers, inter-rack latency 8x the intra-rack hop.
    let network = topology::cluster(4, 6, 8);
    println!(
        "{}: {} servers, diameter {}\n",
        network.name(),
        network.n(),
        network.diameter()
    );
    let spec = WorkloadSpec {
        num_objects: 24,
        k: 2,
        object_choice: ObjectChoice::Zipf { exponent: 0.9 },
        ..WorkloadSpec::batch_uniform(24, 2)
    };

    // Bucket(cluster) — Algorithm 2 around the SPAA'17-style substrate.
    let stats = Arc::new(Mutex::new(BucketStats::default()));
    let src = ClosedLoopSource::new(network.clone(), spec.clone(), 3, 11);
    let bucket = run_policy(
        &network,
        src,
        BucketPolicy::new(ClusterScheduler::default()).with_stats(Arc::clone(&stats)),
        EngineConfig::default(),
    );
    bucket.expect_ok();

    // FIFO baseline on the identical workload.
    let src = ClosedLoopSource::new(network.clone(), spec, 3, 11);
    let fifo = run_policy(&network, src, FifoPolicy::new(), EngineConfig::default());
    fifo.expect_ok();

    println!("policy            makespan  mean-lat  max-lat  comm");
    for res in [&bucket, &fifo] {
        println!(
            "{:<17} {:<9} {:<9.1} {:<8} {}",
            res.policy,
            res.metrics.makespan,
            res.metrics.latency.mean,
            res.metrics.latency.max,
            res.metrics.comm_cost
        );
    }

    let s = stats.lock();
    println!(
        "\nbucket telemetry (Lemma 3 bound: level <= {}):",
        network.max_bucket_level()
    );
    let mut per_level: std::collections::BTreeMap<u32, usize> = Default::default();
    for &lvl in s.levels.values() {
        *per_level.entry(lvl).or_insert(0) += 1;
    }
    for (lvl, count) in &per_level {
        let activations = s.activations.get(lvl).copied().unwrap_or(0);
        println!("  level {lvl}: {count} txns inserted, {activations} non-empty activations");
    }
    println!("  probe overflows: {}", s.overflows);
}
