//! Offline vs online on the same batch instance — the paper's central
//! contrast made concrete.
//!
//! The same transaction sequence — arriving one step apart in an
//! adversarial ping-pong order along a line — is scheduled three ways and
//! each schedule is *executed* on the simulator:
//!
//! 1. the **exact optimum** with full clairvoyance (exhaustive search —
//!    instance kept tiny), which may reorder the whole future;
//! 2. the **offline heuristic** for the topology (line sweep), also
//!    clairvoyant;
//! 3. the **online greedy** (Algorithm 1), which commits to an execution
//!    time the moment each transaction arrives, with no lookahead.
//!
//! ```text
//! cargo run -p dtm-examples --release --bin offline_vs_online
//! ```

use dtm_core::GreedyPolicy;
use dtm_graph::{topology, NodeId};
use dtm_model::{Instance, ObjectId, ObjectInfo, TraceSource, Transaction, TxnId};
use dtm_offline::{BatchContext, BatchScheduler, ExactScheduler, LineScheduler};
use dtm_sim::{run_policy, EngineConfig, FixedSchedulePolicy};

fn main() {
    let net = topology::line(16);
    // A small adversarial instance: one hot object requested from
    // alternating ends of the line.
    let objects = vec![ObjectInfo {
        id: ObjectId(0),
        origin: NodeId(8),
        created_at: 0,
    }];
    // Arrivals one step apart, ping-ponging across the line: an online
    // scheduler is forced to commit before it sees the pattern.
    let homes = [15u32, 1, 12, 3, 10, 5];
    let txns: Vec<Transaction> = homes
        .iter()
        .enumerate()
        .map(|(i, &h)| Transaction::new(TxnId(i as u64), NodeId(h), [ObjectId(0)], i as u64))
        .collect();
    let instance = Instance::new(objects.clone(), txns.clone());
    // Clairvoyant variant: the same transactions, all known at time 0
    // (objects can head to them immediately — full lookahead).
    let batch_txns: Vec<Transaction> = txns
        .iter()
        .map(|t| Transaction::new(t.id, t.home, t.objects(), 0))
        .collect();
    let batch_instance = Instance::new(objects, batch_txns);
    let ctx = BatchContext::fresh(batch_instance.objects.iter().map(|o| (o.id, o.origin)));

    println!(
        "line(16), one hot object at n8, requesters at {homes:?},\n\
         arriving one step apart in that (ping-pong) order\n"
    );
    println!("{:<22} {:>9}", "scheduler", "makespan");

    // 1. Exact optimum (clairvoyant), executed.
    let opt = ExactScheduler.schedule(&net, &batch_instance.txns, &ctx);
    let res = run_policy(
        &net,
        TraceSource::new(batch_instance.clone()),
        FixedSchedulePolicy::new(opt),
        EngineConfig::default(),
    );
    res.expect_ok();
    println!("{:<22} {:>9}", "exact optimum", res.metrics.makespan);

    // 2. Offline line sweep (clairvoyant), executed.
    let sweep = LineScheduler.schedule(&net, &batch_instance.txns, &ctx);
    let res = run_policy(
        &net,
        TraceSource::new(batch_instance),
        FixedSchedulePolicy::new(sweep),
        EngineConfig::default(),
    );
    res.expect_ok();
    println!("{:<22} {:>9}", "offline line-sweep", res.metrics.makespan);

    // 3. Online greedy (no lookahead).
    let res = run_policy(
        &net,
        TraceSource::new(instance),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    res.expect_ok();
    println!(
        "{:<22} {:>9}",
        "online greedy (Alg 1)", res.metrics.makespan
    );

    println!(
        "\nThe gap between row 3 and row 1 is the *price of being online*.\n\
         On instances this small the greedy coloring's gap-filling often\n\
         matches the optimum exactly (as the paper's Theorem 1 slack\n\
         suggests); experiment E8 (`cargo run -p dtm-bench --release --bin\n\
         exp_e8`) shows where online schedulers separate at scale."
    );
}
