//! Runtime state of objects and live transactions, and the read-only
//! [`SystemView`] handed to scheduling policies each step.

use dtm_graph::{Network, NodeId, Weight};
use dtm_model::{ObjectId, ObjectInfo, Time, Transaction, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Where an object is right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectPlace {
    /// Resting at a node (free or waiting for a transaction there).
    At(NodeId),
    /// Traversing the edge `from -> next`; arrives at `next` at `arrive`.
    Hop {
        /// The node the object departed from.
        from: NodeId,
        /// The node being approached.
        next: NodeId,
        /// Arrival time at `next`.
        arrive: Time,
    },
}

/// Full runtime state of one object.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObjectState {
    /// Static info (id, origin, creation time).
    pub info: ObjectInfo,
    /// Current place.
    pub place: ObjectPlace,
    /// The last transaction that acquired the object (`L_t(o_i)` in the
    /// paper once that transaction has executed), or `None` if no
    /// transaction has acquired it yet.
    pub last_holder: Option<TxnId>,
}

impl ObjectState {
    /// The paper's *current position* of the object at time `now`, as used
    /// by the extended dependency graph `H'_t`: a pair `(node, ready_at)`
    /// meaning the object can start moving from `node` at time `ready_at`.
    ///
    /// For a resting object this is its node, ready now. For an in-transit
    /// object the paper places a temporary transaction at an artificial
    /// node connected to the next hop `v` with weight equal to the
    /// remaining travel time — equivalently, the object is available at
    /// `v` at its arrival time.
    pub fn position(&self, now: Time) -> (NodeId, Time) {
        match self.place {
            ObjectPlace::At(v) => (v, now),
            ObjectPlace::Hop { next, arrive, .. } => (next, arrive),
        }
    }

    /// Effective distance from the object's current position to `target`:
    /// residual transit time plus the shortest-path distance onward. This
    /// is the edge weight to the temporary transaction in `H'_t`.
    pub fn effective_distance(&self, network: &Network, target: NodeId, now: Time) -> Weight {
        let (node, ready_at) = self.position(now);
        ready_at.saturating_sub(now) + network.distance(node, target)
    }
}

/// A live (generated, not yet committed) transaction and its schedule
/// status.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LiveTxn {
    /// The transaction.
    pub txn: Transaction,
    /// Its designated execution time, once assigned. The paper's
    /// algorithms never change this after assignment.
    pub scheduled: Option<Time>,
}

/// Read-only snapshot of the system handed to policies each step.
pub struct SystemView<'a> {
    /// Current time step.
    pub now: Time,
    /// The communication network.
    pub network: &'a Network,
    live: &'a BTreeMap<TxnId, LiveTxn>,
    objects: &'a BTreeMap<ObjectId, ObjectState>,
    /// Node-local forwarding pointers: where each node last sent each
    /// object (the trail that object-tracking messages follow, Section V:
    /// "we can track objects in transit by reaching the node that the
    /// object departs from").
    forwarding: Option<&'a HashMap<(ObjectId, NodeId), NodeId>>,
}

impl<'a> SystemView<'a> {
    /// Construct a view (used by the engine; tests may build one directly).
    pub fn new(
        now: Time,
        network: &'a Network,
        live: &'a BTreeMap<TxnId, LiveTxn>,
        objects: &'a BTreeMap<ObjectId, ObjectState>,
    ) -> Self {
        SystemView {
            now,
            network,
            live,
            objects,
            forwarding: None,
        }
    }

    /// Attach the engine's forwarding-pointer table (see
    /// [`SystemView::forwarded_to`]).
    pub fn with_forwarding(
        mut self,
        forwarding: &'a HashMap<(ObjectId, NodeId), NodeId>,
    ) -> Self {
        self.forwarding = Some(forwarding);
        self
    }

    /// Node-local knowledge at `node`: where it last forwarded `object`
    /// (`None` if the node never forwarded it, or no table is attached).
    pub fn forwarded_to(&self, object: ObjectId, node: NodeId) -> Option<NodeId> {
        self.forwarding?.get(&(object, node)).copied()
    }

    /// All live transactions (`T_t` in the paper), in id order.
    pub fn live_txns(&self) -> impl Iterator<Item = &LiveTxn> + '_ {
        self.live.values()
    }

    /// Number of live transactions.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Look up a live transaction.
    pub fn live(&self, id: TxnId) -> Option<&LiveTxn> {
        self.live.get(&id)
    }

    /// State of an object (if it exists yet).
    pub fn object(&self, id: ObjectId) -> Option<&ObjectState> {
        self.objects.get(&id)
    }

    /// All objects, in id order.
    pub fn objects(&self) -> impl Iterator<Item = &ObjectState> + '_ {
        self.objects.values()
    }

    /// Live transactions requesting `o`, in id order.
    pub fn requesters_of(&self, o: ObjectId) -> Vec<TxnId> {
        self.live
            .values()
            .filter(|lt| lt.txn.uses(o))
            .map(|lt| lt.txn.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;

    fn obj(place: ObjectPlace) -> ObjectState {
        ObjectState {
            info: ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            },
            place,
            last_holder: None,
        }
    }

    #[test]
    fn resting_position() {
        let net = topology::line(8);
        let o = obj(ObjectPlace::At(NodeId(3)));
        assert_eq!(o.position(10), (NodeId(3), 10));
        assert_eq!(o.effective_distance(&net, NodeId(6), 10), 3);
        assert_eq!(o.effective_distance(&net, NodeId(3), 10), 0);
    }

    #[test]
    fn in_transit_position_counts_residual() {
        let net = topology::line(8);
        let o = obj(ObjectPlace::Hop {
            from: NodeId(2),
            next: NodeId(3),
            arrive: 14,
        });
        // At time 10: 4 residual steps to node 3, then 3 more to node 6.
        assert_eq!(o.position(10), (NodeId(3), 14));
        assert_eq!(o.effective_distance(&net, NodeId(6), 10), 4 + 3);
        // Going "backwards" still pays the residual first.
        assert_eq!(o.effective_distance(&net, NodeId(2), 10), 4 + 1);
    }

    #[test]
    fn view_queries() {
        let net = topology::line(4);
        let t1 = Transaction::new(TxnId(1), NodeId(0), [ObjectId(0)], 0);
        let t2 = Transaction::new(TxnId(2), NodeId(1), [ObjectId(1)], 0);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: t1,
                scheduled: Some(5),
            },
        );
        live.insert(
            TxnId(2),
            LiveTxn {
                txn: t2,
                scheduled: None,
            },
        );
        let mut objects = BTreeMap::new();
        objects.insert(ObjectId(0), obj(ObjectPlace::At(NodeId(0))));
        let view = SystemView::new(3, &net, &live, &objects);
        assert_eq!(view.live_count(), 2);
        assert_eq!(view.requesters_of(ObjectId(0)), vec![TxnId(1)]);
        assert!(view.requesters_of(ObjectId(9)).is_empty());
        assert_eq!(view.live(TxnId(1)).unwrap().scheduled, Some(5));
        assert!(view.object(ObjectId(0)).is_some());
        assert!(view.object(ObjectId(1)).is_none());
    }
}
