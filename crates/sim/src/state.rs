//! Runtime state of objects and live transactions, and the read-only
//! [`SystemView`] handed to scheduling policies each step.

use crate::arena::{ObjectIter, RuntimeState, TxnIter};
use crate::effects::StepEffects;
use crate::forwarding::ForwardingTable;
use dtm_graph::{Network, NodeId, Weight};
use dtm_model::{ObjectId, ObjectInfo, Time, Transaction, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{btree_map, BTreeMap, BTreeSet};

/// Where an object is right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectPlace {
    /// Resting at a node (free or waiting for a transaction there).
    At(NodeId),
    /// Traversing the edge `from -> next`; arrives at `next` at `arrive`.
    Hop {
        /// The node the object departed from.
        from: NodeId,
        /// The node being approached.
        next: NodeId,
        /// Arrival time at `next`.
        arrive: Time,
    },
}

/// Full runtime state of one object.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObjectState {
    /// Static info (id, origin, creation time).
    pub info: ObjectInfo,
    /// Current place.
    pub place: ObjectPlace,
    /// The last transaction that acquired the object (`L_t(o_i)` in the
    /// paper once that transaction has executed), or `None` if no
    /// transaction has acquired it yet.
    pub last_holder: Option<TxnId>,
}

impl ObjectState {
    /// The paper's *current position* of the object at time `now`, as used
    /// by the extended dependency graph `H'_t`: a pair `(node, ready_at)`
    /// meaning the object can start moving from `node` at time `ready_at`.
    ///
    /// For a resting object this is its node, ready now. For an in-transit
    /// object the paper places a temporary transaction at an artificial
    /// node connected to the next hop `v` with weight equal to the
    /// remaining travel time — equivalently, the object is available at
    /// `v` at its arrival time.
    pub fn position(&self, now: Time) -> (NodeId, Time) {
        match self.place {
            ObjectPlace::At(v) => (v, now),
            ObjectPlace::Hop { next, arrive, .. } => (next, arrive),
        }
    }

    /// Effective distance from the object's current position to `target`:
    /// residual transit time plus the shortest-path distance onward. This
    /// is the edge weight to the temporary transaction in `H'_t`.
    pub fn effective_distance(&self, network: &Network, target: NodeId, now: Time) -> Weight {
        let (node, ready_at) = self.position(now);
        ready_at.saturating_sub(now) + network.distance(node, target)
    }
}

/// A live (generated, not yet committed) transaction and its schedule
/// status.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LiveTxn {
    /// The transaction.
    pub txn: Transaction,
    /// Its designated execution time, once assigned. The paper's
    /// algorithms never change this after assignment.
    pub scheduled: Option<Time>,
}

/// Storage the view reads from: either borrowed legacy maps (tests and
/// external harnesses build these directly) or the engine's indexed
/// [`RuntimeState`]. Every query dispatches on this and produces
/// identical results either way — the indexed arm just avoids scans.
enum Backing<'a> {
    /// Plain id-keyed maps, queried by scanning.
    Maps {
        live: &'a BTreeMap<TxnId, LiveTxn>,
        objects: &'a BTreeMap<ObjectId, ObjectState>,
    },
    /// The engine's arena-backed state with its requester index.
    Indexed(&'a RuntimeState),
}

/// Read-only snapshot of the system handed to policies each step.
pub struct SystemView<'a> {
    /// Current time step.
    pub now: Time,
    /// The communication network.
    pub network: &'a Network,
    backing: Backing<'a>,
    /// Node-local forwarding pointers: where each node last sent each
    /// object (the trail that object-tracking messages follow, Section V:
    /// "we can track objects in transit by reaching the node that the
    /// object departs from").
    forwarding: Option<&'a ForwardingTable>,
}

impl<'a> SystemView<'a> {
    /// Construct a view over plain maps (tests may build one directly).
    pub fn new(
        now: Time,
        network: &'a Network,
        live: &'a BTreeMap<TxnId, LiveTxn>,
        objects: &'a BTreeMap<ObjectId, ObjectState>,
    ) -> Self {
        SystemView {
            now,
            network,
            backing: Backing::Maps { live, objects },
            forwarding: None,
        }
    }

    /// Construct a view over the engine's indexed [`RuntimeState`]. Index
    ///-backed queries ([`SystemView::requesters_of`],
    /// [`SystemView::conflicting_live`]) and [`SystemView::step_effects`]
    /// are only fast/available through this constructor.
    pub fn from_state(now: Time, network: &'a Network, state: &'a RuntimeState) -> Self {
        SystemView {
            now,
            network,
            backing: Backing::Indexed(state),
            forwarding: None,
        }
    }

    /// Attach the engine's forwarding-pointer table (see
    /// [`SystemView::forwarded_to`]).
    pub fn with_forwarding(mut self, forwarding: &'a ForwardingTable) -> Self {
        self.forwarding = Some(forwarding);
        self
    }

    /// Node-local knowledge at `node`: where it last forwarded `object`
    /// (`None` if the node never forwarded it, or no table is attached).
    pub fn forwarded_to(&self, object: ObjectId, node: NodeId) -> Option<NodeId> {
        self.forwarding?.get(object, node)
    }

    /// All live transactions (`T_t` in the paper), in id order.
    pub fn live_txns(&self) -> LiveTxns<'a> {
        match &self.backing {
            Backing::Maps { live, .. } => LiveTxns::Maps(live.values()),
            Backing::Indexed(state) => LiveTxns::Arena(state.txns().iter()),
        }
    }

    /// Number of live transactions.
    pub fn live_count(&self) -> usize {
        match &self.backing {
            Backing::Maps { live, .. } => live.len(),
            Backing::Indexed(state) => state.txns().len(),
        }
    }

    /// Look up a live transaction.
    pub fn live(&self, id: TxnId) -> Option<&'a LiveTxn> {
        match &self.backing {
            Backing::Maps { live, .. } => live.get(&id),
            Backing::Indexed(state) => state.txns().get(id),
        }
    }

    /// State of an object (if it exists yet).
    pub fn object(&self, id: ObjectId) -> Option<&'a ObjectState> {
        match &self.backing {
            Backing::Maps { objects, .. } => objects.get(&id),
            Backing::Indexed(state) => state.objects().get(id),
        }
    }

    /// All objects, in id order.
    pub fn objects(&self) -> Objects<'a> {
        match &self.backing {
            Backing::Maps { objects, .. } => Objects::Maps(objects.values()),
            Backing::Indexed(state) => Objects::Arena(state.objects().iter()),
        }
    }

    /// Live transactions requesting `o`, in id order.
    ///
    /// With an indexed backing this reads the engine's per-object
    /// requester index in O(answer); the maps backing scans the live set.
    pub fn requesters_of(&self, o: ObjectId) -> Vec<TxnId> {
        match &self.backing {
            Backing::Maps { live, .. } => live
                .values()
                .filter(|lt| lt.txn.uses(o))
                .map(|lt| lt.txn.id)
                .collect(),
            Backing::Indexed(state) => state.requesters_of(o).collect(),
        }
    }

    /// Visit the live transactions requesting `o` in id order without
    /// allocating — the streaming form of [`SystemView::requesters_of`],
    /// used by incremental caches that fold requester sets every arrival.
    pub fn for_each_requester(&self, o: ObjectId, mut f: impl FnMut(TxnId)) {
        match &self.backing {
            Backing::Maps { live, .. } => {
                for lt in live.values().filter(|lt| lt.txn.uses(o)) {
                    f(lt.txn.id);
                }
            }
            Backing::Indexed(state) => {
                for id in state.requesters_of(o) {
                    f(id);
                }
            }
        }
    }

    /// Live transactions conflicting with `txn` (sharing at least one
    /// object, `txn` itself excluded), in id order — the neighbors of
    /// `txn` among `T_t` in the dependency graph `H'_t`.
    ///
    /// With an indexed backing this is the union of the requester sets of
    /// `txn`'s objects; the maps backing scans the live set. Both arms
    /// produce the same transactions in the same order
    /// ([`dtm_model::Transaction::shares_objects`] is exactly object-set
    /// intersection).
    pub fn conflicting_live(&self, txn: &Transaction) -> Vec<&'a LiveTxn> {
        match &self.backing {
            Backing::Maps { live, .. } => live
                .values()
                .filter(|lt| lt.txn.id != txn.id && txn.shares_objects(&lt.txn))
                .collect(),
            Backing::Indexed(state) => {
                let mut ids: BTreeSet<TxnId> = BTreeSet::new();
                for o in txn.objects() {
                    ids.extend(state.requesters_of(o));
                }
                ids.remove(&txn.id);
                ids.iter()
                    .map(|&id| state.txns().get(id).expect("requester index is live")) // dtm-lint: allow(C1) -- requester-index entries are inserted/removed in lockstep with the txn arena
                    .collect()
            }
        }
    }

    /// The [`StepEffects`] accumulated since the previous policy
    /// invocation, if this view is backed by the engine's indexed state.
    /// `None` (maps backing) means callers must rebuild their caches.
    pub fn step_effects(&self) -> Option<&'a StepEffects> {
        match &self.backing {
            Backing::Maps { .. } => None,
            Backing::Indexed(state) => Some(state.effects()),
        }
    }
}

/// Id-ordered iterator over live transactions (see
/// [`SystemView::live_txns`]).
pub enum LiveTxns<'a> {
    /// Scanning a legacy map backing.
    Maps(btree_map::Values<'a, TxnId, LiveTxn>),
    /// Walking the arena's live-id set.
    Arena(TxnIter<'a>),
}

impl<'a> Iterator for LiveTxns<'a> {
    type Item = &'a LiveTxn;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            LiveTxns::Maps(it) => it.next(),
            LiveTxns::Arena(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            LiveTxns::Maps(it) => it.size_hint(),
            LiveTxns::Arena(it) => it.size_hint(),
        }
    }
}

/// Id-ordered iterator over objects (see [`SystemView::objects`]).
pub enum Objects<'a> {
    /// Scanning a legacy map backing.
    Maps(btree_map::Values<'a, ObjectId, ObjectState>),
    /// Walking the arena slots.
    Arena(ObjectIter<'a>),
}

impl<'a> Iterator for Objects<'a> {
    type Item = &'a ObjectState;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Objects::Maps(it) => it.next(),
            Objects::Arena(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;

    fn obj(place: ObjectPlace) -> ObjectState {
        ObjectState {
            info: ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            },
            place,
            last_holder: None,
        }
    }

    #[test]
    fn resting_position() {
        let net = topology::line(8);
        let o = obj(ObjectPlace::At(NodeId(3)));
        assert_eq!(o.position(10), (NodeId(3), 10));
        assert_eq!(o.effective_distance(&net, NodeId(6), 10), 3);
        assert_eq!(o.effective_distance(&net, NodeId(3), 10), 0);
    }

    #[test]
    fn in_transit_position_counts_residual() {
        let net = topology::line(8);
        let o = obj(ObjectPlace::Hop {
            from: NodeId(2),
            next: NodeId(3),
            arrive: 14,
        });
        // At time 10: 4 residual steps to node 3, then 3 more to node 6.
        assert_eq!(o.position(10), (NodeId(3), 14));
        assert_eq!(o.effective_distance(&net, NodeId(6), 10), 4 + 3);
        // Going "backwards" still pays the residual first.
        assert_eq!(o.effective_distance(&net, NodeId(2), 10), 4 + 1);
    }

    #[test]
    fn view_queries() {
        let net = topology::line(4);
        let t1 = Transaction::new(TxnId(1), NodeId(0), [ObjectId(0)], 0);
        let t2 = Transaction::new(TxnId(2), NodeId(1), [ObjectId(1)], 0);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: t1,
                scheduled: Some(5),
            },
        );
        live.insert(
            TxnId(2),
            LiveTxn {
                txn: t2,
                scheduled: None,
            },
        );
        let mut objects = BTreeMap::new();
        objects.insert(ObjectId(0), obj(ObjectPlace::At(NodeId(0))));
        let view = SystemView::new(3, &net, &live, &objects);
        assert_eq!(view.live_count(), 2);
        assert_eq!(view.requesters_of(ObjectId(0)), vec![TxnId(1)]);
        assert!(view.requesters_of(ObjectId(9)).is_empty());
        assert_eq!(view.live(TxnId(1)).unwrap().scheduled, Some(5));
        assert!(view.object(ObjectId(0)).is_some());
        assert!(view.object(ObjectId(1)).is_none());
    }

    /// The two backings must answer every query identically: this builds
    /// the same population both ways and compares all query results.
    #[test]
    fn maps_and_indexed_backings_agree() {
        let net = topology::line(8);
        let txns = [
            Transaction::new(TxnId(0), NodeId(0), [ObjectId(0), ObjectId(1)], 0),
            Transaction::new(TxnId(2), NodeId(3), [ObjectId(1)], 0),
            Transaction::new(TxnId(5), NodeId(6), [ObjectId(0), ObjectId(2)], 0),
            Transaction::new(TxnId(7), NodeId(1), [ObjectId(3)], 0),
        ];
        let mut live = BTreeMap::new();
        let mut state = RuntimeState::new();
        for (i, t) in txns.iter().enumerate() {
            let lt = LiveTxn {
                txn: t.clone(),
                scheduled: (i % 2 == 0).then_some(10 + i as Time),
            };
            live.insert(t.id, lt.clone());
            state.insert_txn(lt);
        }
        let mut objects = BTreeMap::new();
        for o in 0..4u32 {
            let st = ObjectState {
                info: ObjectInfo {
                    id: ObjectId(o),
                    origin: NodeId(o),
                    created_at: 0,
                },
                place: ObjectPlace::At(NodeId(o)),
                last_holder: None,
            };
            objects.insert(ObjectId(o), st.clone());
            state.insert_object(st);
        }
        let maps = SystemView::new(4, &net, &live, &objects);
        let indexed = SystemView::from_state(4, &net, &state);

        assert_eq!(maps.live_count(), indexed.live_count());
        let ids =
            |v: &SystemView<'_>| -> Vec<TxnId> { v.live_txns().map(|lt| lt.txn.id).collect() };
        assert_eq!(ids(&maps), ids(&indexed));
        let objs =
            |v: &SystemView<'_>| -> Vec<ObjectId> { v.objects().map(|st| st.info.id).collect() };
        assert_eq!(objs(&maps), objs(&indexed));
        for o in 0..5u32 {
            assert_eq!(
                maps.requesters_of(ObjectId(o)),
                indexed.requesters_of(ObjectId(o)),
                "requesters of {o}"
            );
        }
        for t in &txns {
            let a: Vec<TxnId> = maps.conflicting_live(t).iter().map(|l| l.txn.id).collect();
            let b: Vec<TxnId> = indexed
                .conflicting_live(t)
                .iter()
                .map(|l| l.txn.id)
                .collect();
            assert_eq!(a, b, "conflicts of {}", t.id);
        }
        assert!(maps.step_effects().is_none());
        assert!(indexed.step_effects().is_some());
    }
}
