//! The scheduling-policy interface between the simulator and the online
//! schedulers of `dtm-core`.

use crate::state::SystemView;
use dtm_model::{Schedule, TxnId};

/// An online scheduling policy.
///
/// The engine calls [`SchedulingPolicy::step`] exactly once per time step,
/// after arrivals have been added to the live set and object deliveries
/// processed, and before executions at this step. The policy returns a
/// [`Schedule`] fragment containing execution times for transactions it
/// decides *now*; fragments are merged into the run's schedule and must
/// never re-time an already-scheduled transaction (the engine treats that
/// as a violation — the paper's algorithms share this property: "the
/// execution times for the new transactions are not affecting the
/// previously scheduled transactions").
///
/// A policy need not schedule a transaction the step it arrives (the bucket
/// algorithm holds transactions in buckets until activation), but every
/// transaction must eventually be scheduled for the run to complete.
pub trait SchedulingPolicy {
    /// Decide execution times. `arrivals` lists the ids of transactions
    /// generated at this step (already visible through `view`).
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule;

    /// Human-readable policy name for reports.
    fn name(&self) -> String;

    /// Capture the policy's complete decision state for a
    /// [`crate::RunCheckpoint`]: the fork must behave identically to
    /// `self` on every future step.
    ///
    /// The default is a plain clone, which is correct for every policy
    /// whose state is fully owned (including seeded RNGs — cloning
    /// preserves the stream position). Policies holding shared handles
    /// (stats sinks, decision traces) clone the handle, so a fork keeps
    /// feeding the *same* sink; override if a checkpoint should detach
    /// them.
    fn fork(&self) -> Self
    where
        Self: Sized + Clone,
    {
        self.clone()
    }
}

/// Replays a precomputed schedule: each arriving transaction is assigned
/// its predetermined execution time. This is how an *offline* batch
/// schedule (computed by a `BatchScheduler` ahead of time) is executed on
/// the engine — the offline end of the paper's offline-to-online
/// comparison.
#[derive(Clone, Debug, Default)]
pub struct FixedSchedulePolicy {
    schedule: Schedule,
}

impl FixedSchedulePolicy {
    /// Replay `schedule`. Transactions missing from it are left
    /// unscheduled (which the engine will flag at run end).
    pub fn new(schedule: Schedule) -> Self {
        FixedSchedulePolicy { schedule }
    }
}

impl SchedulingPolicy for FixedSchedulePolicy {
    fn step(&mut self, _view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        arrivals
            .iter()
            .filter_map(|&id| self.schedule.get(id).map(|t| (id, t)))
            .collect()
    }

    fn name(&self) -> String {
        "fixed-schedule".into()
    }
}

impl<P: SchedulingPolicy + ?Sized> SchedulingPolicy for Box<P> {
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        (**self).step(view, arrivals)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Immediate;
    impl SchedulingPolicy for Immediate {
        fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
            // Schedule everything "now" — only valid when objects are local.
            arrivals.iter().map(|&id| (id, view.now)).collect()
        }
        fn name(&self) -> String {
            "immediate".into()
        }
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut p: Box<dyn SchedulingPolicy> = Box::new(Immediate);
        assert_eq!(p.name(), "immediate");
        let _ = &mut p; // step() exercised by the engine tests
    }
}
