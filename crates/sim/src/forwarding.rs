//! Node-local forwarding pointers as a dense, lazily-rowed table.
//!
//! The kernel records, per `(object, node)` pair, where that node last
//! sent the object (the forwarding *trail* of the paper's Section V
//! distributed algorithm: requests chase an object by following these
//! pointers hop by hop). PR 5 kept the trail in a
//! `BTreeMap<(ObjectId, NodeId), NodeId>`, which put one `O(log n)`
//! ordered-map insert on every object departure — one of the largest
//! constant factors left in the per-step hot path.
//!
//! [`ForwardingTable`] replaces it with a dense per-object row of `u32`
//! slots (index = node, value = next-hop node or a sentinel for "never
//! forwarded"), allocated lazily the first time an object departs from
//! anywhere. Lookups and inserts are two array indexings. For graphs
//! beyond [`ForwardingTable::DENSE_NODE_LIMIT`] nodes a dense row would
//! waste memory, so the table falls back to the ordered map — same
//! semantics, different constant.
//!
//! **Pointer lifetime.** Entries are *overwritten*, never removed: a
//! pointer stays valid-as-a-trail until the same node forwards the same
//! object somewhere else, exactly the semantics
//! [`crate::SystemView::forwarded_to`] and the distributed message layer
//! rely on (a stale pointer may lawfully point at where the object used
//! to go; chasing it still terminates because the trail always ends at
//! the object's current position). Memory is therefore bounded by
//! `O(objects × nodes)` — the dense representation makes that bound
//! explicit rather than emergent.

use dtm_graph::NodeId;
use dtm_model::ObjectId;
use std::collections::BTreeMap;

/// "No pointer" sentinel inside dense rows. `u32::MAX` is never a valid
/// node id (the dense representation is only used for graphs far below
/// that many nodes).
const EMPTY: u32 = u32::MAX;

#[derive(Clone, Debug)]
enum Repr {
    /// One lazily-allocated row per object; `rows[object][node]` is the
    /// node the object was last forwarded to from `node`, or [`EMPTY`].
    Dense { rows: Vec<Option<Box<[u32]>>> },
    /// Fallback for very large graphs: the PR 5 ordered map.
    Sparse(BTreeMap<(ObjectId, NodeId), NodeId>),
}

/// Per-`(object, node)` forwarding pointers; see the module docs.
#[derive(Clone, Debug)]
pub struct ForwardingTable {
    nodes: usize,
    repr: Repr,
    /// Distinct `(object, node)` pairs holding a pointer.
    len: usize,
}

impl ForwardingTable {
    /// Largest node count for which per-object dense rows are used.
    /// Matches the spirit of the routing layer's dense fast path: small
    /// graphs get arrays, huge graphs get ordered maps.
    pub const DENSE_NODE_LIMIT: usize = 4096;

    /// An empty table for a graph of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        let repr = if nodes <= Self::DENSE_NODE_LIMIT {
            Repr::Dense { rows: Vec::new() }
        } else {
            Repr::Sparse(BTreeMap::new())
        };
        ForwardingTable {
            nodes,
            repr,
            len: 0,
        }
    }

    /// Record that `at` forwarded `object` toward `next`, overwriting
    /// any previous pointer for the pair.
    pub fn insert(&mut self, object: ObjectId, at: NodeId, next: NodeId) {
        debug_assert!(at.index() < self.nodes && next.index() < self.nodes);
        match &mut self.repr {
            Repr::Dense { rows } => {
                let o = object.index();
                if o >= rows.len() {
                    rows.resize(o + 1, None);
                }
                let row = rows[o].get_or_insert_with(|| vec![EMPTY; self.nodes].into_boxed_slice());
                if row[at.index()] == EMPTY {
                    self.len += 1;
                }
                row[at.index()] = next.0;
            }
            Repr::Sparse(map) => {
                if map.insert((object, at), next).is_none() {
                    self.len += 1;
                }
            }
        }
    }

    /// Where `at` last forwarded `object`, if it ever did.
    pub fn get(&self, object: ObjectId, at: NodeId) -> Option<NodeId> {
        match &self.repr {
            Repr::Dense { rows } => match rows.get(object.index()).and_then(|r| r.as_deref()) {
                Some(row) => match row[at.index()] {
                    EMPTY => None,
                    next => Some(NodeId(next)),
                },
                None => None,
            },
            Repr::Sparse(map) => map.get(&(object, at)).copied(),
        }
    }

    /// Number of distinct `(object, node)` pairs holding a pointer.
    /// Bounded by `objects × nodes` for the life of the run (pointers
    /// are overwritten in place, never accumulated).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pointer has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite_dense() {
        let mut t = ForwardingTable::new(8);
        assert!(t.is_empty());
        assert_eq!(t.get(ObjectId(3), NodeId(1)), None);
        t.insert(ObjectId(3), NodeId(1), NodeId(2));
        assert_eq!(t.get(ObjectId(3), NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.len(), 1);
        // Overwrite does not grow the pair count.
        t.insert(ObjectId(3), NodeId(1), NodeId(5));
        assert_eq!(t.get(ObjectId(3), NodeId(1)), Some(NodeId(5)));
        assert_eq!(t.len(), 1);
        // A different node's pointer for the same object is distinct.
        t.insert(ObjectId(3), NodeId(4), NodeId(0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(ObjectId(3), NodeId(4)), Some(NodeId(0)));
        // Objects without a row answer None without allocating.
        assert_eq!(t.get(ObjectId(7), NodeId(0)), None);
    }

    #[test]
    fn sparse_fallback_matches_dense_semantics() {
        let nodes = ForwardingTable::DENSE_NODE_LIMIT + 1;
        let mut t = ForwardingTable::new(nodes);
        assert!(matches!(t.repr, Repr::Sparse(_)));
        t.insert(ObjectId(0), NodeId(4096), NodeId(17));
        t.insert(ObjectId(0), NodeId(4096), NodeId(18));
        assert_eq!(t.get(ObjectId(0), NodeId(4096)), Some(NodeId(18)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(ObjectId(1), NodeId(4096)), None);
    }

    #[test]
    fn clone_is_deep() {
        let mut t = ForwardingTable::new(4);
        t.insert(ObjectId(0), NodeId(0), NodeId(1));
        let snap = t.clone();
        t.insert(ObjectId(0), NodeId(0), NodeId(3));
        assert_eq!(snap.get(ObjectId(0), NodeId(0)), Some(NodeId(1)));
        assert_eq!(t.get(ObjectId(0), NodeId(0)), Some(NodeId(3)));
    }
}
