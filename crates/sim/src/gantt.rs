//! ASCII timeline rendering of a run: per-object Gantt-style charts of
//! where each object was at every step, with commits marked. Invaluable
//! when debugging a scheduler — the entire data-flow execution becomes
//! visible at a glance.
//!
//! ```text
//! o0 | 0 0 0>1>2 2 2*3 3 ...
//!          ^ resting at n0, hops to n1 then n2, commit (*) at n2 ...
//! ```

use crate::events::Event;
use crate::metrics::RunResult;
use dtm_model::{ObjectId, Time};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options for [`render_timeline`].
#[derive(Clone, Debug)]
pub struct TimelineOptions {
    /// Inclusive time range to render (`None` = full run).
    pub until: Option<Time>,
    /// Maximum number of objects to render (`None` = all).
    pub max_objects: Option<usize>,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            until: None,
            max_objects: Some(16),
        }
    }
}

/// What an object was doing during one step.
#[derive(Clone, Copy, PartialEq)]
enum Cell {
    Unknown,
    At(u32),
    Moving,
}

/// Render per-object timelines from a run's event log.
///
/// Requires the run to have been recorded with events enabled; returns a
/// multi-line string. Each object row shows the node id while resting,
/// `>` while traversing an edge, and `*` on a step where a transaction
/// committed holding it.
pub fn render_timeline(result: &RunResult, opts: &TimelineOptions) -> String {
    let end = opts
        .until
        .unwrap_or(result.metrics.makespan)
        .min(result.metrics.makespan);
    let steps = (end + 1) as usize;

    // Replay positions.
    let mut rows: BTreeMap<ObjectId, Vec<Cell>> = BTreeMap::new();
    let mut commits_at: BTreeMap<(ObjectId, Time), bool> = BTreeMap::new();
    let mut state: BTreeMap<ObjectId, Cell> = BTreeMap::new();
    let mut moving_until: BTreeMap<ObjectId, (Time, u32)> = BTreeMap::new();
    let mut cursor: Time = 0;

    let flush_to = |t: Time,
                    rows: &mut BTreeMap<ObjectId, Vec<Cell>>,
                    state: &BTreeMap<ObjectId, Cell>,
                    moving_until: &mut BTreeMap<ObjectId, (Time, u32)>,
                    cursor: &mut Time| {
        while *cursor < t.min(end + 1) {
            for (&o, &cell) in state.iter() {
                let row = rows.entry(o).or_default();
                let effective = match moving_until.get(&o) {
                    Some(&(arrive, _)) if *cursor < arrive => Cell::Moving,
                    _ => cell,
                };
                row.resize((*cursor) as usize, Cell::Unknown);
                row.push(effective);
            }
            *cursor += 1;
        }
    };

    for e in &result.events {
        flush_to(e.time(), &mut rows, &state, &mut moving_until, &mut cursor);
        match *e {
            Event::ObjectCreated { object, node, .. } => {
                state.insert(object, Cell::At(node.0));
            }
            Event::Departed {
                object, to, arrive, ..
            } => {
                moving_until.insert(object, (arrive, to.0));
                state.insert(object, Cell::At(to.0));
            }
            Event::Arrived { object, node, .. } => {
                moving_until.remove(&object);
                state.insert(object, Cell::At(node.0));
            }
            Event::Committed { t, txn, .. } => {
                if let Some(tx) = result.txns.get(&txn) {
                    for o in tx.objects() {
                        commits_at.insert((o, t), true);
                    }
                }
            }
            _ => {}
        }
    }
    flush_to(end + 1, &mut rows, &state, &mut moving_until, &mut cursor);

    // Render.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline 0..={end} (makespan {})",
        result.metrics.makespan
    );
    let width = rows
        .values()
        .flat_map(|r| r.iter())
        .filter_map(|c| match c {
            Cell::At(n) => Some(format!("{n}").len()),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    let limit = opts.max_objects.unwrap_or(usize::MAX);
    for (o, row) in rows.iter().take(limit) {
        let _ = write!(out, "{o:>4} |");
        for (t, cell) in row.iter().take(steps).enumerate() {
            let committed = commits_at.contains_key(&(*o, t as Time));
            let mark = if committed { '*' } else { ' ' };
            match cell {
                Cell::At(n) => {
                    let _ = write!(out, "{mark}{n:>width$}");
                }
                Cell::Moving => {
                    let _ = write!(out, "{mark}{:>width$}", ">");
                }
                Cell::Unknown => {
                    let _ = write!(out, "{mark}{:>width$}", ".");
                }
            }
        }
        let _ = writeln!(out);
    }
    if rows.len() > limit {
        let _ = writeln!(out, "  (+{} more objects)", rows.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_policy, EngineConfig};
    use crate::policy::FixedSchedulePolicy;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{Instance, ObjectInfo, Schedule, TraceSource, Transaction, TxnId};

    fn small_run() -> RunResult {
        let net = topology::line(4);
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![
                Transaction::new(TxnId(0), NodeId(2), [ObjectId(0)], 0),
                Transaction::new(TxnId(1), NodeId(3), [ObjectId(0)], 0),
            ],
        );
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 3)].into_iter().collect();
        run_policy(
            &net,
            TraceSource::new(inst),
            FixedSchedulePolicy::new(sched),
            EngineConfig::default(),
        )
    }

    #[test]
    fn renders_positions_and_commits() {
        let res = small_run();
        res.expect_ok();
        let text = render_timeline(&res, &TimelineOptions::default());
        assert!(text.contains("timeline 0..=3"));
        assert!(text.contains("o0 |"));
        // Two commits -> two '*' marks.
        assert_eq!(text.matches('*').count(), 2);
        // The object moved: at least one '>' hop cell.
        assert!(text.contains('>'));
    }

    #[test]
    fn truncation_options() {
        let res = small_run();
        let text = render_timeline(
            &res,
            &TimelineOptions {
                until: Some(1),
                max_objects: Some(0),
            },
        );
        assert!(text.contains("(+1 more objects)"));
        assert!(text.contains("timeline 0..=1"));
    }

    /// Two objects, limit 1: exactly one row rendered, and the footer
    /// counts exactly the elided remainder.
    #[test]
    fn truncation_footer_counts_elided_objects() {
        let net = topology::line(4);
        let inst = Instance::new(
            vec![
                ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(0),
                    created_at: 0,
                },
                ObjectInfo {
                    id: ObjectId(1),
                    origin: NodeId(3),
                    created_at: 0,
                },
            ],
            vec![Transaction::new(
                TxnId(0),
                NodeId(1),
                [ObjectId(0), ObjectId(1)],
                0,
            )],
        );
        let sched: Schedule = [(TxnId(0), 2)].into_iter().collect();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedSchedulePolicy::new(sched),
            EngineConfig::default(),
        );
        res.expect_ok();
        let text = render_timeline(
            &res,
            &TimelineOptions {
                until: None,
                max_objects: Some(1),
            },
        );
        assert!(text.contains("o0 |"));
        assert!(!text.contains("o1 |"));
        assert!(text.contains("(+1 more objects)"));
        // No footer when everything fits.
        let full = render_timeline(&res, &TimelineOptions::default());
        assert!(full.contains("o1 |"));
        assert!(!full.contains("more objects"));
    }

    /// `until` truncation clips the rendered range but the commit marker
    /// still lands on the right step when it is inside the window.
    #[test]
    fn commit_marker_respects_truncation_window() {
        let res = small_run();
        res.expect_ok();
        // Commits happen at t=2 and t=3. A window ending at t=1 shows
        // neither; a window ending at t=2 shows exactly the first.
        let before = render_timeline(
            &res,
            &TimelineOptions {
                until: Some(1),
                max_objects: None,
            },
        );
        assert_eq!(before.matches('*').count(), 0);
        let at = render_timeline(
            &res,
            &TimelineOptions {
                until: Some(2),
                max_objects: None,
            },
        );
        assert_eq!(at.matches('*').count(), 1);
    }

    #[test]
    fn empty_run_renders() {
        let net = topology::line(2);
        let inst = Instance::new(vec![], vec![]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedSchedulePolicy::new(Schedule::new()),
            EngineConfig::default(),
        );
        let text = render_timeline(&res, &TimelineOptions::default());
        assert!(text.contains("timeline"));
    }
}
