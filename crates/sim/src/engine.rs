//! The synchronous execution engine: a thin builder/driver over the
//! tickable [`StepKernel`].
//!
//! Per time step `t` the kernel performs, in order:
//!
//! 1. **receive** — objects whose edge traversal completes at `t` arrive at
//!    their next node;
//! 2. **generate** — the workload source's arrivals for `t` join the live
//!    set;
//! 3. **schedule** — the policy is consulted once; returned execution times
//!    are merged (never re-timing an existing entry);
//! 4. **execute** — every transaction whose scheduled time is `t` and whose
//!    objects are all at its home node commits; its objects are released;
//! 5. **forward** — every resting object moves one hop along a shortest
//!    path toward the home of its *earliest-scheduled* pending requester.
//!
//! Step 5 implements the paper's rule that an object visits the
//! transactions that request it in ascending scheduled-execution order,
//! and — because routing decisions are re-taken at every hop — also the
//! in-transit redirection implicit in the extended dependency graph
//! (`H'_t` places an in-transit object at its next hop with the residual
//! travel time as the edge weight, which is exactly where this engine can
//! first re-route it).
//!
//! [`Engine`] holds the configuration (network, policy, observers);
//! [`Engine::run`] converts it into a [`StepKernel`] and drives every
//! tick to completion. Callers needing finer control — single-stepping,
//! pause/inspect/resume, mid-run predicates — use
//! [`Engine::into_kernel`] and the kernel's drivers directly. Each tick
//! publishes a typed [`crate::StepEffects`] value to attached
//! [`StepObserver`]s and (between consecutive policy calls) to policies
//! via [`crate::SystemView::step_effects`].

use crate::kernel::StepKernel;
use crate::metrics::RunResult;
use crate::observer::StepObserver;
use crate::policy::SchedulingPolicy;
use dtm_graph::Network;
use dtm_model::{Time, WorkloadSource};

/// What a run retains for its final [`RunResult`] — the closed-batch /
/// open-system switch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Retention {
    /// Keep full per-transaction history: every transaction, its
    /// generation time, its schedule entry and its commit time. Memory
    /// grows with the total number of transactions — correct for closed
    /// batches, where that total is the instance size. The default; all
    /// pre-existing behavior (golden traces included) lives here.
    Full,
    /// Open-system streaming: memory stays O(live set + objects) no
    /// matter how many transactions stream through. The per-transaction
    /// result maps stay empty; commit counts, makespan and sojourn
    /// latency are folded into scalars and a fixed-size
    /// [`crate::Log2Histogram`] as transactions retire. Commits of
    /// transactions generated before `warmup` are excluded from the
    /// latency histogram (but still counted), so steady-state
    /// percentiles are not polluted by the cold start.
    Streaming {
        /// Steps to exclude from the sojourn-latency histogram.
        warmup: Time,
    },
}

impl Retention {
    /// True for [`Retention::Full`].
    pub fn is_full(&self) -> bool {
        matches!(self, Retention::Full)
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Multiplier on every edge traversal time. 1 = the paper's base model;
    /// 2 = the half-speed rule of the distributed algorithm (Section V).
    pub speed_divisor: u64,
    /// Optional bound on concurrent objects per (undirected) edge — the
    /// congestion extension from the paper's conclusion. `None` = unbounded
    /// (the paper's model).
    pub link_capacity: Option<u32>,
    /// If true, a transaction whose scheduled step passes without all
    /// objects present executes as soon as they arrive (used only with
    /// `link_capacity`, where schedules are knowingly optimistic);
    /// otherwise a missed execution is a violation.
    pub allow_late_execution: bool,
    /// Hard step limit, **inclusive**: steps `t = 0..=max_steps` may be
    /// simulated, and [`crate::Violation::MaxStepsExceeded`] fires only if
    /// live transactions remain after step `max_steps` has completed. A
    /// transaction committing exactly at `t = max_steps` is in bounds.
    pub max_steps: Time,
    /// Record the full event log (disable for large parameter sweeps).
    /// Suppressed entirely under [`Retention::Streaming`], where an
    /// unbounded event log would defeat the bounded-memory guarantee.
    pub record_events: bool,
    /// Closed-batch ([`Retention::Full`], the default) versus
    /// open-system ([`Retention::Streaming`]) result retention.
    pub retention: Retention,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            speed_divisor: 1,
            link_capacity: None,
            allow_late_execution: false,
            max_steps: 500_000,
            record_events: true,
            retention: Retention::Full,
        }
    }
}

/// The simulator. Drives a [`SchedulingPolicy`] against a
/// [`dtm_model::WorkloadSource`] on a [`Network`].
pub struct Engine<P> {
    network: Network,
    policy: P,
    config: EngineConfig,
    observers: Vec<Box<dyn StepObserver>>,
}

impl<P: SchedulingPolicy> Engine<P> {
    /// Create an engine.
    pub fn new(network: Network, policy: P, config: EngineConfig) -> Self {
        assert!(config.speed_divisor >= 1, "speed divisor must be >= 1");
        Engine {
            network,
            policy,
            config,
            observers: Vec::new(),
        }
    }

    /// Attach a [`StepObserver`] (per-phase counters/timings). May be
    /// called repeatedly; every attached observer sees every callback.
    /// Purely observational: runs with and without observers are
    /// identical.
    pub fn with_observer(mut self, observer: impl StepObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Convert the engine into a [`StepKernel`] over `source`, ready to
    /// be driven tick by tick.
    pub fn into_kernel<S: WorkloadSource>(self, source: S) -> StepKernel<P, S> {
        StepKernel::new(
            self.network,
            self.policy,
            self.config,
            self.observers,
            source,
        )
    }

    /// Run to completion (source exhausted and all live transactions
    /// committed), or until the step limit: the thin driver
    /// `into_kernel(source).finish()`.
    pub fn run<S: WorkloadSource>(self, source: S) -> RunResult {
        self.into_kernel(source).finish()
    }
}

/// Convenience: build an engine and run `source` under `policy`.
pub fn run_policy<S: WorkloadSource, P: SchedulingPolicy>(
    network: &Network,
    source: S,
    policy: P,
    config: EngineConfig,
) -> RunResult {
    Engine::new(network.clone(), policy, config).run(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Violation;
    use crate::state::SystemView;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{Instance, ObjectId, ObjectInfo, Schedule, TraceSource, Transaction, TxnId};
    use std::collections::BTreeMap;

    /// A hand-written fixed schedule as a policy: schedules each arriving
    /// transaction at a preset absolute time.
    struct FixedPolicy(BTreeMap<TxnId, Time>);

    impl SchedulingPolicy for FixedPolicy {
        fn step(&mut self, _view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
            arrivals
                .iter()
                .filter_map(|id| self.0.get(id).map(|&t| (*id, t)))
                .collect()
        }
        fn name(&self) -> String {
            "fixed".into()
        }
    }

    fn obj(id: u32, origin: u32) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(id),
            origin: NodeId(origin),
            created_at: 0,
        }
    }

    fn txn(id: u64, home: u32, objs: &[u32], t: Time) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            t,
        )
    }

    /// Line of 4; object at node 0; two transactions need it: T0 at node 2
    /// (exec at 2: distance 2), then T1 at node 3 (exec at 3: one more hop).
    #[test]
    fn object_moves_in_schedule_order() {
        let net = topology::line(4);
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 2, &[0], 0), txn(1, 3, &[0], 0)],
        );
        let sched: BTreeMap<TxnId, Time> = [(TxnId(0), 2), (TxnId(1), 3)].into();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedPolicy(sched),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(res.commits[&TxnId(0)], 2);
        assert_eq!(res.commits[&TxnId(1)], 3);
        assert_eq!(res.metrics.makespan, 3);
        assert_eq!(res.metrics.comm_cost, 3); // 2 hops to n2, 1 hop to n3
        assert_eq!(res.metrics.committed, 2);
    }

    /// Too-tight schedule: T0 at distance 2 scheduled at time 1 must be a
    /// missed execution.
    #[test]
    fn infeasible_schedule_detected() {
        let net = topology::line(4);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0], 0)]);
        let sched: BTreeMap<TxnId, Time> = [(TxnId(0), 1)].into();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedPolicy(sched),
            EngineConfig::default(),
        );
        assert!(!res.ok());
        assert!(matches!(
            res.violations[0],
            Violation::MissedExecution {
                txn: TxnId(0),
                scheduled: 1
            }
        ));
    }

    /// A transaction whose objects are local can execute the step it
    /// arrives.
    #[test]
    fn local_objects_execute_instantly() {
        let net = topology::line(4);
        let inst = Instance::new(vec![obj(0, 1), obj(1, 1)], vec![txn(0, 1, &[0, 1], 0)]);
        let sched: BTreeMap<TxnId, Time> = [(TxnId(0), 0)].into();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedPolicy(sched),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(res.commits[&TxnId(0)], 0);
        assert_eq!(res.metrics.comm_cost, 0);
    }

    /// Speed divisor 2 doubles travel time: distance 2 requires exec >= 4.
    #[test]
    fn speed_divisor_halves_object_speed() {
        let net = topology::line(4);
        let make = || TraceSource::new(Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0], 0)]));
        let cfg = EngineConfig {
            speed_divisor: 2,
            ..EngineConfig::default()
        };
        // exec at 3 is now too early...
        let res = run_policy(
            &net,
            make(),
            FixedPolicy([(TxnId(0), 3)].into()),
            cfg.clone(),
        );
        assert!(!res.ok());
        // ...but exec at 4 works.
        let res = run_policy(&net, make(), FixedPolicy([(TxnId(0), 4)].into()), cfg);
        res.expect_ok();
        assert_eq!(res.commits[&TxnId(0)], 4);
    }

    /// Weighted edges delay arrival by their weight.
    #[test]
    fn weighted_edge_travel_time() {
        let net = topology::cluster(2, 2, 5);
        // Object at bridge 0 (node 0); txn at bridge 1 (node 2): distance 5.
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0], 0)]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedPolicy([(TxnId(0), 5)].into()),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(res.metrics.comm_cost, 5);
        assert_eq!(res.metrics.hops, 1);
    }

    /// Rescheduling and past-scheduling attempts are flagged.
    struct NaughtyPolicy {
        step: u32,
    }
    impl SchedulingPolicy for NaughtyPolicy {
        fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
            self.step += 1;
            match self.step {
                1 => arrivals.iter().map(|&id| (id, view.now + 10)).collect(),
                2 => [(TxnId(0), view.now + 20)].into_iter().collect(), // re-time
                3 => [(TxnId(999), view.now)].into_iter().collect(),    // unknown
                _ => Schedule::new(),
            }
        }
        fn name(&self) -> String {
            "naughty".into()
        }
    }

    #[test]
    fn policy_misbehavior_flagged() {
        let net = topology::line(2);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 0, &[0], 0)]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            NaughtyPolicy { step: 0 },
            EngineConfig::default(),
        );
        assert!(res
            .violations
            .contains(&Violation::Rescheduled { txn: TxnId(0) }));
        assert!(res
            .violations
            .contains(&Violation::UnknownTxn { txn: TxnId(999) }));
        // The original scheduling still succeeded.
        assert_eq!(res.commits[&TxnId(0)], 10);
    }

    /// A policy that never schedules exhausts the step limit.
    struct SilentPolicy;
    impl SchedulingPolicy for SilentPolicy {
        fn step(&mut self, _: &SystemView<'_>, _: &[TxnId]) -> Schedule {
            Schedule::new()
        }
        fn name(&self) -> String {
            "silent".into()
        }
    }

    #[test]
    fn unscheduled_txns_hit_step_limit() {
        let net = topology::line(2);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 1, &[0], 0)]);
        let cfg = EngineConfig {
            max_steps: 50,
            ..EngineConfig::default()
        };
        let res = run_policy(&net, TraceSource::new(inst), SilentPolicy, cfg);
        match &res.violations[0] {
            Violation::MaxStepsExceeded { live, sample } => {
                assert_eq!(*live, 1);
                assert_eq!(sample, &vec![TxnId(0)]);
            }
            other => panic!("expected MaxStepsExceeded, got {other:?}"),
        }
        assert!(res.violations[0].to_string().contains("e.g. T0"));
    }

    /// The live-id sample in `MaxStepsExceeded` is capped: many stuck
    /// transactions report only the lowest ids plus an accurate count.
    #[test]
    fn step_limit_sample_is_bounded() {
        let net = topology::line(2);
        let txns: Vec<Transaction> = (0..20).map(|i| txn(i, 1, &[0], 0)).collect();
        let inst = Instance::new(vec![obj(0, 0)], txns);
        let cfg = EngineConfig {
            max_steps: 5,
            ..EngineConfig::default()
        };
        let res = run_policy(&net, TraceSource::new(inst), SilentPolicy, cfg);
        match &res.violations[0] {
            Violation::MaxStepsExceeded { live, sample } => {
                assert_eq!(*live, 20);
                assert_eq!(sample.len(), Violation::MAX_REPORTED_LIVE);
                let expected: Vec<TxnId> = (0..Violation::MAX_REPORTED_LIVE as u64)
                    .map(TxnId)
                    .collect();
                assert_eq!(sample, &expected);
            }
            other => panic!("expected MaxStepsExceeded, got {other:?}"),
        }
        assert!(res.violations[0].to_string().contains("and 12 more"));
    }

    /// The step limit is inclusive: a commit exactly at `t = max_steps`
    /// is in bounds, and the same workload with `max_steps - 1` violates.
    /// Pins the `now > max_steps` boundary in the run loop.
    #[test]
    fn step_limit_boundary_is_inclusive() {
        let net = topology::line(4);
        // Distance 2 from the object's origin: earliest commit is t=2.
        let make = || TraceSource::new(Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0], 0)]));
        let policy = || FixedPolicy([(TxnId(0), 2)].into());
        let at_limit = run_policy(
            &net,
            make(),
            policy(),
            EngineConfig {
                max_steps: 2,
                ..EngineConfig::default()
            },
        );
        at_limit.expect_ok();
        assert_eq!(at_limit.commits[&TxnId(0)], 2);
        assert_eq!(at_limit.metrics.steps, 3); // steps 0, 1, 2 ran

        let below_limit = run_policy(
            &net,
            make(),
            policy(),
            EngineConfig {
                max_steps: 1,
                ..EngineConfig::default()
            },
        );
        assert!(matches!(
            below_limit.violations[..],
            [Violation::MaxStepsExceeded { live: 1, .. }]
        ));
    }

    /// Link capacity 1 with two objects crossing the same edge: with late
    /// execution allowed, the second is delayed but the run completes.
    #[test]
    fn link_capacity_delays_but_completes() {
        let net = topology::line(2);
        let inst = Instance::new(
            vec![obj(0, 0), obj(1, 0)],
            vec![txn(0, 1, &[0], 0), txn(1, 1, &[1], 0)],
        );
        let cfg = EngineConfig {
            link_capacity: Some(1),
            allow_late_execution: true,
            ..EngineConfig::default()
        };
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedPolicy([(TxnId(0), 1), (TxnId(1), 1)].into()),
            cfg,
        );
        res.expect_ok();
        assert_eq!(res.commits[&TxnId(0)], 1);
        assert_eq!(res.commits[&TxnId(1)], 2); // waited one step for the edge
    }

    /// Two transactions at the same home sharing an object serialize by
    /// schedule order without any movement.
    #[test]
    fn same_home_serialization() {
        let net = topology::line(3);
        let inst = Instance::new(
            vec![obj(0, 1)],
            vec![txn(0, 1, &[0], 0), txn(1, 1, &[0], 0)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedPolicy([(TxnId(0), 0), (TxnId(1), 1)].into()),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(res.metrics.comm_cost, 0);
        assert_eq!(res.metrics.makespan, 1);
    }

    /// Object redirection: object heads toward a later transaction, then an
    /// earlier one is scheduled; the object must serve the earlier first.
    struct TwoPhase {
        fired: bool,
    }
    impl SchedulingPolicy for TwoPhase {
        fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
            let mut s = Schedule::new();
            for &id in arrivals {
                if id == TxnId(0) {
                    s.set(id, 20); // far future: object starts moving to n3
                }
            }
            if view.now == 2 && !self.fired {
                self.fired = true;
                // T1 at node 1 wants the object sooner. The object left n0
                // at t=0 toward n3; at t=2 it is at/near n2... schedule T1
                // late enough to be reachable: it is at distance <= 3 from
                // anywhere on the line, so now+6 is safe.
                s.set(TxnId(1), 8);
            }
            s
        }
        fn name(&self) -> String {
            "two-phase".into()
        }
    }

    #[test]
    fn object_redirects_to_earlier_requester() {
        let net = topology::line(4);
        let mut txn1 = txn(1, 1, &[0], 0);
        txn1.generated_at = 0;
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 3, &[0], 0), txn1]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            TwoPhase { fired: false },
            EngineConfig::default(),
        );
        res.expect_ok();
        // T1 (exec 8) must commit before T0 (exec 20).
        assert_eq!(res.commits[&TxnId(1)], 8);
        assert_eq!(res.commits[&TxnId(0)], 20);
    }

    /// Metrics: peak_live and steps populated.
    #[test]
    fn metrics_populated() {
        let net = topology::line(3);
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 1, &[0], 0), txn(1, 2, &[0], 0)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedPolicy([(TxnId(0), 1), (TxnId(1), 3)].into()),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(res.metrics.peak_live, 2);
        assert!(res.metrics.steps >= 4);
        assert_eq!(res.metrics.latency.count, 2);
        assert_eq!(res.txns.len(), 2);
    }
}

#[cfg(test)]
mod creation_tests {
    use super::*;
    use crate::policy::FixedSchedulePolicy;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{Instance, ObjectId, ObjectInfo, Schedule, TraceSource, Transaction, TxnId};

    /// Objects created after time 0 appear at their creation step and only
    /// then become routable.
    #[test]
    fn late_created_objects() {
        let net = topology::line(4);
        let late = ObjectInfo {
            id: ObjectId(0),
            origin: NodeId(0),
            created_at: 5,
        };
        let txn = Transaction::new(TxnId(0), NodeId(2), [ObjectId(0)], 6);
        let inst = Instance::new(vec![late], vec![txn]);
        // The object exists from t=5 but only starts moving once its
        // requester is scheduled (t=6); travel 2 -> earliest exec 8.
        let sched: Schedule = [(TxnId(0), 8)].into_iter().collect();
        let res = run_policy(
            &net,
            TraceSource::new(inst.clone()),
            FixedSchedulePolicy::new(sched),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(res.commits[&TxnId(0)], 8);
        // One step earlier is impossible.
        let sched: Schedule = [(TxnId(0), 7)].into_iter().collect();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FixedSchedulePolicy::new(sched),
            EngineConfig::default(),
        );
        assert!(!res.ok());
    }

    /// Disabling event recording must not change commits or metrics.
    #[test]
    fn event_recording_toggle_is_observationally_equivalent() {
        let net = topology::line(5);
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![
                Transaction::new(TxnId(0), NodeId(2), [ObjectId(0)], 0),
                Transaction::new(TxnId(1), NodeId(4), [ObjectId(0)], 0),
            ],
        );
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 4)].into_iter().collect();
        let with_events = run_policy(
            &net,
            TraceSource::new(inst.clone()),
            FixedSchedulePolicy::new(sched.clone()),
            EngineConfig::default(),
        );
        let without = run_policy(
            &net,
            TraceSource::new(inst),
            FixedSchedulePolicy::new(sched),
            EngineConfig {
                record_events: false,
                ..EngineConfig::default()
            },
        );
        with_events.expect_ok();
        without.expect_ok();
        assert_eq!(with_events.commits, without.commits);
        assert_eq!(with_events.metrics.comm_cost, without.metrics.comm_cost);
        assert!(without.events.is_empty());
        assert!(!with_events.events.is_empty());
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use crate::observer::{Phase, PhaseProfile};
    use dtm_graph::{topology, NodeId};
    use dtm_model::{Instance, ObjectId, ObjectInfo, Schedule, TraceSource, Transaction, TxnId};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// An attached observer sees consistent per-phase counters, and the
    /// run's outcome is identical to an unobserved run.
    #[test]
    fn observer_counts_match_metrics_and_never_perturbs() {
        let net = topology::line(5);
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![
                Transaction::new(TxnId(0), NodeId(2), [ObjectId(0)], 0),
                Transaction::new(TxnId(1), NodeId(4), [ObjectId(0)], 0),
            ],
        );
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 4)].into_iter().collect();
        let profile = Arc::new(Mutex::new(PhaseProfile::default()));
        let observed = Engine::new(
            net.clone(),
            crate::policy::FixedSchedulePolicy::new(sched.clone()),
            EngineConfig::default(),
        )
        .with_observer(Arc::clone(&profile))
        .run(TraceSource::new(inst.clone()));
        let plain = run_policy(
            &net,
            TraceSource::new(inst),
            crate::policy::FixedSchedulePolicy::new(sched),
            EngineConfig::default(),
        );
        observed.expect_ok();
        plain.expect_ok();
        assert_eq!(observed.commits, plain.commits);
        assert_eq!(observed.events, plain.events);

        let p = profile.lock();
        assert_eq!(p.steps, observed.metrics.steps);
        assert_eq!(p.phase(Phase::Generate).items, observed.txns.len() as u64);
        assert_eq!(
            p.phase(Phase::Execute).items,
            observed.metrics.committed as u64
        );
        assert_eq!(p.phase(Phase::Forward).items, observed.metrics.hops);
        assert_eq!(
            p.phase(Phase::Schedule).items,
            observed.schedule.len() as u64
        );
        assert_eq!(p.peak_live, observed.metrics.peak_live);
        // Every phase ran once per step.
        for ph in Phase::ALL {
            assert_eq!(p.phase(ph).calls, p.steps, "{} calls", ph.name());
        }
    }
}
