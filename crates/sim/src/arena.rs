//! Dense, generational arenas for the engine's runtime state.
//!
//! The engine previously kept live transactions and objects in
//! `BTreeMap`s keyed by their id newtypes, and then in slot-per-id
//! arenas. Slot-per-id is dense for closed batches but grows without
//! bound under open-system streams (transaction ids increase forever
//! while the live set stays small), so [`TxnArena`] now recycles
//! committed slots through a **free list**: a live-id → slot index map
//! preserves the id-ordered iteration the paper's algorithms (and the
//! golden traces) depend on, per-slot generation counters catch
//! stale-id/slot reuse (ABA) in debug builds, and the slot table never
//! holds more entries than the peak concurrent live set — the
//! bounded-memory invariant `slot_high_water() <= peak_live()` pinned by
//! the arena churn tests.
//!
//! [`RuntimeState`] bundles the two arenas with the per-object requester
//! index (every live transaction requesting each object) and the
//! [`StepEffects`] accumulated between consecutive policy invocations —
//! the raw material for incremental `H'_t` maintenance in `dtm-core`.

use crate::effects::StepEffects;
use crate::state::{LiveTxn, ObjectState};
use dtm_model::{ObjectId, TxnId};
use std::collections::VecDeque;

/// Sentinel for a dead id slot in [`IdIndex`].
const NO_SLOT: u32 = u32::MAX;

/// Live-id → slot map, stored as a dense sliding window.
///
/// Transaction ids are handed out monotonically and the live set is a
/// bounded window of that sequence, so the id index does not need an
/// ordered tree: slot numbers live in a `VecDeque` indexed by
/// `id - base` (with [`NO_SLOT`] marking dead ids), giving O(1)
/// lookup/insert/remove on the engine's hot path. Dead entries at the
/// front are trimmed on removal, so memory stays O(live id window) —
/// the same boundedness story as the slot free list. Iteration walks
/// the window front-to-back: ascending id, exactly the order of the
/// `BTreeMap` this replaces (pinned by the golden traces).
#[derive(Clone, Debug, Default)]
struct IdIndex {
    /// TxnId of `slots[0]`; meaningful only while `slots` is non-empty.
    base: u64,
    slots: VecDeque<u32>,
    len: usize,
}

impl IdIndex {
    #[inline]
    fn get(&self, id: TxnId) -> Option<u32> {
        let idx = id.0.checked_sub(self.base)? as usize;
        match self.slots.get(idx) {
            Some(&s) if s != NO_SLOT => Some(s),
            _ => None,
        }
    }

    fn insert(&mut self, id: TxnId, slot: u32) {
        debug_assert_ne!(slot, NO_SLOT);
        if self.slots.is_empty() {
            self.base = id.0;
        } else if id.0 < self.base {
            // Out-of-order low id (hand-built harness states): grow the
            // window's front.
            for _ in id.0..self.base {
                self.slots.push_front(NO_SLOT);
            }
            self.base = id.0;
        }
        let idx = (id.0 - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, NO_SLOT);
        }
        if std::mem::replace(&mut self.slots[idx], slot) == NO_SLOT {
            self.len += 1;
        }
    }

    fn remove(&mut self, id: TxnId) -> Option<u32> {
        let idx = id.0.checked_sub(self.base)? as usize;
        let s = self.slots.get_mut(idx)?;
        let prev = std::mem::replace(s, NO_SLOT);
        if prev == NO_SLOT {
            return None;
        }
        self.len -= 1;
        // Trim the dead front so `base` tracks the live window.
        while let Some(&NO_SLOT) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        Some(prev)
    }

    /// `(id, slot)` pairs in ascending id order.
    fn iter(&self) -> IdIndexIter<'_> {
        IdIndexIter {
            base: self.base,
            inner: self.slots.iter().enumerate(),
        }
    }
}

/// Ascending-id iterator over an [`IdIndex`].
struct IdIndexIter<'a> {
    base: u64,
    inner: std::iter::Enumerate<std::collections::vec_deque::Iter<'a, u32>>,
}

impl Iterator for IdIndexIter<'_> {
    type Item = (TxnId, u32);

    fn next(&mut self) -> Option<Self::Item> {
        for (i, &s) in self.inner.by_ref() {
            if s != NO_SLOT {
                return Some((TxnId(self.base + i as u64), s));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

/// Arena of live transactions with free-list slot recycling.
///
/// A transaction occupies one slot while live; on removal the slot joins
/// the free list (LIFO) and is reused by a later insertion. New slots
/// are allocated only when the free list is empty — which happens
/// exactly when every slot is occupied — so the slot table's length
/// never exceeds the peak concurrent live-set size, no matter how many
/// transactions stream through. A slot's generation counter increments
/// on every (re)insertion so debug assertions can detect stale
/// references; iteration follows the live-id index, i.e. ascending
/// transaction id.
#[derive(Clone, Debug, Default)]
pub struct TxnArena {
    slots: Vec<Option<LiveTxn>>,
    /// Per-slot insertion counter (ABA detection across slot reuse).
    generations: Vec<u32>,
    /// Recycled slot indices, reused LIFO.
    free: Vec<u32>,
    /// Live id → occupied slot, in ascending id order.
    index: IdIndex,
    /// Largest concurrent live-set size ever observed.
    peak_live: usize,
    /// Largest slot-table length ever observed (monotone; survives
    /// [`TxnArena::compact`]).
    high_water: usize,
}

impl TxnArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.index.len
    }

    /// True if no transaction is live.
    pub fn is_empty(&self) -> bool {
        self.index.len == 0
    }

    /// Look up a live transaction.
    #[inline]
    pub fn get(&self, id: TxnId) -> Option<&LiveTxn> {
        let slot = self.index.get(id)?;
        self.slots[slot as usize].as_ref()
    }

    /// Mutable lookup. Callers must not alter the transaction's object
    /// set (the requester index in [`RuntimeState`] is keyed by it).
    #[inline]
    pub fn get_mut(&mut self, id: TxnId) -> Option<&mut LiveTxn> {
        let slot = self.index.get(id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Insert a live transaction, reusing a recycled slot when one is
    /// free.
    ///
    /// # Panics
    /// Panics if a transaction with the same id is already live.
    pub fn insert(&mut self, lt: LiveTxn) {
        let id = lt.txn.id;
        assert!(self.index.get(id).is_none(), "txn {} already live", id);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                // Free list empty ⇒ all slots occupied ⇒ growth is
                // driven by the live set alone (the bounded-memory
                // invariant).
                self.slots.push(None);
                self.generations.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        let i = slot as usize;
        debug_assert!(self.slots[i].is_none(), "free-listed slot occupied");
        self.generations[i] = self.generations[i].wrapping_add(1);
        self.index.insert(id, slot);
        self.slots[i] = Some(lt);
        self.peak_live = self.peak_live.max(self.index.len);
        self.high_water = self.high_water.max(self.slots.len());
    }

    /// Remove a live transaction, returning it; its slot joins the free
    /// list for reuse.
    pub fn remove(&mut self, id: TxnId) -> Option<LiveTxn> {
        let slot = self.index.remove(id)?;
        let lt = self.slots[slot as usize].take();
        debug_assert!(lt.is_some(), "index pointed at an empty slot");
        self.free.push(slot);
        lt
    }

    /// Generation of the slot currently backing `id` (bumped on every
    /// insertion into that slot), or 0 if `id` is not live. Two live
    /// sightings of the same id with different generations mean the id
    /// was removed and reinserted in between — the stale-reference (ABA)
    /// signal the engine's debug assertions key on.
    pub fn generation(&self, id: TxnId) -> u32 {
        self.index
            .get(id)
            .map(|s| self.generations[s as usize])
            .unwrap_or(0)
    }

    /// Largest concurrent live-set size ever observed.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Largest slot-table length ever observed: the arena's memory
    /// high-water mark in slots. Invariant: `slot_high_water() <=
    /// peak_live()` — slot recycling means capacity tracks the peak
    /// backlog, never the total number of transactions streamed through.
    pub fn slot_high_water(&self) -> usize {
        self.high_water
    }

    /// Current slot-table length (shrinks only via
    /// [`TxnArena::compact`]).
    pub fn slot_len(&self) -> usize {
        self.slots.len()
    }

    /// Release trailing unoccupied slots and excess capacity back to the
    /// allocator (the slot table is truncated past the highest live
    /// slot). Intended for quiescent points — e.g. after a burst drains —
    /// since truncated slots forget their generation counters; the
    /// monotone [`TxnArena::slot_high_water`] record is unaffected.
    pub fn compact(&mut self) {
        let keep = self
            .index
            .iter()
            .map(|(_, s)| s as usize + 1)
            .max()
            .unwrap_or(0);
        self.slots.truncate(keep);
        self.generations.truncate(keep);
        self.free.retain(|&s| (s as usize) < keep);
        self.slots.shrink_to_fit();
        self.generations.shrink_to_fit();
        self.free.shrink_to_fit();
    }

    /// Live transaction ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.index.iter().map(|(id, _)| id)
    }

    /// Live transactions in ascending id order.
    pub fn iter(&self) -> TxnIter<'_> {
        TxnIter {
            index: self.index.iter(),
            slots: &self.slots,
        }
    }
}

/// Id-ordered iterator over a [`TxnArena`].
pub struct TxnIter<'a> {
    index: IdIndexIter<'a>,
    slots: &'a [Option<LiveTxn>],
}

impl<'a> Iterator for TxnIter<'a> {
    type Item = &'a LiveTxn;

    fn next(&mut self) -> Option<Self::Item> {
        let (_, slot) = self.index.next()?;
        self.slots[slot as usize].as_ref()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.index.size_hint()
    }
}

/// Dense arena of object states, indexed by [`ObjectId`]. Objects are
/// created once and never removed, so slot order *is* id order.
#[derive(Clone, Debug, Default)]
pub struct ObjectArena {
    slots: Vec<Option<ObjectState>>,
    count: usize,
}

impl ObjectArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of existing objects.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no object exists yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Look up an object.
    #[inline]
    pub fn get(&self, id: ObjectId) -> Option<&ObjectState> {
        self.slots.get(id.index())?.as_ref()
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut ObjectState> {
        self.slots.get_mut(id.index())?.as_mut()
    }

    /// Insert an object at its id slot.
    ///
    /// # Panics
    /// Panics if the object already exists.
    pub fn insert(&mut self, st: ObjectState) {
        let i = st.info.id.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        assert!(
            self.slots[i].is_none(),
            "object {} already exists",
            st.info.id
        );
        self.slots[i] = Some(st);
        self.count += 1;
    }

    /// Existing object ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.iter().map(|st| st.info.id)
    }

    /// Objects in ascending id order.
    pub fn iter(&self) -> ObjectIter<'_> {
        ObjectIter {
            slots: self.slots.iter(),
        }
    }
}

/// Id-ordered iterator over an [`ObjectArena`].
pub struct ObjectIter<'a> {
    slots: std::slice::Iter<'a, Option<ObjectState>>,
}

impl<'a> Iterator for ObjectIter<'a> {
    type Item = &'a ObjectState;

    fn next(&mut self) -> Option<Self::Item> {
        for slot in self.slots.by_ref() {
            if let Some(st) = slot.as_ref() {
                return Some(st);
            }
        }
        None
    }
}

/// The engine's complete mutable runtime state: transaction and object
/// arenas, the per-object requester index, and the [`StepEffects`]
/// accumulated since the last policy invocation.
///
/// The requester index maps each object to *all* live transactions
/// requesting it (scheduled or not), in id order — the indexed backing
/// for [`crate::SystemView::requesters_of`] and the conflict queries of
/// `dtm-core`, replacing an O(live · k) rescan per query.
#[derive(Clone, Debug, Default)]
pub struct RuntimeState {
    txns: TxnArena,
    objects: ObjectArena,
    /// Per object id: live requesters, kept sorted by id and maintained
    /// on insert/remove. Sorted `Vec`s beat ordered trees here: the
    /// lists are small (the object's live contention), reads are
    /// id-ordered iteration, and writes are one binary search plus a
    /// short shift.
    requesters: Vec<Vec<TxnId>>,
    effects: StepEffects,
}

impl RuntimeState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The live-transaction arena.
    pub fn txns(&self) -> &TxnArena {
        &self.txns
    }

    /// The object arena.
    pub fn objects(&self) -> &ObjectArena {
        &self.objects
    }

    /// Insert a newly generated live transaction, indexing it as a
    /// requester of each of its objects.
    pub fn insert_txn(&mut self, lt: LiveTxn) {
        let id = lt.txn.id;
        for o in lt.txn.objects() {
            let i = o.index();
            if i >= self.requesters.len() {
                self.requesters.resize_with(i + 1, Vec::new);
            }
            let list = &mut self.requesters[i];
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
        }
        self.txns.insert(lt);
    }

    /// Remove a live transaction (commit or abort), unindexing it.
    pub fn remove_txn(&mut self, id: TxnId) -> Option<LiveTxn> {
        let lt = self.txns.remove(id)?;
        for o in lt.txn.objects() {
            if let Some(list) = self.requesters.get_mut(o.index()) {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                }
            }
        }
        Some(lt)
    }

    /// Mutable access to a live transaction. Callers must not alter the
    /// transaction's object set (it keys the requester index).
    pub fn txn_mut(&mut self, id: TxnId) -> Option<&mut LiveTxn> {
        self.txns.get_mut(id)
    }

    /// Create an object.
    pub fn insert_object(&mut self, st: ObjectState) {
        self.objects.insert(st);
    }

    /// Mutable access to an object.
    pub fn object_mut(&mut self, id: ObjectId) -> Option<&mut ObjectState> {
        self.objects.get_mut(id)
    }

    /// All live transactions requesting `o` (scheduled or not), in id
    /// order.
    pub fn requesters_of(&self, o: ObjectId) -> impl Iterator<Item = TxnId> + '_ {
        self.requesters
            .get(o.index())
            .into_iter()
            .flat_map(|list| list.iter().copied())
    }

    /// The effects accumulated since the last policy invocation.
    pub fn effects(&self) -> &StepEffects {
        &self.effects
    }

    /// Mutable effects accumulator (engine-internal bookkeeping; exposed
    /// so harnesses and benchmarks can drive the state like the engine
    /// does).
    pub fn effects_mut(&mut self) -> &mut StepEffects {
        &mut self.effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ObjectPlace;
    use dtm_graph::NodeId;
    use dtm_model::{ObjectInfo, Transaction};

    fn lt(id: u64, objs: &[u32]) -> LiveTxn {
        LiveTxn {
            txn: Transaction::new(TxnId(id), NodeId(0), objs.iter().map(|&o| ObjectId(o)), 0),
            scheduled: None,
        }
    }

    fn obj(id: u32) -> ObjectState {
        ObjectState {
            info: ObjectInfo {
                id: ObjectId(id),
                origin: NodeId(0),
                created_at: 0,
            },
            place: ObjectPlace::At(NodeId(0)),
            last_holder: None,
        }
    }

    #[test]
    fn txn_arena_iterates_in_id_order() {
        let mut a = TxnArena::new();
        for id in [5u64, 1, 9, 3] {
            a.insert(lt(id, &[0]));
        }
        let order: Vec<u64> = a.iter().map(|l| l.txn.id.0).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
        assert_eq!(a.len(), 4);
        a.remove(TxnId(5)).unwrap();
        assert_eq!(a.ids().map(|i| i.0).collect::<Vec<_>>(), vec![1, 3, 9]);
        assert!(a.get(TxnId(5)).is_none());
        assert!(a.remove(TxnId(5)).is_none());
    }

    #[test]
    fn txn_arena_generations_bump_on_reuse() {
        let mut a = TxnArena::new();
        a.insert(lt(2, &[0]));
        assert_eq!(a.generation(TxnId(2)), 1);
        a.remove(TxnId(2));
        a.insert(lt(2, &[0]));
        assert_eq!(a.generation(TxnId(2)), 2);
        assert_eq!(a.generation(TxnId(77)), 0);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn txn_arena_rejects_duplicate() {
        let mut a = TxnArena::new();
        a.insert(lt(1, &[0]));
        a.insert(lt(1, &[0]));
    }

    /// The bounded-memory invariant: slots track the peak *concurrent*
    /// live set, not the total ids streamed through.
    #[test]
    fn txn_arena_recycles_slots_under_churn() {
        let mut a = TxnArena::new();
        // Stream 1000 transactions with at most 3 concurrently live.
        for id in 0u64..1000 {
            a.insert(lt(id, &[0]));
            if id >= 2 {
                a.remove(TxnId(id - 2)).unwrap();
            }
        }
        assert_eq!(a.len(), 2);
        assert_eq!(a.peak_live(), 3);
        assert_eq!(a.slot_high_water(), 3);
        assert!(a.slot_len() <= a.peak_live());
        // Recycled ids stay addressable, id order intact.
        let order: Vec<u64> = a.iter().map(|l| l.txn.id.0).collect();
        assert_eq!(order, vec![998, 999]);
    }

    #[test]
    fn txn_arena_generation_distinguishes_slot_reuse_across_ids() {
        let mut a = TxnArena::new();
        a.insert(lt(1, &[0]));
        let g1 = a.generation(TxnId(1));
        a.remove(TxnId(1)).unwrap();
        // A *different* id reuses the recycled slot: its generation must
        // differ from the dead tenant's, so a stale (id 1, gen g1)
        // reference can never be confused with the new occupant.
        a.insert(lt(2, &[0]));
        assert_eq!(a.generation(TxnId(2)), g1 + 1);
        assert_eq!(a.generation(TxnId(1)), 0, "dead id reads as gen 0");
    }

    #[test]
    fn txn_arena_compact_releases_trailing_slots() {
        let mut a = TxnArena::new();
        for id in 0u64..8 {
            a.insert(lt(id, &[0]));
        }
        for id in 2u64..8 {
            a.remove(TxnId(id)).unwrap();
        }
        assert_eq!(a.slot_len(), 8);
        a.compact();
        // Ids 0 and 1 occupy slots 0 and 1; everything past is released.
        assert_eq!(a.slot_len(), 2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.slot_high_water(), 8, "high-water record is monotone");
        assert!(a.get(TxnId(0)).is_some() && a.get(TxnId(1)).is_some());
        // The arena keeps working after compaction.
        a.insert(lt(9, &[0]));
        assert_eq!(a.len(), 3);
        // Fully drained + compacted: zero slots.
        for id in [0u64, 1, 9] {
            a.remove(TxnId(id)).unwrap();
        }
        a.compact();
        assert_eq!(a.slot_len(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn object_arena_slot_order_is_id_order() {
        let mut a = ObjectArena::new();
        a.insert(obj(4));
        a.insert(obj(0));
        a.insert(obj(2));
        let order: Vec<u32> = a.iter().map(|st| st.info.id.0).collect();
        assert_eq!(order, vec![0, 2, 4]);
        assert_eq!(a.len(), 3);
        assert!(a.get(ObjectId(1)).is_none());
        assert!(a.get(ObjectId(2)).is_some());
    }

    #[test]
    fn requester_index_tracks_inserts_and_removes() {
        let mut s = RuntimeState::new();
        s.insert_object(obj(0));
        s.insert_object(obj(1));
        s.insert_txn(lt(3, &[0, 1]));
        s.insert_txn(lt(1, &[1]));
        let reqs = |s: &RuntimeState, o: u32| -> Vec<u64> {
            s.requesters_of(ObjectId(o)).map(|t| t.0).collect()
        };
        assert_eq!(reqs(&s, 0), vec![3]);
        assert_eq!(reqs(&s, 1), vec![1, 3]);
        s.remove_txn(TxnId(3));
        assert_eq!(reqs(&s, 0), Vec::<u64>::new());
        assert_eq!(reqs(&s, 1), vec![1]);
        // Unknown object: empty, no panic.
        assert_eq!(reqs(&s, 9), Vec::<u64>::new());
    }
}
