//! Step observers: per-phase counters and timings for the engine.
//!
//! The step kernel has five phases (receive, generate, schedule,
//! execute, forward). A [`StepObserver`] attached via
//! [`crate::Engine::with_observer`] (or
//! [`crate::StepKernel::with_observer`]) is called once per phase per
//! step with the number of items the phase touched and its wall-clock
//! duration, and once per step end with that tick's full
//! [`StepEffects`]. Observation never changes engine behavior — runs
//! with and without an observer produce identical results.

use crate::effects::StepEffects;
use dtm_model::Time;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// One phase of the engine's step loop, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Objects completing edge traversals arrive at their next node.
    Receive,
    /// The workload source's arrivals join the live set.
    Generate,
    /// The policy is consulted and its fragment merged.
    Schedule,
    /// Due transactions with assembled objects commit.
    Execute,
    /// Resting objects depart one hop toward their next requester.
    Forward,
}

impl Phase {
    /// All phases in step order.
    pub const ALL: [Phase; 5] = [
        Phase::Receive,
        Phase::Generate,
        Phase::Schedule,
        Phase::Execute,
        Phase::Forward,
    ];

    /// Dense index (position in [`Phase::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Phase::Receive => 0,
            Phase::Generate => 1,
            Phase::Schedule => 2,
            Phase::Execute => 3,
            Phase::Forward => 4,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Receive => "receive",
            Phase::Generate => "generate",
            Phase::Schedule => "schedule",
            Phase::Execute => "execute",
            Phase::Forward => "forward",
        }
    }
}

/// Hook into the kernel's step loop. Purely observational.
pub trait StepObserver {
    /// Called after each phase with the number of items it processed
    /// (arrived objects, generated transactions, scheduled entries,
    /// commits, departures) and its wall-clock duration.
    fn on_phase(&mut self, t: Time, phase: Phase, items: usize, elapsed: Duration);

    /// Called at the end of each step with everything the tick changed
    /// (step `effects.t`, live-set size `effects.live_after`, plus the
    /// full per-phase item lists).
    fn on_step_end(&mut self, effects: &StepEffects) {
        let _ = effects;
    }

    /// Whether this observer wants wall-clock phase timing at step `t`.
    ///
    /// When every attached observer declines, the kernel skips its
    /// `Instant::now` calls for the step and passes
    /// [`Duration::ZERO`] to [`StepObserver::on_phase`]. Sampling
    /// observers (e.g. a telemetry sink timing every 64th step) override
    /// this to keep observation overhead off the hot path; the default
    /// keeps the historical full-timing behavior.
    fn wants_timing(&self, t: Time) -> bool {
        let _ = t;
        true
    }

    /// Whether this observer wants [`StepObserver::on_phase`] callbacks
    /// at step `t`.
    ///
    /// Observers that work purely from the end-of-step effects (health
    /// watchdogs, ring recorders on unsampled steps) return `false` to
    /// skip five no-op calls per step — for shared `Arc<Mutex<_>>`
    /// handles that is five lock round-trips. The kernel asks once per
    /// tick; a declined step also forfeits that step's timing
    /// callbacks, so keep this consistent with
    /// [`StepObserver::wants_timing`].
    fn wants_phases(&self, t: Time) -> bool {
        let _ = t;
        true
    }
}

/// Accumulated statistics for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of times the phase ran.
    pub calls: u64,
    /// Total items processed across all calls.
    pub items: u64,
    /// Total wall-clock nanoseconds.
    pub nanos: u128,
}

/// A ready-made [`StepObserver`] accumulating per-phase counters and
/// timings plus peak live-set size. Attach a shared handle with
/// `Arc<Mutex<PhaseProfile>>` (the same pattern as the policy stats
/// handles) and read it after the run.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    /// Per-phase statistics, indexed by [`Phase::index`].
    pub phases: [PhaseStats; 5],
    /// Number of completed steps.
    pub steps: u64,
    /// Largest live-set size seen at any step end.
    pub peak_live: usize,
}

impl PhaseProfile {
    /// Statistics for `phase`.
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        &self.phases[phase.index()]
    }

    /// One line per phase: `name calls=<n> items=<n> nanos=<n>`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in Phase::ALL {
            let s = self.phase(p);
            let _ = writeln!(
                out,
                "{} calls={} items={} nanos={}",
                p.name(),
                s.calls,
                s.items,
                s.nanos
            );
        }
        out
    }
}

impl StepObserver for PhaseProfile {
    fn on_phase(&mut self, _t: Time, phase: Phase, items: usize, elapsed: Duration) {
        let s = &mut self.phases[phase.index()];
        s.calls += 1;
        s.items += items as u64;
        s.nanos += elapsed.as_nanos();
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        self.steps += 1;
        self.peak_live = self.peak_live.max(effects.live_after);
    }
}

/// Shared-handle forwarding: lets the caller keep one end of an
/// `Arc<Mutex<_>>` while the engine owns the other.
impl<T: StepObserver> StepObserver for Arc<Mutex<T>> {
    fn on_phase(&mut self, t: Time, phase: Phase, items: usize, elapsed: Duration) {
        self.lock().on_phase(t, phase, items, elapsed);
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        self.lock().on_step_end(effects);
    }

    fn wants_timing(&self, t: Time) -> bool {
        self.lock().wants_timing(t)
    }

    fn wants_phases(&self, t: Time) -> bool {
        self.lock().wants_phases(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(t: Time, live_after: usize) -> StepEffects {
        StepEffects {
            t,
            live_after,
            ..StepEffects::default()
        }
    }

    #[test]
    fn profile_accumulates() {
        let mut p = PhaseProfile::default();
        p.on_phase(0, Phase::Receive, 2, Duration::from_nanos(10));
        p.on_phase(0, Phase::Receive, 3, Duration::from_nanos(5));
        p.on_phase(0, Phase::Execute, 1, Duration::from_nanos(7));
        p.on_step_end(&fx(0, 4));
        p.on_step_end(&fx(1, 2));
        assert_eq!(p.phase(Phase::Receive).calls, 2);
        assert_eq!(p.phase(Phase::Receive).items, 5);
        assert_eq!(p.phase(Phase::Receive).nanos, 15);
        assert_eq!(p.phase(Phase::Execute).items, 1);
        assert_eq!(p.steps, 2);
        assert_eq!(p.peak_live, 4);
        assert!(p.render().contains("receive calls=2 items=5 nanos=15"));
    }

    #[test]
    fn shared_handle_forwards() {
        let shared = Arc::new(Mutex::new(PhaseProfile::default()));
        let mut handle = Arc::clone(&shared);
        handle.on_phase(3, Phase::Forward, 9, Duration::from_nanos(1));
        handle.on_step_end(&fx(3, 1));
        assert_eq!(shared.lock().phase(Phase::Forward).items, 9);
        assert_eq!(shared.lock().steps, 1);
    }

    #[test]
    fn phase_indices_are_dense_and_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
