//! Independent re-validation of a run's event log.
//!
//! The engine is trusted nowhere: this module replays the event log with
//! its own object-position state machine and proves that the execution was
//! physically possible and conflict-free under the data-flow model:
//!
//! * objects move only over existing edges, paying exactly
//!   `weight * speed_divisor` per traversal, and are in one place at a time;
//! * link-capacity limits (when configured) are never exceeded;
//! * every commit happens at the transaction's home with **all** its
//!   objects present, at (or, in late mode, after) its scheduled time;
//! * no two conflicting transactions commit at the same step;
//! * scheduling decisions are made at or after generation, never in the
//!   past, and never revised.

use crate::events::Event;
use crate::metrics::RunResult;
use dtm_graph::{Network, NodeId};
use dtm_model::{ObjectId, Time, TxnId};
use std::collections::BTreeMap;
use std::fmt;

/// What went wrong during validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An object moved from a node it was not at (or while in flight).
    TeleportDeparture {
        /// Object.
        object: ObjectId,
        /// Claimed departure node.
        from: NodeId,
        /// Time.
        t: Time,
    },
    /// Departure over a non-existent edge.
    NoSuchEdge {
        /// Object.
        object: ObjectId,
        /// Edge endpoints.
        edge: (NodeId, NodeId),
    },
    /// Arrival time inconsistent with the edge weight and speed divisor.
    BadTravelTime {
        /// Object.
        object: ObjectId,
        /// Expected arrival.
        expected: Time,
        /// Claimed arrival.
        actual: Time,
    },
    /// Arrival event without a matching in-flight traversal.
    PhantomArrival {
        /// Object.
        object: ObjectId,
        /// Node.
        node: NodeId,
        /// Time.
        t: Time,
    },
    /// Concurrent objects on an edge exceeded the configured capacity.
    CapacityExceeded {
        /// Edge endpoints.
        edge: (NodeId, NodeId),
        /// Time.
        t: Time,
    },
    /// A commit happened away from the transaction's home.
    WrongHome {
        /// Transaction.
        txn: TxnId,
    },
    /// A commit happened without one of its objects present.
    ObjectMissing {
        /// Transaction.
        txn: TxnId,
        /// The missing object.
        object: ObjectId,
        /// Commit time.
        t: Time,
    },
    /// Two conflicting transactions committed at the same step.
    ConflictSameStep {
        /// First transaction.
        a: TxnId,
        /// Second transaction.
        b: TxnId,
        /// Shared object.
        object: ObjectId,
        /// Time.
        t: Time,
    },
    /// Commit at a time different from the scheduled time (strict mode),
    /// or before it (late mode).
    OffSchedule {
        /// Transaction.
        txn: TxnId,
        /// Scheduled time.
        scheduled: Time,
        /// Actual commit time.
        committed: Time,
    },
    /// A transaction committed twice, or committed without being generated
    /// or scheduled.
    LifecycleBroken {
        /// Transaction.
        txn: TxnId,
    },
    /// A scheduling decision precedes generation or targets the past.
    BadSchedulingDecision {
        /// Transaction.
        txn: TxnId,
    },
    /// Some generated transaction never committed (when completeness is
    /// required).
    Unfinished {
        /// Number of unfinished transactions.
        count: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ValidationError {}

/// Validation parameters (mirror of the engine config used for the run).
#[derive(Clone, Debug)]
pub struct ValidationConfig {
    /// Speed divisor the run used.
    pub speed_divisor: u64,
    /// Link capacity the run used.
    pub link_capacity: Option<u32>,
    /// Whether late execution was allowed.
    pub allow_late_execution: bool,
    /// Require every generated transaction to have committed.
    pub require_all_committed: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            speed_divisor: 1,
            link_capacity: None,
            allow_late_execution: false,
            require_all_committed: true,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pos {
    At(NodeId),
    Moving { to: NodeId, arrive: Time },
}

/// Replay and validate the event log of `result` against `network`.
///
/// Returns the number of commits checked.
pub fn validate_events(
    network: &Network,
    result: &RunResult,
    cfg: &ValidationConfig,
) -> Result<usize, ValidationError> {
    let mut pos: BTreeMap<ObjectId, Pos> = BTreeMap::new();
    let mut gen_time: BTreeMap<TxnId, Time> = BTreeMap::new();
    let mut sched_time: BTreeMap<TxnId, Time> = BTreeMap::new();
    let mut committed: BTreeMap<TxnId, Time> = BTreeMap::new();
    // Objects consumed by a commit at the current step.
    let mut step_objects: BTreeMap<ObjectId, TxnId> = BTreeMap::new();
    let mut step_time: Time = 0;
    let mut commit_count = 0usize;

    for e in &result.events {
        if e.time() != step_time {
            step_time = e.time();
            step_objects.clear();
        }
        match *e {
            Event::ObjectCreated { object, node, .. } => {
                pos.insert(object, Pos::At(node));
            }
            Event::Generated { t, txn, .. } => {
                gen_time.insert(txn, t);
            }
            Event::Scheduled { t, txn, exec_at } => {
                let generated = gen_time
                    .get(&txn)
                    .copied()
                    .ok_or(ValidationError::LifecycleBroken { txn })?;
                if t < generated || exec_at < t || sched_time.contains_key(&txn) {
                    return Err(ValidationError::BadSchedulingDecision { txn });
                }
                sched_time.insert(txn, exec_at);
            }
            Event::Departed {
                t,
                object,
                from,
                to,
                arrive,
            } => {
                match pos.get(&object) {
                    Some(&Pos::At(v)) if v == from => {}
                    _ => return Err(ValidationError::TeleportDeparture { object, from, t }),
                }
                let w =
                    network
                        .graph()
                        .edge_weight(from, to)
                        .ok_or(ValidationError::NoSuchEdge {
                            object,
                            edge: (from, to),
                        })?;
                let expected = t + w * cfg.speed_divisor;
                if arrive != expected {
                    return Err(ValidationError::BadTravelTime {
                        object,
                        expected,
                        actual: arrive,
                    });
                }
                pos.insert(object, Pos::Moving { to, arrive });
            }
            Event::Arrived { t, object, node } => {
                match pos.get(&object) {
                    Some(&Pos::Moving { to, arrive }) if to == node && arrive == t => {}
                    _ => return Err(ValidationError::PhantomArrival { object, node, t }),
                }
                pos.insert(object, Pos::At(node));
                // Release edge occupancy: find the edge by the arrival
                // node; we tracked it at departure, so decrement whichever
                // edge ends at `node` — reconstructed from the Moving state
                // is enough because each object occupies one edge at a time.
                // (Handled conservatively: loads are decremented lazily via
                // the recount below.)
            }
            Event::Committed { t, txn, node } => {
                let tx = result
                    .txns
                    .get(&txn)
                    .ok_or(ValidationError::LifecycleBroken { txn })?;
                if tx.home != node {
                    return Err(ValidationError::WrongHome { txn });
                }
                if committed.contains_key(&txn) || !gen_time.contains_key(&txn) {
                    return Err(ValidationError::LifecycleBroken { txn });
                }
                let scheduled = sched_time
                    .get(&txn)
                    .copied()
                    .ok_or(ValidationError::LifecycleBroken { txn })?;
                let on_time = if cfg.allow_late_execution {
                    t >= scheduled
                } else {
                    t == scheduled
                };
                if !on_time {
                    return Err(ValidationError::OffSchedule {
                        txn,
                        scheduled,
                        committed: t,
                    });
                }
                for o in tx.objects() {
                    match pos.get(&o) {
                        Some(&Pos::At(v)) if v == node => {}
                        _ => return Err(ValidationError::ObjectMissing { txn, object: o, t }),
                    }
                    if let Some(&other) = step_objects.get(&o) {
                        return Err(ValidationError::ConflictSameStep {
                            a: other,
                            b: txn,
                            object: o,
                            t,
                        });
                    }
                    step_objects.insert(o, txn);
                }
                committed.insert(txn, t);
                commit_count += 1;
            }
        }
    }

    if let Some(cap) = cfg.link_capacity {
        validate_capacity(result, cap)?;
    }
    if cfg.require_all_committed {
        let unfinished = gen_time
            .keys()
            .filter(|t| !committed.contains_key(t))
            .count();
        if unfinished > 0 {
            return Err(ValidationError::Unfinished { count: unfinished });
        }
    }
    Ok(commit_count)
}

/// Validate capacity precisely: recount concurrent edge occupancy over time
/// from the event log. Separate pass because occupancy requires interval
/// overlap accounting.
pub fn validate_capacity(result: &RunResult, capacity: u32) -> Result<(), ValidationError> {
    // Collect (edge, start, end) intervals.
    let mut intervals: BTreeMap<(NodeId, NodeId), Vec<(Time, Time)>> = BTreeMap::new();
    let key = |a: NodeId, b: NodeId| if a <= b { (a, b) } else { (b, a) };
    for e in &result.events {
        if let Event::Departed {
            t,
            from,
            to,
            arrive,
            ..
        } = *e
        {
            intervals
                .entry(key(from, to))
                .or_default()
                .push((t, arrive));
        }
    }
    for (edge, mut ivs) in intervals {
        ivs.sort_unstable();
        // Sweep: at each start, count how many previous intervals still run.
        for (i, &(start, _)) in ivs.iter().enumerate() {
            let overlapping = ivs[..i]
                .iter()
                .filter(|&&(s, e)| s <= start && e > start)
                .count() as u32
                + 1;
            if overlapping > capacity {
                return Err(ValidationError::CapacityExceeded { edge, t: start });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_policy, EngineConfig};
    use crate::policy::SchedulingPolicy;
    use crate::state::SystemView;
    use dtm_graph::topology;
    use dtm_model::{Instance, ObjectInfo, Schedule, TraceSource, Transaction};

    struct Fixed(BTreeMap<TxnId, Time>);
    impl SchedulingPolicy for Fixed {
        fn step(&mut self, _: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
            arrivals
                .iter()
                .filter_map(|id| self.0.get(id).map(|&t| (*id, t)))
                .collect()
        }
        fn name(&self) -> String {
            "fixed".into()
        }
    }

    fn obj(id: u32, origin: u32) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(id),
            origin: NodeId(origin),
            created_at: 0,
        }
    }

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn valid_run_passes() {
        let net = topology::line(4);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0]), txn(1, 3, &[0])]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 2), (TxnId(1), 3)].into()),
            EngineConfig::default(),
        );
        res.expect_ok();
        let n = validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn tampered_commit_detected() {
        let net = topology::line(4);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0])]);
        let mut res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 2)].into()),
            EngineConfig::default(),
        );
        res.expect_ok();
        // Forge an extra commit at t=0, before the object could arrive.
        res.events.insert(
            0,
            Event::Committed {
                t: 0,
                txn: TxnId(0),
                node: NodeId(2),
            },
        );
        let err = validate_events(&net, &res, &ValidationConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::LifecycleBroken { .. } | ValidationError::ObjectMissing { .. }
        ));
    }

    #[test]
    fn tampered_travel_time_detected() {
        let net = topology::line(4);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0])]);
        let mut res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 2)].into()),
            EngineConfig::default(),
        );
        res.expect_ok();
        for e in &mut res.events {
            if let Event::Departed { arrive, .. } = e {
                *arrive = arrive.saturating_sub(1); // objects now teleport faster
                break;
            }
        }
        let err = validate_events(&net, &res, &ValidationConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::BadTravelTime { .. } | ValidationError::PhantomArrival { .. }
        ));
    }

    #[test]
    fn validates_speed_divisor() {
        let net = topology::line(3);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0])]);
        let cfg = EngineConfig {
            speed_divisor: 3,
            ..EngineConfig::default()
        };
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 6)].into()),
            cfg,
        );
        res.expect_ok();
        let vcfg = ValidationConfig {
            speed_divisor: 3,
            ..ValidationConfig::default()
        };
        validate_events(&net, &res, &vcfg).unwrap();
        // Wrong divisor must fail.
        let bad = ValidationConfig::default();
        assert!(validate_events(&net, &res, &bad).is_err());
    }

    #[test]
    fn unfinished_detected() {
        let net = topology::line(3);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 2, &[0])]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed(BTreeMap::new()), // never schedules
            EngineConfig {
                max_steps: 10,
                ..EngineConfig::default()
            },
        );
        let err = validate_events(&net, &res, &ValidationConfig::default()).unwrap_err();
        assert_eq!(err, ValidationError::Unfinished { count: 1 });
    }

    #[test]
    fn capacity_validation() {
        let net = topology::line(2);
        let inst = Instance::new(
            vec![obj(0, 0), obj(1, 0)],
            vec![txn(0, 1, &[0]), txn(1, 1, &[1])],
        );
        let cfg = EngineConfig {
            link_capacity: Some(1),
            allow_late_execution: true,
            ..EngineConfig::default()
        };
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 1), (TxnId(1), 1)].into()),
            cfg,
        );
        res.expect_ok();
        validate_capacity(&res, 1).unwrap();
        let vcfg = ValidationConfig {
            link_capacity: Some(1),
            allow_late_execution: true,
            ..ValidationConfig::default()
        };
        validate_events(&net, &res, &vcfg).unwrap();
    }
}
