//! Run results and execution-quality metrics.

use crate::events::Event;
use dtm_model::{Schedule, Time, Transaction, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Ways a run can go wrong. A correct scheduler on a correct engine
/// produces none; experiments assert emptiness.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A transaction's scheduled time arrived but some object was missing.
    MissedExecution {
        /// The transaction.
        txn: TxnId,
        /// The scheduled time that was missed.
        scheduled: Time,
    },
    /// A policy tried to schedule a transaction in the past.
    ScheduledInPast {
        /// The transaction.
        txn: TxnId,
        /// The (invalid) proposed time.
        proposed: Time,
        /// Current time when proposed.
        now: Time,
    },
    /// A policy tried to re-time an already scheduled transaction.
    Rescheduled {
        /// The transaction.
        txn: TxnId,
    },
    /// A policy scheduled an unknown / already-committed transaction.
    UnknownTxn {
        /// The transaction.
        txn: TxnId,
    },
    /// The run hit the step limit with live transactions remaining.
    MaxStepsExceeded {
        /// Number of transactions still live.
        live: usize,
        /// The lowest-id live transactions, capped at
        /// [`Violation::MAX_REPORTED_LIVE`] so a stuck large run stays
        /// reportable.
        sample: Vec<TxnId>,
    },
}

impl Violation {
    /// Cap on the live-transaction sample carried by
    /// [`Violation::MaxStepsExceeded`].
    pub const MAX_REPORTED_LIVE: usize = 8;
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissedExecution { txn, scheduled } => {
                write!(f, "{txn} missed its scheduled execution at {scheduled}")
            }
            Violation::ScheduledInPast { txn, proposed, now } => {
                write!(f, "{txn} scheduled at {proposed} < now {now}")
            }
            Violation::Rescheduled { txn } => write!(f, "{txn} re-scheduled"),
            Violation::UnknownTxn { txn } => write!(f, "unknown {txn} scheduled"),
            Violation::MaxStepsExceeded { live, sample } => {
                write!(f, "step limit reached with {live} live transactions")?;
                if !sample.is_empty() {
                    let ids: Vec<String> = sample.iter().map(|t| t.to_string()).collect();
                    write!(f, " (e.g. {})", ids.join(", "))?;
                    if *live > sample.len() {
                        write!(f, " and {} more", live - sample.len())?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Latency distribution summary (execution duration `t_T - t` per
/// transaction, the quantity the competitive ratio bounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of committed transactions.
    pub count: usize,
    /// Mean latency.
    pub mean: f64,
    /// Median latency.
    pub p50: Time,
    /// 95th percentile latency.
    pub p95: Time,
    /// Maximum latency.
    pub max: Time,
}

impl LatencySummary {
    /// Summarize a latency sample (unsorted).
    pub fn from_samples(mut samples: Vec<Time>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&x| x as u128).sum();
        LatencySummary {
            count,
            mean: sum as f64 / count as f64,
            p50: percentile(&samples, 0.50),
            p95: percentile(&samples, 0.95),
            max: samples[count - 1],
        }
    }
}

/// Number of log2 buckets in a [`Log2Histogram`]: bucket 0 holds the
/// value 0, bucket `i >= 1` holds `[2^(i-1), 2^i - 1]`; 65 covers `u64`.
const LOG2_BUCKETS: usize = 65;

/// Fixed-size log2-bucketed histogram of `Time` samples — the
/// bounded-memory latency accumulator for open-system (streaming) runs,
/// where keeping one sample per commit would grow without bound.
///
/// Deterministic and allocation-free after construction: recording is a
/// bucket increment plus min/max/sum updates. Percentiles are
/// approximate — nearest-rank over buckets, reporting the bucket's
/// **upper bound** — so a reported p95 of 127 means "at least 95% of
/// samples were ≤ 127"; relative error is bounded by the 2× bucket
/// width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: Time) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> Time {
        self.max
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> Time {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate nearest-rank percentile: the upper bound of the first
    /// bucket whose cumulative count reaches `⌈p·n⌉`, clamped to the
    /// observed maximum. 0 when empty.
    pub fn percentile(&self, p: f64) -> Time {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 0 for bucket 0, else 2^i - 1.
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Condense into a [`LatencySummary`] (approximate percentiles; see
    /// [`Log2Histogram::percentile`]).
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.count as usize,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            max: self.max,
        }
    }
}

/// Nearest-rank percentile of a **sorted, non-empty** sample: the
/// smallest element such that at least `⌈p·n⌉` samples are ≤ it
/// (`sorted[⌈p·n⌉ - 1]`). This is the textbook nearest-rank definition:
/// p50 of `[1, 2]` is 1 (rank ⌈1⌉), not 2 — the previous
/// `round((n-1)·p)` indexing rounded half-way points up, biasing every
/// even-count median (and p99 on most sample sizes) toward the maximum.
///
/// # Panics
/// Panics on an empty sample; callers summarize emptiness separately.
pub fn percentile(sorted: &[Time], p: f64) -> Time {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate metrics of one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Time of the last commit (total execution time / makespan).
    pub makespan: Time,
    /// Committed transaction count.
    pub committed: usize,
    /// Total weighted distance traveled by all objects (the paper's
    /// *communication cost*).
    pub comm_cost: u64,
    /// Total number of edge traversals (hops).
    pub hops: u64,
    /// Latency summary over committed transactions.
    pub latency: LatencySummary,
    /// Peak number of simultaneously live transactions.
    pub peak_live: usize,
    /// Number of time steps simulated.
    pub steps: Time,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final merged schedule (txn -> execution time).
    pub schedule: Schedule,
    /// Commit time per transaction.
    pub commits: BTreeMap<TxnId, Time>,
    /// Generation time per transaction.
    pub generated: BTreeMap<TxnId, Time>,
    /// Every transaction seen during the run (needed by the validator and
    /// by post-processing).
    pub txns: BTreeMap<TxnId, Transaction>,
    /// Aggregate metrics.
    pub metrics: Metrics,
    /// Event log (empty when event recording is disabled).
    pub events: Vec<Event>,
    /// Violations (empty for a correct run).
    pub violations: Vec<Violation>,
    /// Name of the policy that produced the run.
    pub policy: String,
}

impl RunResult {
    /// True when the run completed with no violations.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-transaction execution duration `commit - generated`.
    pub fn latencies(&self) -> Vec<(TxnId, Time)> {
        self.commits
            .iter()
            .map(|(&id, &c)| (id, c - self.generated.get(&id).copied().unwrap_or(0)))
            .collect()
    }

    /// Assert the run is clean; panics with diagnostics otherwise.
    /// Convenient in tests and experiment harnesses.
    pub fn expect_ok(&self) -> &Self {
        assert!(
            self.ok(),
            "run with policy {} had violations: {:?}",
            self.policy,
            self.violations
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_basic() {
        let s = LatencySummary::from_samples(vec![5, 1, 3, 2, 4]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3);
        assert_eq!(s.max, 5);
    }

    #[test]
    fn latency_summary_empty() {
        let s = LatencySummary::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn latency_summary_p95() {
        let samples: Vec<Time> = (1..=100).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.p95, 95); // rank ceil(100 * 0.95) = 95 -> sample 95
        assert_eq!(s.p50, 50); // rank ceil(100 * 0.50) = 50 -> sample 50
    }

    #[test]
    fn percentile_nearest_rank_even_count() {
        // The case the old round() indexing got wrong: p50 of two samples
        // must be the *lower* one (rank ceil(1.0) = 1).
        assert_eq!(percentile(&[10, 20], 0.50), 10);
        let sorted: Vec<Time> = vec![1, 2, 3, 4];
        assert_eq!(percentile(&sorted, 0.50), 2); // rank ceil(2.0) = 2
        assert_eq!(percentile(&sorted, 0.90), 4); // rank ceil(3.6) = 4
        assert_eq!(percentile(&sorted, 0.99), 4); // rank ceil(3.96) = 4
        let ten: Vec<Time> = (1..=10).collect();
        assert_eq!(percentile(&ten, 0.50), 5); // rank ceil(5.0) = 5
        assert_eq!(percentile(&ten, 0.90), 9); // rank ceil(9.0) = 9
        assert_eq!(percentile(&ten, 0.99), 10); // rank ceil(9.9) = 10
    }

    #[test]
    fn percentile_nearest_rank_odd_count() {
        let sorted: Vec<Time> = vec![1, 2, 3, 4, 5];
        assert_eq!(percentile(&sorted, 0.50), 3); // rank ceil(2.5) = 3
        assert_eq!(percentile(&sorted, 0.90), 5); // rank ceil(4.5) = 5
        assert_eq!(percentile(&sorted, 0.99), 5); // rank ceil(4.95) = 5
        let one = [42];
        assert_eq!(percentile(&one, 0.50), 42);
        assert_eq!(percentile(&one, 0.99), 42);
    }

    #[test]
    fn percentile_extreme_p_clamps() {
        let sorted: Vec<Time> = vec![1, 2, 3];
        assert_eq!(percentile(&sorted, 0.0), 1); // rank clamps up to 1
        assert_eq!(percentile(&sorted, 1.0), 3); // rank n
    }

    #[test]
    fn violation_display() {
        let v = Violation::MissedExecution {
            txn: TxnId(3),
            scheduled: 9,
        };
        assert!(v.to_string().contains("T3"));
    }
}

/// Peak concurrent object count per undirected edge, recovered from the
/// event log by interval sweep. The congestion quantity the paper's
/// conclusion asks about (§VI) — complements the engine's optional
/// `link_capacity` enforcement.
pub fn edge_congestion(
    result: &RunResult,
) -> BTreeMap<(dtm_graph::NodeId, dtm_graph::NodeId), u32> {
    use crate::events::Event;
    let key = |a: dtm_graph::NodeId, b: dtm_graph::NodeId| if a <= b { (a, b) } else { (b, a) };
    let mut intervals: BTreeMap<_, Vec<(Time, Time)>> = BTreeMap::new();
    for e in &result.events {
        if let Event::Departed {
            t,
            from,
            to,
            arrive,
            ..
        } = *e
        {
            intervals
                .entry(key(from, to))
                .or_default()
                .push((t, arrive));
        }
    }
    intervals
        .into_iter()
        .map(|(edge, mut ivs)| {
            ivs.sort_unstable();
            let peak = ivs
                .iter()
                .enumerate()
                .map(|(i, &(start, _))| {
                    ivs[..i]
                        .iter()
                        .filter(|&&(s, e)| s <= start && e > start)
                        .count() as u32
                        + 1
                })
                .max()
                .unwrap_or(0);
            (edge, peak)
        })
        .collect()
}

/// The maximum of [`edge_congestion`] over all edges (0 if nothing moved).
pub fn peak_congestion(result: &RunResult) -> u32 {
    edge_congestion(result).values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod congestion_tests {
    use super::*;
    use crate::events::Event;
    use dtm_graph::NodeId;
    use dtm_model::ObjectId;

    fn result_with_events(events: Vec<Event>) -> RunResult {
        RunResult {
            schedule: Schedule::new(),
            commits: BTreeMap::new(),
            generated: BTreeMap::new(),
            txns: BTreeMap::new(),
            metrics: Metrics::default(),
            events,
            violations: vec![],
            policy: "test".into(),
        }
    }

    #[test]
    fn overlapping_traversals_counted() {
        let res = result_with_events(vec![
            Event::Departed {
                t: 0,
                object: ObjectId(0),
                from: NodeId(0),
                to: NodeId(1),
                arrive: 5,
            },
            Event::Departed {
                t: 2,
                object: ObjectId(1),
                from: NodeId(1),
                to: NodeId(0),
                arrive: 7,
            },
            Event::Departed {
                t: 6,
                object: ObjectId(2),
                from: NodeId(0),
                to: NodeId(1),
                arrive: 11,
            },
        ]);
        let peaks = edge_congestion(&res);
        // Intervals [0,5), [2,7), [6,11): peak overlap 2.
        assert_eq!(peaks[&(NodeId(0), NodeId(1))], 2);
        assert_eq!(peak_congestion(&res), 2);
    }

    #[test]
    fn empty_run_has_zero_congestion() {
        let res = result_with_events(vec![]);
        assert_eq!(peak_congestion(&res), 0);
    }
}
