//! The run event log: everything the engine does, in order, so that
//! [`crate::validate`] can re-check the execution independently and
//! experiments can post-process traces.

use dtm_graph::NodeId;
use dtm_model::{ObjectId, Time, TxnId};
use serde::{Deserialize, Serialize};

/// One timestamped simulator event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// An object came into existence at a node.
    ObjectCreated {
        /// Time step.
        t: Time,
        /// The object.
        object: ObjectId,
        /// Where it appeared.
        node: NodeId,
    },
    /// A transaction was generated at its home node.
    Generated {
        /// Time step.
        t: Time,
        /// The transaction.
        txn: TxnId,
        /// Home node.
        node: NodeId,
    },
    /// A transaction received its designated execution time.
    Scheduled {
        /// Time step at which the decision was made.
        t: Time,
        /// The transaction.
        txn: TxnId,
        /// Designated execution time.
        exec_at: Time,
    },
    /// An object started traversing an edge.
    Departed {
        /// Departure time.
        t: Time,
        /// The object.
        object: ObjectId,
        /// Edge tail.
        from: NodeId,
        /// Edge head.
        to: NodeId,
        /// Arrival time at `to`.
        arrive: Time,
    },
    /// An object finished traversing an edge.
    Arrived {
        /// Arrival time.
        t: Time,
        /// The object.
        object: ObjectId,
        /// The node reached.
        node: NodeId,
    },
    /// A transaction executed (committed), having assembled its objects.
    Committed {
        /// Commit time.
        t: Time,
        /// The transaction.
        txn: TxnId,
        /// Home node.
        node: NodeId,
    },
}

impl Event {
    /// The event's time step.
    pub fn time(&self) -> Time {
        match *self {
            Event::ObjectCreated { t, .. }
            | Event::Generated { t, .. }
            | Event::Scheduled { t, .. }
            | Event::Departed { t, .. }
            | Event::Arrived { t, .. }
            | Event::Committed { t, .. } => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_times() {
        let e = Event::Committed {
            t: 9,
            txn: TxnId(1),
            node: NodeId(0),
        };
        assert_eq!(e.time(), 9);
        let d = Event::Departed {
            t: 2,
            object: ObjectId(0),
            from: NodeId(0),
            to: NodeId(1),
            arrive: 5,
        };
        assert_eq!(d.time(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let e = Event::Scheduled {
            t: 1,
            txn: TxnId(2),
            exec_at: 7,
        };
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
