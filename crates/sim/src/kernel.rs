//! The tickable step kernel: the engine's run loop as a resumable state
//! machine.
//!
//! [`StepKernel`] owns the complete runtime state of one simulation and
//! advances it exactly one time step per [`StepKernel::tick`], through
//! the same phases the monolithic loop used to run inline:
//!
//! ```text
//!        +------------+   +---------+   +----------+   +---------+   +---------+
//! t ---> | 0 creation |-->| receive |-->| generate |-->| schedule|-->| execute |
//!        +------------+   +---------+   +----------+   +---------+   +---------+
//!                                                                        |
//!                              t+1 <---- step end <---- forward  <-------+
//! ```
//!
//! Each tick returns a typed [`StepEffects`] value (objects created /
//! delivered / departed, transactions arrived / scheduled / committed /
//! aborted) instead of mutating everything behind a closed function.
//! [`crate::Engine::run`] is now a thin driver over this kernel; callers
//! needing finer control use [`StepKernel::run_steps`],
//! [`StepKernel::run_until`], or the checkpoint/resume pair
//! ([`StepKernel::checkpoint`] / [`RunCheckpoint::resume`]).
//!
//! **Resumability contract.** A checkpoint taken between two ticks
//! captures *all* state the remaining steps depend on: the live set and
//! schedule, object places, pending edge loads and forwarding pointers,
//! the inter-policy effects accumulator, the workload source, and the
//! policy itself (via [`SchedulingPolicy::fork`]). Resuming and driving
//! to completion therefore produces a [`RunResult`] byte-identical to an
//! uninterrupted run — pinned by `tests/resume.rs` for all five
//! policies. Observers are *not* part of a checkpoint (they are purely
//! observational); re-attach with [`StepKernel::with_observer`].

use crate::arena::RuntimeState;
use crate::effects::{edge_key, Delivery, Departure, StepEffects};
use crate::engine::{EngineConfig, Retention};
use crate::events::Event;
use crate::forwarding::ForwardingTable;
use crate::metrics::{LatencySummary, Log2Histogram, Metrics, RunResult, Violation};
use crate::observer::{Phase, StepObserver};
use crate::policy::SchedulingPolicy;
use crate::state::{LiveTxn, ObjectPlace, ObjectState, SystemView};
use dtm_graph::{Network, NodeId};
use dtm_model::{ObjectId, ObjectInfo, Schedule, Time, Transaction, TxnId, WorkloadSource};
use std::cmp::Reverse;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::time::Instant;

/// The engine's run loop as a resumable state machine. See the module
/// docs for the phase order and the resumability contract.
pub struct StepKernel<P, S> {
    network: Network,
    policy: P,
    config: EngineConfig,
    source: S,

    now: Time,
    /// Object specs not yet created, ordered by (created_at, id).
    // dtm-lint: bounded -- drained front-to-back by create_objects as created_at comes due
    pending_objects: VecDeque<ObjectInfo>,
    /// Arena-backed live transactions, objects and the requester index.
    state: RuntimeState,
    /// Transactions retired from the live arena (committed or aborted),
    /// appended in retirement order. Kept only under full retention for
    /// the result / validator; still-live leftovers (step-limit
    /// truncations) are folded in at [`StepKernel::finish`]. An
    /// append-only log instead of a `BTreeMap` keyed by id: the hot loop
    /// pays one `Vec` push per retirement and the id-keyed maps the
    /// result exposes are materialized once, at the end.
    // dtm-lint: bounded -- full-retention log only; Retention::Streaming keeps it empty
    retired: Vec<Transaction>,
    /// Append-only (txn, exec_at) log under full retention; materialized
    /// into the result's [`Schedule`] at [`StepKernel::finish`].
    // dtm-lint: bounded -- full-retention log only; Retention::Streaming keeps it empty
    sched_log: Vec<(TxnId, Time)>,
    /// Append-only (txn, commit time) log under full retention.
    // dtm-lint: bounded -- full-retention log only; Retention::Streaming keeps it empty
    commit_log: Vec<(TxnId, Time)>,
    /// Scheduled, uncommitted transactions ordered by (time, id).
    // dtm-lint: bounded -- entries leave at commit in phase_execute; O(scheduled live txns)
    exec_queue: BTreeSet<(Time, TxnId)>,
    /// Per object (dense, indexed by object id): scheduled pending
    /// requesters kept sorted by (time, id), each entry carrying its
    /// transaction's home node so the forward phase resolves an object's
    /// target without an arena lookup. Sorted `Vec`s beat ordered trees
    /// here: the forward scan reads `first()` per object per tick, and
    /// the lists are small (the object's scheduled backlog). Entries are
    /// removed on commit/abort, so every list's size is bounded by the
    /// live set — there are no per-transaction tombstones to prune, and
    /// the vector itself is bounded by the object population (which
    /// never shrinks by design: objects are the system's shared data,
    /// not its workload).
    // dtm-lint: bounded -- outer Vec is O(object population) by design; inner lists shrink as requests are served
    requesters: Vec<Vec<(Time, TxnId, NodeId)>>,
    /// In-transit objects: a min-heap on (arrive, id) from which the
    /// receive phase pops due deliveries instead of scanning every
    /// object. Invariant: one entry per object in `ObjectPlace::Hop`,
    /// pushed at departure and popped exactly when the hop completes —
    /// entries are never removed early, so a heap (cheaper per op than
    /// an ordered set) suffices.
    // dtm-lint: bounded -- popped exactly when each hop completes; O(objects in flight)
    transit: BinaryHeap<Reverse<(Time, ObjectId)>>,
    /// Objects currently traversing each undirected edge. Maintained
    /// **only when `config.link_capacity` is set** — it exists to answer
    /// the capacity admission check in the forward phase, and nothing
    /// else reads it (`StepEffects::edge_loads` and the congestion
    /// metrics are derived from effects/events, not from this map).
    /// Entries are removed when their load returns to zero, so the map
    /// holds only edges with objects currently on them.
    // dtm-lint: bounded -- entries removed when their load returns to zero; O(occupied edges)
    edge_load: BTreeMap<(NodeId, NodeId), u32>,
    /// Node-local forwarding pointers: (object, node) -> where that node
    /// last sent the object. Pointers are overwritten on each new
    /// departure of the object from that node and never removed: they
    /// are the Section V tracking trail ([`SystemView::forwarded_to`])
    /// — a request chasing an object must be able to follow the trail
    /// from any node the object ever left, so "remove on delivery"
    /// would be wrong, and memory is bounded by objects × nodes (see
    /// [`ForwardingTable`]).
    forwarding: ForwardingTable,

    // dtm-lint: bounded -- fixed at construction; never grows after new()
    observers: Vec<Box<dyn StepObserver>>,
    /// Per-tick bitmask of observers accepting `on_phase` this step
    /// (bit i = observer i; observers past bit 63 are always called).
    /// Recomputed at the top of every tick, never checkpointed.
    phase_mask: u64,
    // dtm-lint: bounded -- drained into StepEffects every tick (or truncated under streaming)
    events: Vec<Event>,
    // dtm-lint: bounded -- empty in correct runs; growth is itself the reported failure
    violations: Vec<Violation>,
    comm_cost: u64,
    hops: u64,
    peak_live: usize,

    /// Commits folded into scalars so streaming retention needs no maps.
    commit_count: u64,
    /// Time of the latest commit (streaming-mode makespan).
    last_commit: Time,
    /// Steady-state sojourn latency (commit − generation), recorded only
    /// under [`Retention::Streaming`] for transactions generated at or
    /// after the warmup cutoff.
    sojourn: Log2Histogram,

    /// Reusable buffer for the source's arrivals (phase 2): drained every
    /// tick, so the steady-state tick allocates nothing on quiet steps.
    // dtm-lint: bounded -- drained every tick; capacity plateaus at the largest arrival batch
    arrivals_buf: Vec<Transaction>,
    /// Scratch (object, target home) buffer for the forward phase.
    // dtm-lint: bounded -- cleared every forward phase; capacity plateaus at in-flight moves
    scratch_moves: Vec<(ObjectId, NodeId)>,
    /// Scratch due-transaction buffer for the execute phase.
    // dtm-lint: bounded -- cleared every execute phase; capacity plateaus at the due batch
    scratch_due: Vec<(Time, TxnId)>,
    /// Scratch object-id buffers reused by the execute phase
    /// (same-step object consumption) and `apply_fragment`.
    // dtm-lint: bounded -- cleared every use; capacity plateaus at objects touched per step
    scratch_used: Vec<ObjectId>,
    // dtm-lint: bounded -- cleared every use; capacity plateaus at objects touched per step
    scratch_objs: Vec<ObjectId>,

    /// Effects of the most recent tick (buffers reused across ticks).
    effects: StepEffects,
}

/// Where a run stands, under open-system (never-exhausting) sources as
/// well as closed batches. See [`StepKernel::status`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// More work may come: the source is live or transactions are in
    /// flight, and the step limit has not been reached.
    Open,
    /// The source is exhausted and every live transaction committed — the
    /// closed-batch notion of "done".
    Drained,
    /// The inclusive step limit was exceeded with the run still open.
    StepLimit,
}

/// Kernel gauges bundled for external health probes; see
/// [`StepKernel::vitals`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelVitals {
    /// The step the next tick will execute.
    pub now: Time,
    /// Live (generated, uncommitted) transactions.
    pub live: usize,
    /// Commits so far.
    pub commit_count: u64,
    /// Time of the latest commit (0 before the first).
    pub last_commit_at: Time,
    /// Arena slot high-water mark ([`StepKernel::arena_high_water`]).
    pub arena_high_water: usize,
    /// Peak simultaneously-live transactions ([`StepKernel::peak_live`]).
    pub peak_live: usize,
}

/// Sizes of the kernel's internal bookkeeping structures
/// ([`StepKernel::map_stats`]), each bounded for the life of a run —
/// the map-level companion of the arena's `slot_high_water()`
/// invariant, pinned under streaming churn by `tests/streaming.rs`:
///
/// - `exec_queue` ≤ live transactions (entries removed on commit/abort);
/// - `requester_entries` ≤ Σ |object set| over scheduled live
///   transactions (same removal discipline);
/// - `requester_objects` and `in_transit` ≤ objects ever created;
/// - `edge_load_entries` ≤ in-transit objects, and 0 whenever
///   `link_capacity` is unset (the map only feeds the admission check);
/// - `forwarding_entries` ≤ objects × nodes (trail pointers are
///   overwritten, never accumulated — see [`ForwardingTable`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelMapStats {
    /// Scheduled, uncommitted transactions awaiting execution.
    pub exec_queue: usize,
    /// Total (time, txn) entries across all per-object requester sets.
    pub requester_entries: usize,
    /// Objects with an (possibly empty) requester set allocated.
    pub requester_objects: usize,
    /// Objects currently traversing an edge.
    pub in_transit: usize,
    /// Edges with at least one object on them (capacity runs only).
    pub edge_load_entries: usize,
    /// Distinct (object, node) forwarding pointers recorded so far.
    pub forwarding_entries: usize,
}

/// A deterministic snapshot of a [`StepKernel`] between two ticks.
///
/// Captures everything the remaining steps depend on *except* the
/// attached observers (see the module docs). Obtained via
/// [`StepKernel::checkpoint`]; [`RunCheckpoint::resume`] turns it back
/// into a live kernel.
pub struct RunCheckpoint<P, S> {
    kernel: StepKernel<P, S>,
}

impl<P, S> RunCheckpoint<P, S> {
    /// The step the checkpointed run will execute next.
    pub fn now(&self) -> Time {
        self.kernel.now
    }

    /// Turn the snapshot back into a live kernel (no observers
    /// attached; see [`StepKernel::with_observer`]).
    pub fn resume(self) -> StepKernel<P, S> {
        self.kernel
    }
}

impl<P: SchedulingPolicy, S: WorkloadSource> StepKernel<P, S> {
    /// Build a kernel at step 0. Usually reached through
    /// [`crate::Engine::into_kernel`].
    pub(crate) fn new(
        network: Network,
        policy: P,
        config: EngineConfig,
        observers: Vec<Box<dyn StepObserver>>,
        source: S,
    ) -> Self {
        // Objects are created lazily at their creation step; collect specs.
        let mut pending: Vec<ObjectInfo> = source.objects().to_vec();
        pending.sort_by_key(|o| (o.created_at, o.id));
        let forwarding = ForwardingTable::new(network.n());
        StepKernel {
            network,
            policy,
            config,
            source,
            now: 0,
            pending_objects: VecDeque::from(pending),
            state: RuntimeState::new(),
            retired: Vec::new(),
            sched_log: Vec::new(),
            commit_log: Vec::new(),
            exec_queue: BTreeSet::new(),
            requesters: Vec::new(),
            transit: BinaryHeap::new(),
            edge_load: BTreeMap::new(),
            forwarding,
            observers,
            phase_mask: 0,
            events: Vec::new(),
            violations: Vec::new(),
            comm_cost: 0,
            hops: 0,
            peak_live: 0,
            commit_count: 0,
            last_commit: 0,
            sojourn: Log2Histogram::new(),
            arrivals_buf: Vec::new(),
            scratch_moves: Vec::new(),
            scratch_due: Vec::new(),
            scratch_used: Vec::new(),
            scratch_objs: Vec::new(),
            effects: StepEffects::default(),
        }
    }

    /// Attach a [`StepObserver`]; see [`crate::Engine::with_observer`].
    pub fn with_observer(mut self, observer: impl StepObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// The step the next [`StepKernel::tick`] will execute.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of live (generated, uncommitted) transactions.
    pub fn live_count(&self) -> usize {
        self.state.txns().len()
    }

    /// Effects of the most recent tick (empty before the first).
    pub fn last_effects(&self) -> &StepEffects {
        &self.effects
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// A read-only [`SystemView`] of the current state, as a policy
    /// would see it (forwarding pointers attached).
    pub fn view(&self) -> SystemView<'_> {
        SystemView::from_state(self.now, &self.network, &self.state)
            .with_forwarding(&self.forwarding)
    }

    /// True once the run is over: the source is exhausted and every
    /// transaction committed ([`StepKernel::drained`]), or the step
    /// limit was exceeded. Open-system sources never exhaust, so their
    /// kernels report `done()` only at the step limit — drive them with
    /// [`StepKernel::run_for`] / [`StepKernel::run_until`] instead of
    /// running to completion.
    pub fn done(&self) -> bool {
        self.drained() || self.now > self.config.max_steps
    }

    /// True when the source will produce no further arrivals **and**
    /// every live transaction has committed — the closed-batch notion of
    /// completion, split out from the step-limit stop of
    /// [`StepKernel::done`].
    pub fn drained(&self) -> bool {
        self.source.exhausted() && self.state.txns().is_empty()
    }

    /// Where the run stands: [`RunStatus::Drained`] if cleanly complete,
    /// [`RunStatus::StepLimit`] if stopped by the inclusive step limit
    /// while still open, [`RunStatus::Open`] otherwise.
    pub fn status(&self) -> RunStatus {
        if self.drained() {
            RunStatus::Drained
        } else if self.now > self.config.max_steps {
            RunStatus::StepLimit
        } else {
            RunStatus::Open
        }
    }

    /// Commits so far (maintained in every retention mode).
    pub fn commit_count(&self) -> u64 {
        self.commit_count
    }

    /// Time of the latest commit so far (0 before the first).
    pub fn last_commit_at(&self) -> Time {
        self.last_commit
    }

    /// Steady-state sojourn latency histogram (commit − generation).
    /// Populated only under [`Retention::Streaming`], and only for
    /// transactions generated at or after the configured warmup.
    pub fn sojourn_latency(&self) -> &Log2Histogram {
        &self.sojourn
    }

    /// High-water mark of transaction-arena *slots* ever allocated. With
    /// free-list recycling this is bounded by the peak live set, not by
    /// the total number of transactions that streamed through — the
    /// bounded-memory invariant open-system runs assert.
    pub fn arena_high_water(&self) -> usize {
        self.state.txns().slot_high_water()
    }

    /// Peak number of simultaneously live transactions so far.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Sizes of the kernel's internal bookkeeping maps, for boundedness
    /// assertions in long-run (streaming) tests. See [`KernelMapStats`]
    /// for the invariant each gauge is expected to satisfy.
    pub fn map_stats(&self) -> KernelMapStats {
        KernelMapStats {
            exec_queue: self.exec_queue.len(),
            requester_entries: self.requesters.iter().map(|s| s.len()).sum(),
            requester_objects: self.requesters.len(),
            in_transit: self.transit.len(),
            edge_load_entries: self.edge_load.len(),
            forwarding_entries: self.forwarding.len(),
        }
    }

    /// One-call bundle of the kernel gauges an external health probe
    /// wants per sample (observers cannot see the kernel, so harnesses
    /// read this between ticks and forward it — e.g. to
    /// `HealthMonitor::probe_arena` in `dtm-telemetry`).
    pub fn vitals(&self) -> KernelVitals {
        KernelVitals {
            now: self.now,
            live: self.state.txns().len(),
            commit_count: self.commit_count,
            last_commit_at: self.last_commit,
            arena_high_water: self.arena_high_water(),
            peak_live: self.peak_live,
        }
    }

    /// Advance exactly one time step through all phases, returning its
    /// effects — or `None` if the run is already [`StepKernel::done`].
    pub fn tick(&mut self) -> Option<&StepEffects> {
        if self.done() {
            return None;
        }
        let t = self.now;
        self.effects.clear();
        self.effects.t = t;
        // Timing is decided once per tick: when every attached observer
        // declines (or none is attached), no phase pays for Instant::now.
        let timed = !self.observers.is_empty() && self.observers.iter().any(|o| o.wants_timing(t));
        // Phase callbacks likewise: ask each observer once per tick, not
        // five times, so effects-only observers (health monitors, ring
        // recorders on unsampled steps) cost nothing during phases.
        self.phase_mask = 0;
        for (i, obs) in self.observers.iter().enumerate().take(64) {
            if obs.wants_phases(t) {
                self.phase_mask |= 1 << i;
            }
        }

        // 0. Object creation.
        self.create_objects(t);

        // 1. Receive: complete edge traversals.
        let mark = phase_mark(timed);
        let received = self.phase_receive(t);
        self.phase_end(t, Phase::Receive, received, mark);

        // 2. Generate.
        let mark = phase_mark(timed);
        let arrived = self.phase_generate(t);
        self.phase_end(t, Phase::Generate, arrived, mark);

        // 3. Schedule.
        let mark = phase_mark(timed);
        let fragment_len = self.phase_schedule(t);
        self.phase_end(t, Phase::Schedule, fragment_len, mark);

        // 4. Execute.
        let mark = phase_mark(timed);
        let committed = self.phase_execute(t);
        self.phase_end(t, Phase::Execute, committed, mark);

        // 5. Forward.
        let mark = phase_mark(timed);
        let departed = self.phase_forward(t);
        self.phase_end(t, Phase::Forward, departed, mark);

        self.effects.live_after = self.state.txns().len();
        for obs in &mut self.observers {
            obs.on_step_end(&self.effects);
        }
        self.now += 1;
        Some(&self.effects)
    }

    /// Advance at most `n` steps; returns how many actually ran (fewer
    /// only when the run completed first).
    pub fn run_steps(&mut self, n: u64) -> u64 {
        let mut ran = 0;
        while ran < n && self.tick().is_some() {
            ran += 1;
        }
        ran
    }

    /// Open-system vocabulary for [`StepKernel::run_steps`]: advance the
    /// simulation by `n` further steps of wall-model time. On a
    /// never-exhausting source this runs exactly `n` steps (step limit
    /// permitting); interleave with [`StepKernel::status`] /
    /// [`StepKernel::live_count`] to watch backlog evolve.
    pub fn run_for(&mut self, n: u64) -> u64 {
        self.run_steps(n)
    }

    /// Advance until `pred` accepts a tick's effects. Returns `true` if
    /// the predicate fired, `false` if the run completed first.
    pub fn run_until(&mut self, mut pred: impl FnMut(&StepEffects) -> bool) -> bool {
        loop {
            match self.tick() {
                Some(fx) => {
                    if pred(fx) {
                        return true;
                    }
                }
                None => return false,
            }
        }
    }

    /// Snapshot the run between two ticks (see the module docs for the
    /// resumability contract). The policy is captured through
    /// [`SchedulingPolicy::fork`]; observers are not carried over.
    pub fn checkpoint(&self) -> RunCheckpoint<P, S>
    where
        P: Clone,
        S: Clone,
    {
        RunCheckpoint {
            kernel: StepKernel {
                network: self.network.clone(),
                policy: self.policy.fork(),
                config: self.config.clone(),
                source: self.source.clone(),
                now: self.now,
                pending_objects: self.pending_objects.clone(),
                state: self.state.clone(),
                retired: self.retired.clone(),
                sched_log: self.sched_log.clone(),
                commit_log: self.commit_log.clone(),
                exec_queue: self.exec_queue.clone(),
                requesters: self.requesters.clone(),
                transit: self.transit.clone(),
                edge_load: self.edge_load.clone(),
                forwarding: self.forwarding.clone(),
                observers: Vec::new(),
                phase_mask: 0,
                events: self.events.clone(),
                violations: self.violations.clone(),
                comm_cost: self.comm_cost,
                hops: self.hops,
                peak_live: self.peak_live,
                commit_count: self.commit_count,
                last_commit: self.last_commit,
                sojourn: self.sojourn.clone(),
                // Scratch buffers hold no state between ticks.
                arrivals_buf: Vec::new(),
                scratch_moves: Vec::new(),
                scratch_due: Vec::new(),
                scratch_used: Vec::new(),
                scratch_objs: Vec::new(),
                effects: self.effects.clone(),
            },
        }
    }

    /// Drive the run to completion and seal the result. Equivalent to
    /// the pre-kernel `Engine::run`.
    pub fn finish(mut self) -> RunResult {
        while self.tick().is_some() {}
        // Inclusive bound: steps 0..=max_steps ran; reaching
        // max_steps + 1 with live transactions is the violation. A
        // clean finish (source exhausted, live set empty) at the same
        // step is *not* one.
        if self.now > self.config.max_steps
            && !(self.source.exhausted() && self.state.txns().is_empty())
        {
            let mut sample: Vec<TxnId> = self.state.txns().ids().collect();
            sample.sort_unstable();
            sample.truncate(Violation::MAX_REPORTED_LIVE);
            self.violations.push(Violation::MaxStepsExceeded {
                live: self.state.txns().len(),
                sample,
            });
        }
        // Materialize the result's id-keyed maps from the append-only
        // retirement logs (once, here — the hot loop only pushes). Full
        // retention also folds in transactions still live at the end
        // (step-limit truncations), so `txns` covers every generated
        // transaction exactly as the old insert-at-arrival map did.
        if self.config.retention.is_full() {
            let mut live: Vec<TxnId> = self.state.txns().ids().collect();
            live.sort_unstable();
            for id in live {
                let lt = self.state.txns().get(id).expect("live"); // dtm-lint: allow(C1) -- id was just collected from the live arena
                self.retired.push(lt.txn.clone());
            }
        }
        let commits: BTreeMap<TxnId, Time> = self.commit_log.iter().copied().collect();
        let txns: BTreeMap<TxnId, Transaction> =
            self.retired.into_iter().map(|tx| (tx.id, tx)).collect();
        let generated: BTreeMap<TxnId, Time> =
            txns.iter().map(|(&id, tx)| (id, tx.generated_at)).collect();
        let mut schedule = Schedule::new();
        for &(txn, exec_at) in &self.sched_log {
            schedule.set(txn, exec_at);
        }
        let metrics = match self.config.retention {
            Retention::Full => {
                let latencies: Vec<Time> = commits
                    .iter()
                    .map(|(id, &c)| c - generated.get(id).copied().unwrap_or(0))
                    .collect();
                Metrics {
                    makespan: commits.values().copied().max().unwrap_or(0),
                    committed: commits.len(),
                    comm_cost: self.comm_cost,
                    hops: self.hops,
                    latency: LatencySummary::from_samples(latencies),
                    peak_live: self.peak_live,
                    steps: self.now,
                }
            }
            // Streaming retention: the per-transaction maps are empty by
            // design; commits were folded into scalars and the sojourn
            // histogram as they happened.
            Retention::Streaming { .. } => Metrics {
                makespan: self.last_commit,
                committed: self.commit_count as usize,
                comm_cost: self.comm_cost,
                hops: self.hops,
                latency: self.sojourn.summary(),
                peak_live: self.peak_live,
                steps: self.now,
            },
        };
        RunResult {
            schedule,
            commits,
            generated,
            txns,
            metrics,
            events: self.events,
            violations: self.violations,
            policy: self.policy.name(),
        }
    }

    fn record(&mut self, e: Event) {
        // An unbounded event log would defeat streaming's bounded-memory
        // guarantee, so only full retention ever records.
        if self.config.record_events && self.config.retention.is_full() {
            self.events.push(e);
        }
    }

    fn phase_end(&mut self, t: Time, phase: Phase, items: usize, started: Option<Instant>) {
        if self.phase_mask == 0 && self.observers.len() <= 64 {
            return;
        }
        let elapsed = started.map_or(std::time::Duration::ZERO, |s| s.elapsed());
        for (i, obs) in self.observers.iter_mut().enumerate() {
            if i < 64 && self.phase_mask & (1 << i) == 0 {
                continue;
            }
            obs.on_phase(t, phase, items, elapsed);
        }
    }

    /// Phase 0: create objects whose creation step has come.
    // dtm-lint: hot-path
    fn create_objects(&mut self, t: Time) {
        while let Some(first) = self.pending_objects.front() {
            if first.created_at > t {
                break;
            }
            // dtm-lint: allow(C1) -- front() above returned Some, the deque is non-empty
            let info = self.pending_objects.pop_front().expect("non-empty");
            self.record(Event::ObjectCreated {
                t,
                object: info.id,
                node: info.origin,
            });
            self.state.insert_object(ObjectState {
                info,
                place: ObjectPlace::At(info.origin),
                last_holder: None,
            });
            self.effects.created.push(info.id);
        }
        // One batched append into the inter-policy accumulator (this
        // phase is the only writer of `created` within a tick).
        if !self.effects.created.is_empty() {
            self.state
                .effects_mut()
                .created
                .extend_from_slice(&self.effects.created);
        }
    }

    /// Phase 1: objects completing edge traversals arrive at their next
    /// node. Returns the number of deliveries.
    ///
    /// Due deliveries are popped from the in-transit min-queue in
    /// O(due · log) — a quiet step costs one `first()` peek, not a scan
    /// of every object. With `speed_divisor >= 1` (asserted at engine
    /// construction) every due entry has `arrive == t` exactly, so the
    /// (arrive, id) pop order coincides with the object-id scan order
    /// the pre-queue kernel used — deliveries stay byte-identical.
    // dtm-lint: hot-path
    fn phase_receive(&mut self, t: Time) -> usize {
        let mut received = 0;
        while let Some(&Reverse((arrive, id))) = self.transit.peek() {
            if arrive > t {
                break;
            }
            self.transit.pop();
            received += 1;
            let st = self.state.object_mut(id).expect("object exists"); // dtm-lint: allow(C1) -- transit entries are inserted/removed in lockstep with ObjectPlace::Hop
            let ObjectPlace::Hop { from, next, .. } = st.place else {
                debug_assert!(false, "transit entry for a resting object");
                continue;
            };
            st.place = ObjectPlace::At(next);
            if self.config.link_capacity.is_some() {
                // Exact load accounting (the map feeds the capacity
                // admission check): decrement must find the departure's
                // increment, and an edge whose load returns to zero is
                // dropped so checkpoints carry no dead keys.
                let key = edge_key(from, next);
                match self.edge_load.get_mut(&key) {
                    Some(load) => {
                        debug_assert!(*load > 0, "edge load underflow on {key:?}");
                        *load -= 1;
                        if *load == 0 {
                            self.edge_load.remove(&key);
                        }
                    }
                    None => debug_assert!(false, "delivery on untracked edge {key:?}"),
                }
            }
            let delivery = Delivery {
                object: id,
                from,
                node: next,
            };
            self.effects.delivered.push(delivery);
            self.record(Event::Arrived {
                t,
                object: id,
                node: next,
            });
        }
        if !self.effects.delivered.is_empty() {
            self.state
                .effects_mut()
                .delivered
                .extend_from_slice(&self.effects.delivered);
        }
        received
    }

    /// Phase 2: the workload source's arrivals join the live set.
    /// Returns the number of arrivals (ids land in `effects.arrived`).
    // dtm-lint: hot-path
    fn phase_generate(&mut self, t: Time) -> usize {
        let mut batch = std::mem::take(&mut self.arrivals_buf);
        self.source.arrivals_into(t, &mut batch);
        for txn in batch.drain(..) {
            debug_assert_eq!(txn.generated_at, t, "source produced wrong time");
            self.record(Event::Generated {
                t,
                txn: txn.id,
                node: txn.home,
            });
            self.effects.arrived.push(txn.id);
            self.state.insert_txn(LiveTxn {
                txn,
                scheduled: None,
            });
        }
        if !self.effects.arrived.is_empty() {
            self.state
                .effects_mut()
                .arrived
                .extend_from_slice(&self.effects.arrived);
        }
        self.arrivals_buf = batch;
        self.peak_live = self.peak_live.max(self.state.txns().len());
        self.effects.arrived.len()
    }

    /// Phase 3: consult the policy once and merge its fragment. The
    /// view publishes the effects accumulated since the previous policy
    /// call; they are cleared right after the policy returns, so
    /// `apply_fragment` and the later phases of this step feed the
    /// *next* call's accumulator. Returns the raw fragment length.
    // dtm-lint: hot-path
    fn phase_schedule(&mut self, t: Time) -> usize {
        let fragment = {
            let view = SystemView::from_state(t, &self.network, &self.state)
                .with_forwarding(&self.forwarding);
            self.policy.step(&view, &self.effects.arrived)
        };
        self.state.effects_mut().clear();
        let fragment_len = fragment.len();
        self.apply_fragment(fragment);
        fragment_len
    }

    /// Merge a policy's schedule fragment, enforcing the "never re-time"
    /// and "never in the past" rules.
    // dtm-lint: hot-path
    fn apply_fragment(&mut self, fragment: Schedule) {
        let t = self.now;
        let mut objects = std::mem::take(&mut self.scratch_objs);
        for (txn, exec_at) in fragment.iter() {
            let Some(lt) = self.state.txn_mut(txn) else {
                self.violations.push(Violation::UnknownTxn { txn });
                continue;
            };
            if lt.scheduled.is_some() {
                self.violations.push(Violation::Rescheduled { txn });
                continue;
            }
            if exec_at < t {
                self.violations.push(Violation::ScheduledInPast {
                    txn,
                    proposed: exec_at,
                    now: t,
                });
                continue;
            }
            lt.scheduled = Some(exec_at);
            let home = lt.txn.home;
            objects.clear();
            objects.extend(lt.txn.objects());
            if self.config.retention.is_full() {
                self.sched_log.push((txn, exec_at));
            }
            self.exec_queue.insert((exec_at, txn));
            for &o in &objects {
                let i = o.index();
                if i >= self.requesters.len() {
                    self.requesters.resize_with(i + 1, Vec::new); // dtm-lint: allow(H1) -- grows once per new object; the population is monotone, so a warmed steady state never resizes
                }
                let list = &mut self.requesters[i];
                let entry = (exec_at, txn, home);
                if let Err(pos) = list.binary_search(&entry) {
                    list.insert(pos, entry);
                }
            }
            self.effects.scheduled.push((txn, exec_at));
            self.record(Event::Scheduled { t, txn, exec_at });
        }
        self.scratch_objs = objects;
        // The accumulator was cleared just before this call (see
        // `phase_schedule`), so the batch feeds the *next* policy call.
        if !self.effects.scheduled.is_empty() {
            self.state
                .effects_mut()
                .scheduled
                .extend_from_slice(&self.effects.scheduled);
        }
    }

    /// Phase 4: commit every due transaction whose objects are
    /// assembled. Returns the number of commits (aborts not counted).
    ///
    /// Two conflicting transactions never commit at the same step: an
    /// object consumed by a commit at this step is unavailable to later
    /// same-step commits (atomicity of the exclusive accesses).
    // dtm-lint: hot-path
    fn phase_execute(&mut self, t: Time) -> usize {
        let mut due = std::mem::take(&mut self.scratch_due);
        // Pop (rather than range-copy-then-remove) so each due entry
        // costs one ordered-set operation; the rare stays-queued case
        // (`allow_late_execution`) reinserts below.
        while let Some(&(exec_at, txn_id)) = self.exec_queue.first() {
            if exec_at > t {
                break;
            }
            self.exec_queue.pop_first();
            due.push((exec_at, txn_id));
        }
        // Objects consumed by this step's commits. Linear membership is
        // fine: a step commits a handful of transactions of k objects
        // each, and the buffer is reused across ticks (no allocation).
        let mut used_this_step = std::mem::take(&mut self.scratch_used);
        used_this_step.clear();
        for (exec_at, txn_id) in due.drain(..) {
            let lt = self
                .state
                .txns()
                .get(txn_id)
                .expect("scheduled txn is live"); // dtm-lint: allow(C1) -- exec_queue holds only live transactions (entries removed on commit/abort)
            let home = lt.txn.home;
            let assembled = lt.txn.objects().all(|o| {
                !used_this_step.contains(&o)
                    && matches!(
                        self.state.objects().get(o).map(|s| s.place),
                        Some(ObjectPlace::At(v)) if v == home
                    )
            });
            if assembled {
                // Commit.
                let txn = self.state.remove_txn(txn_id).expect("live").txn; // dtm-lint: allow(C1) -- committed txn was read from the live arena two lines above
                for o in txn.objects() {
                    used_this_step.push(o);
                    if let Some(list) = self.requesters.get_mut(o.index()) {
                        if let Ok(pos) = list.binary_search(&(exec_at, txn_id, home)) {
                            list.remove(pos);
                        }
                    }
                    // dtm-lint: allow(C1) -- object ids in a live txn's read/write set always exist in the arena
                    self.state.object_mut(o).expect("object exists").last_holder = Some(txn_id);
                }
                self.effects.committed.push(txn_id);
                self.commit_count += 1;
                self.last_commit = t;
                match self.config.retention {
                    Retention::Full => {
                        self.commit_log.push((txn_id, t));
                    }
                    Retention::Streaming { warmup } => {
                        if txn.generated_at >= warmup {
                            self.sojourn.record(t - txn.generated_at);
                        }
                    }
                }
                self.record(Event::Committed {
                    t,
                    txn: txn_id,
                    node: home,
                });
                self.source.on_commit(&txn, t);
                if self.config.retention.is_full() {
                    self.retired.push(txn);
                }
            } else if exec_at == t && !self.config.allow_late_execution {
                // Missed its designated slot: scheduler/infrastructure bug.
                self.violations.push(Violation::MissedExecution {
                    txn: txn_id,
                    scheduled: exec_at,
                });
                let txn = self.state.remove_txn(txn_id).expect("live").txn; // dtm-lint: allow(C1) -- violating txn was read from the live arena above
                for o in txn.objects() {
                    if let Some(list) = self.requesters.get_mut(o.index()) {
                        if let Ok(pos) = list.binary_search(&(exec_at, txn_id, txn.home)) {
                            list.remove(pos);
                        }
                    }
                }
                self.effects.aborted.push(txn_id);
                // Treat as aborted: tell the source so closed loops go on.
                self.source.on_commit(&txn, t);
                if self.config.retention.is_full() {
                    self.retired.push(txn);
                }
            } else {
                // allow_late_execution: stays queued, retried next step.
                self.exec_queue.insert((exec_at, txn_id));
            }
        }
        self.scratch_due = due;
        self.scratch_used = used_this_step;
        if !self.effects.committed.is_empty() {
            self.state
                .effects_mut()
                .committed
                .extend_from_slice(&self.effects.committed);
        }
        if !self.effects.aborted.is_empty() {
            self.state
                .effects_mut()
                .aborted
                .extend_from_slice(&self.effects.aborted);
        }
        self.effects.committed.len()
    }

    /// Phase 5: move every resting object one hop toward its earliest
    /// pending scheduled requester. Returns the number of departures.
    ///
    /// The scan walks the requester index, not the object arena: only
    /// objects with a scheduled requester can move, and each entry
    /// already carries the requester's home, so idle objects cost
    /// nothing and moving ones resolve their target without arena
    /// lookups. Index order is object-id order — the same departure
    /// order the arena scan produced.
    // dtm-lint: hot-path
    fn phase_forward(&mut self, t: Time) -> usize {
        let mut moves = std::mem::take(&mut self.scratch_moves);
        for (i, list) in self.requesters.iter().enumerate() {
            if let Some(&(_, _, home)) = list.first() {
                moves.push((ObjectId(i as u32), home));
            }
        }
        for (id, target_home) in moves.drain(..) {
            // One mutable arena probe serves both the place check and the
            // later in-place update; borrows of sibling fields (network,
            // edge_load, forwarding) stay disjoint from `state`.
            // Objects whose creation step has not come yet cannot move;
            // the old arena scan skipped them implicitly.
            let Some(st) = self.state.object_mut(id) else {
                continue;
            };
            let ObjectPlace::At(here) = st.place else {
                continue;
            };
            if here == target_home {
                continue; // staged at the requester's node
            }
            let (next, w) = self.network.hop_toward(here, target_home);
            if let Some(cap) = self.config.link_capacity {
                // Admission + increment in one ordered-map probe: all of
                // a step's departures on an edge batch against the same
                // entry, and uncapacitated runs skip the map entirely.
                match self.edge_load.entry(edge_key(here, next)) {
                    Entry::Occupied(mut e) => {
                        if *e.get() >= cap {
                            continue; // edge saturated: wait a step
                        }
                        *e.get_mut() += 1;
                    }
                    Entry::Vacant(e) => {
                        if cap == 0 {
                            continue; // zero-capacity edge never admits
                        }
                        e.insert(1);
                    }
                }
            }
            self.forwarding.insert(id, here, next);
            let arrive = t + w * self.config.speed_divisor;
            st.place = ObjectPlace::Hop {
                from: here,
                next,
                arrive,
            };
            self.transit.push(Reverse((arrive, id)));
            let departure = Departure {
                object: id,
                from: here,
                to: next,
                arrive,
            };
            self.effects.departed.push(departure);
            self.comm_cost += w;
            self.hops += 1;
            self.record(Event::Departed {
                t,
                object: id,
                from: here,
                to: next,
                arrive,
            });
        }
        self.scratch_moves = moves;
        if !self.effects.departed.is_empty() {
            self.state
                .effects_mut()
                .departed
                .extend_from_slice(&self.effects.departed);
        }
        self.effects.departed.len()
    }
}

/// Phase-timing start mark (only when the step is timed, so unobserved
/// and unsampled steps never pay for `Instant::now`).
fn phase_mark(timed: bool) -> Option<Instant> {
    if timed {
        Some(Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::policy::FixedSchedulePolicy;
    use dtm_graph::topology;
    use dtm_model::{Instance, TraceSource};

    fn obj(id: u32, origin: u32) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(id),
            origin: NodeId(origin),
            created_at: 0,
        }
    }

    fn txn(id: u64, home: u32, objs: &[u32], t: Time) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            t,
        )
    }

    /// Line of 4; object at node 0; T0 at node 2 (exec 2), T1 at node 3
    /// (exec 3). The per-tick effects narrate the whole run.
    fn small_kernel() -> StepKernel<FixedSchedulePolicy, TraceSource> {
        let net = topology::line(4);
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 2, &[0], 0), txn(1, 3, &[0], 0)],
        );
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 3)].into_iter().collect();
        Engine::new(
            net,
            FixedSchedulePolicy::new(sched),
            EngineConfig::default(),
        )
        .into_kernel(TraceSource::new(inst))
    }

    #[test]
    fn tick_effects_narrate_each_step() {
        let mut k = small_kernel();
        assert!(!k.done());
        assert_eq!(k.now(), 0);

        // Step 0: object created, both txns arrive + are scheduled, the
        // object departs toward node 2.
        let fx = k.tick().expect("step 0 runs");
        assert_eq!(fx.t, 0);
        assert_eq!(fx.created, vec![ObjectId(0)]);
        assert_eq!(fx.arrived, vec![TxnId(0), TxnId(1)]);
        assert_eq!(fx.scheduled, vec![(TxnId(0), 2), (TxnId(1), 3)]);
        assert!(fx.committed.is_empty());
        assert_eq!(fx.departed.len(), 1);
        assert_eq!(fx.departed[0].object, ObjectId(0));
        assert_eq!(fx.live_after, 2);
        assert_eq!(fx.edge_loads()[&(NodeId(0), NodeId(1))], 1);

        // Step 1: the object hops 0->1 (delivery), then departs 1->2.
        let fx = k.tick().expect("step 1 runs");
        assert_eq!(fx.delivered.len(), 1);
        assert_eq!(fx.departed.len(), 1);
        assert!(!fx.is_empty());

        // Step 2: delivery at node 2, T0 commits, object departs to 3.
        let fx = k.tick().expect("step 2 runs");
        assert_eq!(fx.committed, vec![TxnId(0)]);
        assert_eq!(fx.live_after, 1);

        // Step 3: delivery at node 3, T1 commits. Run is done.
        let fx = k.tick().expect("step 3 runs");
        assert_eq!(fx.committed, vec![TxnId(1)]);
        assert_eq!(fx.live_after, 0);
        assert!(k.done());
        assert!(k.tick().is_none());

        let res = k.finish();
        res.expect_ok();
        assert_eq!(res.commits[&TxnId(0)], 2);
        assert_eq!(res.commits[&TxnId(1)], 3);
    }

    #[test]
    fn run_steps_counts_partial_progress() {
        let mut k = small_kernel();
        assert_eq!(k.run_steps(2), 2);
        assert_eq!(k.now(), 2);
        // The run needs 4 steps total; asking for 10 runs only 2 more.
        assert_eq!(k.run_steps(10), 2);
        assert!(k.done());
        assert_eq!(k.run_steps(10), 0);
    }

    #[test]
    fn run_until_stops_on_predicate_or_completion() {
        let mut k = small_kernel();
        assert!(k.run_until(|fx| !fx.committed.is_empty()));
        assert_eq!(k.last_effects().committed, vec![TxnId(0)]);
        assert_eq!(k.now(), 3);
        // No tick ever commits 99 transactions: runs to completion.
        assert!(!k.run_until(|fx| fx.committed.len() == 99));
        assert!(k.done());
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        let uninterrupted = small_kernel().finish();
        let mut k = small_kernel();
        k.run_steps(2);
        let cp = k.checkpoint();
        assert_eq!(cp.now(), 2);
        // The original keeps running; the resumed copy must agree.
        let original = k.finish();
        let resumed = cp.resume().finish();
        assert_eq!(original.commits, resumed.commits);
        assert_eq!(original.events, resumed.events);
        assert_eq!(uninterrupted.events, resumed.events);
        assert_eq!(uninterrupted.schedule, resumed.schedule);
    }

    #[test]
    fn view_exposes_current_state() {
        let mut k = small_kernel();
        k.run_steps(1);
        let view = k.view();
        assert_eq!(view.now, 1);
        assert_eq!(view.live_count(), 2);
        assert!(view.live(TxnId(0)).is_some());
        assert_eq!(k.live_count(), 2);
    }

    /// Streaming retention on a finite trace: same commits (as counted
    /// scalars), empty per-transaction maps, drained status, and a
    /// sojourn histogram honoring the warmup cutoff.
    #[test]
    fn streaming_retention_matches_full_counts_with_empty_maps() {
        let net = topology::line(4);
        let make_inst = || {
            Instance::new(
                vec![obj(0, 0)],
                vec![txn(0, 2, &[0], 0), txn(1, 3, &[0], 0)],
            )
        };
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 3)].into_iter().collect();
        let full = Engine::new(
            net.clone(),
            FixedSchedulePolicy::new(sched.clone()),
            EngineConfig::default(),
        )
        .run(TraceSource::new(make_inst()));
        full.expect_ok();

        let cfg = EngineConfig {
            retention: crate::engine::Retention::Streaming { warmup: 0 },
            ..EngineConfig::default()
        };
        let mut k = Engine::new(net, FixedSchedulePolicy::new(sched), cfg)
            .into_kernel(TraceSource::new(make_inst()));
        assert_eq!(k.status(), RunStatus::Open);
        while k.tick().is_some() {}
        assert!(k.drained());
        assert_eq!(k.status(), RunStatus::Drained);
        assert_eq!(k.commit_count(), 2);
        assert_eq!(k.last_commit_at(), 3);
        // Sojourn latencies: T0 committed at 2, T1 at 3, both generated
        // at 0 — the histogram saw both.
        assert_eq!(k.sojourn_latency().count(), 2);
        assert_eq!(k.sojourn_latency().max(), 3);
        let res = k.finish();
        res.expect_ok();
        assert_eq!(res.metrics.committed, full.metrics.committed);
        assert_eq!(res.metrics.makespan, full.metrics.makespan);
        assert_eq!(res.metrics.comm_cost, full.metrics.comm_cost);
        assert_eq!(res.metrics.hops, full.metrics.hops);
        assert_eq!(res.metrics.latency.count, full.metrics.latency.count);
        assert_eq!(res.metrics.latency.max, full.metrics.latency.max);
        // Bounded-memory contract: no per-transaction history retained.
        assert!(res.txns.is_empty());
        assert!(res.commits.is_empty());
        assert!(res.generated.is_empty());
        assert!(res.schedule.is_empty());
        assert!(res.events.is_empty());
    }

    /// The warmup cutoff excludes early generations from the sojourn
    /// histogram without affecting the commit count.
    #[test]
    fn streaming_warmup_excludes_cold_start_from_latency() {
        let net = topology::line(4);
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 2, &[0], 0), txn(1, 3, &[0], 1)],
        );
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 3)].into_iter().collect();
        let cfg = EngineConfig {
            retention: crate::engine::Retention::Streaming { warmup: 1 },
            ..EngineConfig::default()
        };
        let mut k = Engine::new(net, FixedSchedulePolicy::new(sched), cfg)
            .into_kernel(TraceSource::new(inst));
        while k.tick().is_some() {}
        assert_eq!(k.commit_count(), 2);
        // Only T1 (generated at 1 >= warmup 1) is in the histogram.
        assert_eq!(k.sojourn_latency().count(), 1);
        assert_eq!(k.sojourn_latency().max(), 2); // committed 3 − generated 1
    }

    /// `run_for` on a streaming kernel advances exactly the requested
    /// number of steps while the run stays open.
    #[test]
    fn run_for_advances_open_runs_step_by_step() {
        let mut k = small_kernel();
        assert_eq!(k.run_for(2), 2);
        assert_eq!(k.now(), 2);
        assert_eq!(k.status(), RunStatus::Open);
        assert_eq!(k.run_for(10), 2); // drains after 4 total
        assert_eq!(k.status(), RunStatus::Drained);
    }

    /// Edge-load accounting round-trips exactly across a multi-hop run
    /// under a capacity bound: every occupied edge has exactly one map
    /// entry while occupied, the entry disappears when its load returns
    /// to zero, and the map is empty once all movement has completed —
    /// no dead keys survive into checkpoints.
    #[test]
    fn edge_load_round_trips_across_multi_hop_run() {
        let net = topology::line(4);
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 2, &[0], 0), txn(1, 3, &[0], 0)],
        );
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 3)].into_iter().collect();
        let cfg = EngineConfig {
            link_capacity: Some(2),
            ..EngineConfig::default()
        };
        let mut k = Engine::new(net, FixedSchedulePolicy::new(sched), cfg)
            .into_kernel(TraceSource::new(inst));
        let mut peak_entries = 0;
        while k.tick().is_some() {
            let stats = k.map_stats();
            // One object: its edge is tracked iff it is in transit.
            assert_eq!(stats.edge_load_entries, stats.in_transit);
            peak_entries = peak_entries.max(stats.edge_load_entries);
        }
        assert_eq!(peak_entries, 1, "the object occupied edges en route");
        let stats = k.map_stats();
        assert_eq!(stats.edge_load_entries, 0, "loads decremented to removal");
        assert_eq!(stats.in_transit, 0);
        assert_eq!(stats.exec_queue, 0);
        assert_eq!(stats.requester_entries, 0);
        k.finish().expect_ok();
    }

    /// Without a capacity bound nothing reads the kernel's edge-load
    /// map (congestion metrics come from events, per-step loads from
    /// effects), so it is not maintained at all.
    #[test]
    fn edge_load_map_unused_without_capacity() {
        let mut k = small_kernel();
        while k.tick().is_some() {
            assert_eq!(k.map_stats().edge_load_entries, 0);
        }
        k.finish().expect_ok();
    }

    /// `finish` on a kernel that exceeded its step limit still records
    /// the violation exactly once, as the last violation.
    #[test]
    fn finish_seals_step_limit_violation() {
        let net = topology::line(2);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 1, &[0], 0)]);
        let cfg = EngineConfig {
            max_steps: 5,
            ..EngineConfig::default()
        };
        let mut k = Engine::new(net, FixedSchedulePolicy::new(Schedule::new()), cfg)
            .into_kernel(TraceSource::new(inst));
        while k.tick().is_some() {}
        assert!(k.done());
        assert!(k.violations().is_empty()); // sealed only by finish()
        let res = k.finish();
        assert!(matches!(
            res.violations[..],
            [Violation::MaxStepsExceeded { live: 1, .. }]
        ));
    }
}
