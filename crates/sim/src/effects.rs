//! Typed step effects: everything one engine tick changed.
//!
//! Each call to [`crate::StepKernel::tick`] produces a [`StepEffects`]
//! value describing what the step's phases did — objects created and
//! delivered, transactions arrived / scheduled / committed / aborted,
//! and object departures with their edge assignments. The same type is
//! the accumulator behind [`crate::SystemView::step_effects`]: the
//! changes between two consecutive policy invocations, which the
//! incremental caches in `dtm-core` fold instead of rescanning the view.
//!
//! Effects are purely descriptive. Consuming (or ignoring) them never
//! changes engine behavior, and the per-tick value is rebuilt from
//! cleared buffers each step, so it is safe to read, print, or export.

use dtm_graph::NodeId;
use dtm_model::{ObjectId, Time, TxnId};
use std::collections::BTreeMap;

/// An object completing an edge traversal this step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered object.
    pub object: ObjectId,
    /// The node it departed from (the traversed edge's other endpoint).
    pub from: NodeId,
    /// The node it arrived at.
    pub node: NodeId,
}

/// An object starting an edge traversal this step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Departure {
    /// The departing object.
    pub object: ObjectId,
    /// The node it left.
    pub from: NodeId,
    /// The next hop it is heading to.
    pub to: NodeId,
    /// When it arrives at `to` (includes the speed divisor).
    pub arrive: Time,
}

/// Everything one engine step changed, in phase order.
///
/// Ids within each list appear in the order the engine processed them
/// (ascending id within a phase), so replaying a sequence of effects is
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepEffects {
    /// The step these effects describe.
    pub t: Time,
    /// Objects created at this step (phase 0).
    pub created: Vec<ObjectId>,
    /// Objects whose edge traversal completed (receive phase).
    pub delivered: Vec<Delivery>,
    /// Transactions generated at this step (generate phase).
    pub arrived: Vec<TxnId>,
    /// Transactions assigned an execution time (schedule phase). A
    /// transaction may appear here *and* in `committed` when it commits
    /// the same step it was scheduled.
    pub scheduled: Vec<(TxnId, Time)>,
    /// Transactions that committed (execute phase).
    pub committed: Vec<TxnId>,
    /// Transactions aborted on a missed execution (execute phase).
    pub aborted: Vec<TxnId>,
    /// Objects that departed on an edge (forward phase).
    pub departed: Vec<Departure>,
    /// Live-set size after the step completed.
    pub live_after: usize,
}

impl StepEffects {
    /// Drop every recorded change, keeping allocations for reuse. The
    /// kernel calls this at the top of each tick (and on the
    /// inter-policy accumulator right after each policy invocation).
    pub fn clear(&mut self) {
        self.t = 0;
        self.created.clear();
        self.delivered.clear();
        self.arrived.clear();
        self.scheduled.clear();
        self.committed.clear();
        self.aborted.clear();
        self.departed.clear();
        self.live_after = 0;
    }

    /// True if the step changed nothing.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty()
            && self.delivered.is_empty()
            && self.arrived.is_empty()
            && self.scheduled.is_empty()
            && self.committed.is_empty()
            && self.aborted.is_empty()
            && self.departed.is_empty()
    }

    /// Transactions that left the live set (committed, then aborted) —
    /// the removal feed for incremental fixed-context caches.
    pub fn removed(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.committed.iter().chain(self.aborted.iter()).copied()
    }

    /// Objects whose place changed (delivered, then departed).
    pub fn moved(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.delivered
            .iter()
            .map(|d| d.object)
            .chain(self.departed.iter().map(|d| d.object))
    }

    /// Net change in in-flight objects per canonical undirected edge:
    /// `+1` for each departure onto the edge, `-1` for each delivery
    /// completing it. Summing these over consecutive steps reproduces
    /// the engine's edge-load table.
    pub fn edge_loads(&self) -> BTreeMap<(NodeId, NodeId), i64> {
        let mut loads: BTreeMap<(NodeId, NodeId), i64> = BTreeMap::new();
        for d in &self.departed {
            *loads.entry(edge_key(d.from, d.to)).or_insert(0) += 1;
        }
        for d in &self.delivered {
            *loads.entry(edge_key(d.from, d.node)).or_insert(0) -= 1;
        }
        loads.retain(|_, v| *v != 0);
        loads
    }
}

/// Canonical undirected edge key (shared with the kernel's load table).
pub(crate) fn edge_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_resets_everything() {
        let mut fx = StepEffects::default();
        assert!(fx.is_empty());
        fx.t = 3;
        fx.created.push(ObjectId(0));
        fx.scheduled.push((TxnId(0), 5));
        fx.committed.push(TxnId(1));
        fx.aborted.push(TxnId(2));
        fx.arrived.push(TxnId(3));
        fx.live_after = 7;
        assert!(!fx.is_empty());
        fx.clear();
        assert!(fx.is_empty());
        assert_eq!(fx, StepEffects::default());
    }

    #[test]
    fn removed_yields_commits_then_aborts() {
        let mut fx = StepEffects::default();
        fx.committed.push(TxnId(1));
        fx.committed.push(TxnId(4));
        fx.aborted.push(TxnId(2));
        let removed: Vec<TxnId> = fx.removed().collect();
        assert_eq!(removed, vec![TxnId(1), TxnId(4), TxnId(2)]);
    }

    #[test]
    fn moved_covers_deliveries_and_departures() {
        let mut fx = StepEffects::default();
        fx.delivered.push(Delivery {
            object: ObjectId(0),
            from: NodeId(1),
            node: NodeId(2),
        });
        fx.departed.push(Departure {
            object: ObjectId(3),
            from: NodeId(2),
            to: NodeId(1),
            arrive: 9,
        });
        let moved: Vec<ObjectId> = fx.moved().collect();
        assert_eq!(moved, vec![ObjectId(0), ObjectId(3)]);
    }

    #[test]
    fn edge_loads_are_canonical_and_net() {
        let mut fx = StepEffects::default();
        // Departure and delivery on the same undirected edge cancel.
        fx.departed.push(Departure {
            object: ObjectId(0),
            from: NodeId(2),
            to: NodeId(1),
            arrive: 9,
        });
        fx.delivered.push(Delivery {
            object: ObjectId(1),
            from: NodeId(1),
            node: NodeId(2),
        });
        // A second departure elsewhere survives.
        fx.departed.push(Departure {
            object: ObjectId(2),
            from: NodeId(3),
            to: NodeId(4),
            arrive: 10,
        });
        let loads = fx.edge_loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[&(NodeId(3), NodeId(4))], 1);
    }
}
