//! # dtm-sim
//!
//! Synchronous discrete-time simulator of the data-flow model of
//! distributed transactional memory (Section II of Busch et al., IPDPS
//! 2020).
//!
//! The model: time advances in discrete steps; at any step a node may
//! (1) receive objects from adjacent nodes, (2) execute any transaction
//! that has assembled its required objects, and (3) forward objects to
//! adjacent nodes. A transaction executes instantly once its objects have
//! arrived — every delay is communication. Objects travel along shortest
//! paths toward the *next scheduled requester in execution order*.
//!
//! The [`engine::Engine`] drives a [`policy::SchedulingPolicy`] (the online
//! schedulers of `dtm-core` implement this trait) against a
//! [`dtm_model::WorkloadSource`], producing a [`metrics::RunResult`] with
//! an event log that [`validate`] can independently re-check for
//! conflict-freedom and movement consistency.
//!
//! Extensions exercised by the ablation experiments: object speed division
//! (the half-speed rule of Algorithm 3) and bounded link capacity (the
//! congestion question raised in the paper's conclusion).
//!
//! **Open-system mode.** Under [`engine::Retention::Streaming`] the
//! [`kernel::StepKernel`] runs indefinitely against never-exhausting
//! sources (e.g. [`dtm_model::OpenLoopSource`]) in bounded memory: the
//! transaction arena recycles slots through a free list, per-transaction
//! result maps stay empty, and steady-state sojourn latency folds into a
//! fixed-size [`metrics::Log2Histogram`]. Drive such runs with
//! [`kernel::StepKernel::run_for`] / `run_until` and read
//! [`kernel::StepKernel::status`] for the drained-versus-open split.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod effects;
pub mod engine;
pub mod events;
pub mod forwarding;
pub mod gantt;
pub mod kernel;
pub mod metrics;
pub mod observer;
pub mod policy;
pub mod state;
pub mod validate;

pub use arena::{ObjectArena, RuntimeState, TxnArena};
pub use effects::{Delivery, Departure, StepEffects};
pub use engine::{run_policy, Engine, EngineConfig, Retention};
pub use events::Event;
pub use forwarding::ForwardingTable;
pub use gantt::{render_timeline, TimelineOptions};
pub use kernel::{KernelMapStats, KernelVitals, RunCheckpoint, RunStatus, StepKernel};
pub use metrics::{
    edge_congestion, peak_congestion, percentile, LatencySummary, Log2Histogram, Metrics,
    RunResult, Violation,
};
pub use observer::{Phase, PhaseProfile, PhaseStats, StepObserver};
pub use policy::{FixedSchedulePolicy, SchedulingPolicy};
pub use state::{LiveTxn, LiveTxns, ObjectPlace, ObjectState, Objects, SystemView};
pub use validate::{validate_capacity, validate_events, ValidationConfig, ValidationError};
