//! Algorithm 1 — the online greedy schedule (Section III).
//!
//! At every time step the newly generated transactions are immediately
//! assigned execution times by greedily coloring them in the extended
//! dependency graph `H'_t`: already-scheduled transactions keep their
//! colors (remaining time until execution), current object holders have
//! color 0, and each new transaction receives the smallest valid color,
//! which Lemma 1 bounds by `2Γ'_t - Δ'_t` (Theorem 1). On uniform-weight
//! graphs the Lemma 2 variant assigns colors that are multiples of the
//! edge weight `β` and achieves `Γ'_t` (Theorem 2) — the analysis behind
//! the clique's `O(k)` (Theorem 3) and the hypercube/butterfly/grid
//! `O(k log n)` competitive bounds (Section III-D).

use crate::coloring::{smallest_valid_color_into, smallest_valid_multiple_into, ColorConstraint};
use crate::conflict::ConflictCache;
use dtm_graph::Weight;
use dtm_model::{Schedule, Time, TxnId};
use dtm_sim::{SchedulingPolicy, SystemView};
use dtm_telemetry::{Decision, DecisionKind, DecisionTraceHandle};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Coloring mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GreedyMode {
    /// Lemma 1: arbitrary weights, smallest valid color (Theorem 1).
    General,
    /// Lemma 2: treat every dependency-edge weight as the uniform value
    /// `beta` (e.g. `β = log n` for the hypercube viewed as a complete
    /// graph, Section III-D) and assign colors that are positive multiples
    /// of `beta` (Theorem 2).
    Uniform {
        /// The uniform edge weight.
        beta: Weight,
    },
}

/// Per-transaction record of the assigned color and its theorem bound,
/// collected when a stats handle is attached.
#[derive(Clone, Debug, Default)]
pub struct GreedyStats {
    /// `(txn, color, theorem bound on the color)` per scheduled txn.
    // dtm-lint: bounded -- experiment-scoped stats (Retention::Full runs); streaming runs leave stats detached
    pub assigned: Vec<(TxnId, Time, Time)>,
}

/// Reusable buffers for the coloring pass, so warmed-up schedule phases
/// allocate nothing: every `Vec` here keeps its capacity across steps.
#[derive(Clone, Debug, Default)]
struct GreedyScratch {
    /// Sorted arrival batch.
    // dtm-lint: bounded -- cleared every schedule pass; capacity plateaus at the largest batch
    order: Vec<TxnId>,
    /// Constraint set of the transaction currently being colored.
    // dtm-lint: bounded -- cleared per transaction colored; capacity plateaus at the widest neighborhood
    constraints: Vec<ColorConstraint>,
    /// Same-step colors assigned so far (the partial coloring earlier
    /// arrivals contribute to later ones).
    // dtm-lint: bounded -- cleared every schedule pass; holds at most one batch of colors
    colored: BTreeMap<TxnId, Time>,
    /// Interval scratch for [`smallest_valid_color_into`].
    // dtm-lint: bounded -- cleared per coloring query; capacity plateaus at the constraint count
    ranges: Vec<(Time, Time)>,
    /// Forbidden-multiple scratch for [`smallest_valid_multiple_into`].
    // dtm-lint: bounded -- cleared per coloring query; capacity plateaus at the constraint count
    forbidden: Vec<Time>,
}

/// Algorithm 1.
///
/// `Clone` (for [`dtm_sim::SchedulingPolicy::fork`] checkpoints) shares
/// any attached stats/decision handles — a fork feeds the same sinks —
/// and deep-copies the incremental conflict cache, which from then on
/// follows the fork's own view.
///
/// **Boundedness (open-system audit).** The [`ConflictCache`] holds only
/// live transactions and their conflict edges; scratch buffers are sized
/// by the largest arrival batch. Safe for indefinite streaming runs.
#[derive(Clone)]
pub struct GreedyPolicy {
    mode: GreedyMode,
    cache: ConflictCache,
    scratch: GreedyScratch,
    stats: Option<Arc<Mutex<GreedyStats>>>,
    decisions: Option<DecisionTraceHandle>,
}

impl GreedyPolicy {
    /// General-weights greedy scheduler (Theorem 1).
    pub fn new() -> Self {
        GreedyPolicy {
            mode: GreedyMode::General,
            cache: ConflictCache::default(),
            scratch: GreedyScratch::default(),
            stats: None,
            decisions: None,
        }
    }

    /// Uniform-weight variant (Theorem 2) with dependency weight `beta`.
    /// All conflict-edge weights are **raised** to `beta` (a valid
    /// over-approximation when every pairwise distance is at most `beta`,
    /// as in the paper's hypercube treatment).
    pub fn uniform(beta: Weight) -> Self {
        assert!(beta >= 1);
        GreedyPolicy {
            mode: GreedyMode::Uniform { beta },
            cache: ConflictCache::default(),
            scratch: GreedyScratch::default(),
            stats: None,
            decisions: None,
        }
    }

    /// Attach a stats handle (the caller keeps the other `Arc` end).
    pub fn with_stats(mut self, stats: Arc<Mutex<GreedyStats>>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Record one [`DecisionKind::GreedyColor`] per scheduled transaction
    /// into `trace` (the caller keeps the other `Arc` end).
    pub fn with_decision_trace(mut self, trace: DecisionTraceHandle) -> Self {
        self.decisions = Some(trace);
        self
    }

    /// The coloring mode.
    pub fn mode(&self) -> GreedyMode {
        self.mode
    }
}

impl Default for GreedyPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for GreedyPolicy {
    // dtm-lint: hot-path
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        // Fold this step's deltas even when there is nothing to color:
        // skipping a refresh would silently drop the window's effects.
        self.cache.refresh(view);
        if arrivals.is_empty() {
            return Schedule::new();
        }
        let GreedyScratch {
            order,
            constraints,
            colored,
            ranges,
            forbidden,
        } = &mut self.scratch;
        order.clear();
        order.extend_from_slice(arrivals);
        order.sort_unstable();
        colored.clear();
        let mut fragment = Schedule::new();
        for &id in order.iter() {
            let lt = view.live(id).expect("arrival is live"); // dtm-lint: allow(C1) -- engine contract: every id in `arrivals` is live this step
            let degrees = self
                .cache
                .constraints_into(view, &lt.txn, colored, constraints);
            let conflicts = constraints.len();
            let (color, bound) = match self.mode {
                GreedyMode::General => {
                    let c = smallest_valid_color_into(constraints, ranges);
                    (c, degrees.theorem1_bound())
                }
                GreedyMode::Uniform { beta } => {
                    // Work in absolute time so every execution time is an
                    // absolute multiple of β — transactions colored at
                    // different steps then still occupy distinct β-slots,
                    // which is Lemma 2's premise. Conflict weights are
                    // raised to β (valid when pairwise distances are <= β,
                    // the paper's hypercube treatment); holders keep their
                    // true effective distance.
                    let mut slots: Time = 0; // forbidden-slot budget
                    for c in constraints.iter_mut() {
                        let is_holder = c.color == 0 && c.weight > 0;
                        if is_holder {
                            slots += c.weight.div_ceil(beta);
                        } else {
                            c.weight = c.weight.max(beta);
                            slots += 1;
                        }
                        c.color += view.now; // relative -> absolute
                    }
                    let exec = smallest_valid_multiple_into(beta, view.now, constraints, forbidden);
                    let c = exec - view.now;
                    // Slot-counting bound: the first candidate slot is at
                    // most β after now, and each dependency blocks at most
                    // its counted slots.
                    (c, beta * slots + beta)
                }
            };
            colored.insert(id, color);
            fragment.set(id, view.now + color);
            if let Some(stats) = &self.stats {
                stats.lock().assigned.push((id, color, bound));
            }
            if let Some(trace) = &self.decisions {
                trace.lock().push(Decision {
                    t: view.now,
                    txn: id,
                    exec_at: Some(view.now + color),
                    kind: DecisionKind::GreedyColor {
                        conflicts,
                        color,
                        bound,
                    },
                });
            }
        }
        fragment
    }

    fn name(&self) -> String {
        match self.mode {
            GreedyMode::General => "greedy".into(),
            GreedyMode::Uniform { beta } => format!("greedy-uniform(beta={beta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_graph::NodeId;
    use dtm_model::{
        FiniteArrivals, Instance, ObjectChoice, ObjectId, ObjectInfo, TraceSource, Transaction,
        WorkloadGenerator, WorkloadSpec,
    };
    use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};

    fn obj(id: u32, origin: u32) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(id),
            origin: NodeId(origin),
            created_at: 0,
        }
    }

    fn txn(id: u64, home: u32, objs: &[u32], t: Time) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            t,
        )
    }

    #[test]
    fn single_txn_waits_exactly_object_distance() {
        let net = topology::line(8);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 5, &[0], 0)]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(res.commits[&TxnId(0)], 5); // color = distance
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
    }

    #[test]
    fn conflicting_batch_serializes_correctly() {
        let net = topology::line(8);
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 1, &[0], 0), txn(1, 3, &[0], 0), txn(2, 5, &[0], 0)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, 3);
    }

    #[test]
    fn theorem1_bound_holds_on_random_workloads() {
        let stats = Arc::new(Mutex::new(GreedyStats::default()));
        for seed in 0..5 {
            let net = topology::grid(&[4, 4]);
            let spec = WorkloadSpec {
                num_objects: 6,
                k: 3,
                object_choice: ObjectChoice::Uniform,
                arrival: FiniteArrivals::Bernoulli {
                    rate: 0.3,
                    horizon: 10,
                },
            };
            let inst = WorkloadGenerator::new(spec, seed).generate(&net);
            if inst.txns.is_empty() {
                continue;
            }
            let res = run_policy(
                &net,
                TraceSource::new(inst),
                GreedyPolicy::new().with_stats(Arc::clone(&stats)),
                EngineConfig::default(),
            );
            res.expect_ok();
            validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        }
        let stats = stats.lock();
        assert!(!stats.assigned.is_empty());
        for &(id, color, bound) in &stats.assigned {
            assert!(
                color <= bound,
                "{id}: color {color} > theorem bound {bound}"
            );
        }
    }

    #[test]
    fn uniform_mode_colors_are_multiples() {
        let net = topology::clique(8);
        let stats = Arc::new(Mutex::new(GreedyStats::default()));
        let spec = WorkloadSpec::batch_uniform(4, 2);
        let inst = WorkloadGenerator::new(spec, 3).generate(&net);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            GreedyPolicy::uniform(1).with_stats(Arc::clone(&stats)),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        for &(_, color, bound) in &stats.lock().assigned {
            assert!(color >= 1);
            assert!(color <= bound);
        }
    }

    #[test]
    fn uniform_mode_on_hypercube_with_beta_log_n() {
        // The paper's Section III-D treatment: hypercube viewed as a
        // complete graph with uniform weight log n.
        let net = topology::hypercube(4);
        let spec = WorkloadSpec::batch_uniform(8, 2);
        let inst = WorkloadGenerator::new(spec, 4).generate(&net);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            GreedyPolicy::uniform(4),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
    }

    #[test]
    fn online_arrivals_never_retime_existing() {
        let net = topology::line(12);
        // Staggered conflicting arrivals.
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 11, &[0], 0), txn(1, 2, &[0], 1), txn(2, 7, &[0], 2)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        // All three committed, no violations: the coloring respected both
        // the in-flight object and the already-scheduled transactions.
        assert_eq!(res.metrics.committed, 3);
    }

    #[test]
    fn closed_loop_clique_runs_clean() {
        use dtm_model::ClosedLoopSource;
        let net = topology::clique(6);
        let spec = WorkloadSpec::batch_uniform(6, 2);
        let src = ClosedLoopSource::new(net.clone(), spec, 3, 9);
        let res = run_policy(&net, src, GreedyPolicy::new(), EngineConfig::default());
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, 18);
    }
}
