//! Bridge from the simulator's [`SystemView`] to the offline schedulers'
//! [`BatchContext`]: current object positions become availability points,
//! and scheduled live transactions become the fixed context (the paper's
//! `T_t^s`, which new schedules must work around — basic modification 1 of
//! Section IV-A).

use dtm_offline::BatchContext;
use dtm_sim::SystemView;

/// Snapshot the view into a batch-scheduling context at `view.now`.
pub fn batch_context_from_view(view: &SystemView<'_>) -> BatchContext {
    BatchContext {
        now: view.now,
        object_avail: view
            .objects()
            .map(|st| {
                let (node, ready) = st.position(view.now);
                (st.info.id, (node, ready))
            })
            .collect(),
        fixed: view
            .live_txns()
            .filter_map(|lt| lt.scheduled.map(|t| (lt.txn.clone(), t)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{ObjectId, ObjectInfo, Transaction, TxnId};
    use dtm_sim::{LiveTxn, ObjectPlace, ObjectState};
    use std::collections::BTreeMap;

    #[test]
    fn snapshot_carries_positions_and_fixed() {
        let net = topology::line(8);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(0),
            LiveTxn {
                txn: Transaction::new(TxnId(0), NodeId(3), [ObjectId(0)], 0),
                scheduled: Some(9),
            },
        );
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: Transaction::new(TxnId(1), NodeId(4), [ObjectId(0)], 2),
                scheduled: None,
            },
        );
        let mut objects = BTreeMap::new();
        objects.insert(
            ObjectId(0),
            ObjectState {
                info: ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(0),
                    created_at: 0,
                },
                place: ObjectPlace::Hop {
                    from: NodeId(1),
                    next: NodeId(2),
                    arrive: 7,
                },
                last_holder: None,
            },
        );
        let view = SystemView::new(5, &net, &live, &objects);
        let ctx = batch_context_from_view(&view);
        assert_eq!(ctx.now, 5);
        assert_eq!(ctx.object_avail[&ObjectId(0)], (NodeId(2), 7));
        assert_eq!(ctx.fixed.len(), 1);
        assert_eq!(ctx.fixed[0].1, 9);
    }
}
