//! Bridge from the simulator's [`SystemView`] to the offline schedulers'
//! [`BatchContext`]: current object positions become availability points,
//! and scheduled live transactions become the fixed context (the paper's
//! `T_t^s`, which new schedules must work around — basic modification 1 of
//! Section IV-A).

use dtm_model::{Time, Transaction, TxnId};
use dtm_offline::BatchContext;
use dtm_sim::SystemView;
use std::collections::BTreeMap;

/// Snapshot the view into a batch-scheduling context at `view.now`.
pub fn batch_context_from_view(view: &SystemView<'_>) -> BatchContext {
    BatchContext {
        now: view.now,
        object_avail: object_avail(view),
        fixed: view
            .live_txns()
            .filter_map(|lt| lt.scheduled.map(|t| (lt.txn.clone(), t)))
            .collect(),
    }
}

/// Current object positions projected to availability points.
fn object_avail(view: &SystemView<'_>) -> BTreeMap<dtm_model::ObjectId, (dtm_graph::NodeId, Time)> {
    view.objects()
        .map(|st| {
            let (node, ready) = st.position(view.now);
            (st.info.id, (node, ready))
        })
        .collect()
}

/// Incrementally-maintained fixed context: the scheduled live transactions
/// `T_t^s` with their execution times, which new schedules must work
/// around (basic modification 1 of Section IV-A).
///
/// When the view is arena-backed, [`FixedCache::refresh`] folds the
/// [`dtm_sim::StepEffects`] accumulated since the previous policy call
/// into the cached map instead of rescanning the whole live set; with a
/// map-backed view (no effects) it falls back to a full rebuild, so the
/// cache is safe to use with either backing. `Clone` captures the cache
/// for [`dtm_sim::SchedulingPolicy::fork`] checkpoints.
///
/// **Boundedness (open-system audit).** Entries leave via
/// `fx.removed()` as their transactions commit or abort, so the map
/// holds only *live* scheduled transactions — O(live set) no matter how
/// many transactions stream through.
#[derive(Clone, Debug, Default)]
pub struct FixedCache {
    // dtm-lint: bounded -- entries leave via fx.removed() as txns commit/abort; O(live set)
    fixed: BTreeMap<TxnId, (Transaction, Time)>,
    init: bool,
    /// Refresh counter driving the sampled debug divergence check.
    refreshes: u64,
}

impl FixedCache {
    /// Bring the cached fixed set up to date with `view`. Must be called
    /// once per policy step, *before* the early-returns a policy may take
    /// (otherwise a step's effects are silently dropped).
    // dtm-lint: hot-path
    pub fn refresh(&mut self, view: &SystemView<'_>) {
        match view.step_effects() {
            Some(fx) if self.init => {
                for &(id, t) in &fx.scheduled {
                    // Scheduled and committed within the same inter-policy
                    // window: no longer live, never enters the fixed set.
                    if let Some(lt) = view.live(id) {
                        self.fixed.insert(id, (lt.txn.clone(), t)); // dtm-lint: allow(H1) -- one clone per newly *scheduled* txn (delta-driven), not per step
                    }
                }
                for id in fx.removed() {
                    self.fixed.remove(&id);
                }
            }
            _ => {
                self.fixed = view
                    .live_txns()
                    .filter_map(|lt| lt.scheduled.map(|t| (lt.txn.id, (lt.txn.clone(), t)))) // dtm-lint: allow(H1) -- cold fallback for map-backed views and first call only
                    .collect(); // dtm-lint: allow(H1) -- cold fallback for map-backed views and first call only
                self.init = true;
            }
        }
        self.refreshes = self.refreshes.wrapping_add(1);
        // Sampled rather than every-step: the full rescan is O(live) with
        // a clone per scheduled transaction, which made debug-mode
        // streaming runs pay more for the check than for the work.
        #[cfg(debug_assertions)]
        if self
            .refreshes
            .is_multiple_of(crate::conflict::DIVERGENCE_SAMPLE_PERIOD)
        {
            let full: BTreeMap<TxnId, (Transaction, Time)> = view
                .live_txns()
                .filter_map(|lt| lt.scheduled.map(|t| (lt.txn.id, (lt.txn.clone(), t)))) // dtm-lint: allow(H1) -- debug-only sampled divergence check, compiled out in release
                .collect(); // dtm-lint: allow(H1) -- debug-only sampled divergence check, compiled out in release
            debug_assert_eq!(self.fixed, full, "incremental fixed context diverged");
        }
    }

    /// Build this step's [`BatchContext`]. Object positions change every
    /// step, so they are re-projected; the fixed set comes from the cache
    /// (id order, identical to a full scan).
    pub fn context(&self, view: &SystemView<'_>) -> BatchContext {
        BatchContext {
            now: view.now,
            object_avail: object_avail(view),
            fixed: self.fixed.values().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{ObjectId, ObjectInfo, Transaction, TxnId};
    use dtm_sim::{LiveTxn, ObjectPlace, ObjectState};
    use std::collections::BTreeMap;

    #[test]
    fn snapshot_carries_positions_and_fixed() {
        let net = topology::line(8);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(0),
            LiveTxn {
                txn: Transaction::new(TxnId(0), NodeId(3), [ObjectId(0)], 0),
                scheduled: Some(9),
            },
        );
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: Transaction::new(TxnId(1), NodeId(4), [ObjectId(0)], 2),
                scheduled: None,
            },
        );
        let mut objects = BTreeMap::new();
        objects.insert(
            ObjectId(0),
            ObjectState {
                info: ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(0),
                    created_at: 0,
                },
                place: ObjectPlace::Hop {
                    from: NodeId(1),
                    next: NodeId(2),
                    arrive: 7,
                },
                last_holder: None,
            },
        );
        let view = SystemView::new(5, &net, &live, &objects);
        let ctx = batch_context_from_view(&view);
        assert_eq!(ctx.now, 5);
        assert_eq!(ctx.object_avail[&ObjectId(0)], (NodeId(2), 7));
        assert_eq!(ctx.fixed.len(), 1);
        assert_eq!(ctx.fixed[0].1, 9);
    }

    /// The incremental cache tracks schedule/commit deltas on an
    /// arena-backed view and matches a from-scratch snapshot at each step.
    #[test]
    fn fixed_cache_follows_deltas() {
        let net = topology::line(8);
        let mut state = dtm_sim::RuntimeState::new();
        let mk = |id: u64, home: u32| Transaction::new(TxnId(id), NodeId(home), [ObjectId(0)], 0);
        for id in 0..4 {
            state.insert_txn(LiveTxn {
                txn: mk(id, id as u32),
                scheduled: None,
            });
        }
        let mut cache = FixedCache::default();
        // Step 0: nothing scheduled yet.
        cache.refresh(&SystemView::from_state(0, &net, &state));
        assert!(cache
            .context(&SystemView::from_state(0, &net, &state))
            .fixed
            .is_empty());

        // Schedule 1 and 3 (as the engine would: mutate + record effects).
        state.effects_mut().clear();
        for (id, t) in [(TxnId(1), 5), (TxnId(3), 9)] {
            state.txn_mut(id).unwrap().scheduled = Some(t);
            state.effects_mut().scheduled.push((id, t));
        }
        let view = SystemView::from_state(1, &net, &state);
        cache.refresh(&view);
        let fixed = cache.context(&view).fixed;
        assert_eq!(
            fixed.iter().map(|(t, at)| (t.id, *at)).collect::<Vec<_>>(),
            vec![(TxnId(1), 5), (TxnId(3), 9)]
        );
        assert_eq!(fixed, batch_context_from_view(&view).fixed);

        // Commit 1; schedule 0.
        state.effects_mut().clear();
        state.remove_txn(TxnId(1));
        state.effects_mut().committed.push(TxnId(1));
        state.txn_mut(TxnId(0)).unwrap().scheduled = Some(7);
        state.effects_mut().scheduled.push((TxnId(0), 7));
        let view = SystemView::from_state(2, &net, &state);
        cache.refresh(&view);
        let fixed = cache.context(&view).fixed;
        assert_eq!(
            fixed.iter().map(|(t, at)| (t.id, *at)).collect::<Vec<_>>(),
            vec![(TxnId(0), 7), (TxnId(3), 9)]
        );
        assert_eq!(fixed, batch_context_from_view(&view).fixed);

        // Scheduled-then-committed inside one window never enters.
        state.effects_mut().clear();
        state.txn_mut(TxnId(2)).unwrap().scheduled = Some(3);
        state.effects_mut().scheduled.push((TxnId(2), 3));
        state.remove_txn(TxnId(2));
        state.effects_mut().committed.push(TxnId(2));
        let view = SystemView::from_state(3, &net, &state);
        cache.refresh(&view);
        let fixed = cache.context(&view).fixed;
        assert_eq!(fixed, batch_context_from_view(&view).fixed);
        assert!(!fixed.iter().any(|(t, _)| t.id == TxnId(2)));
    }
}
