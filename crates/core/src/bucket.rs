//! Algorithm 2 — the online bucket schedule (Section IV).
//!
//! Converts any offline batch scheduler `𝒜` into an online scheduler.
//! Bucket `B_i` (level `i >= 0`) holds unscheduled transactions whose
//! batch — together with everything already scheduled — would execute
//! within `2^i` steps, and activates every `2^i` steps. On arrival a
//! transaction is inserted into the smallest-level bucket whose probe
//! `F_𝒜(T_t^s ∪ B_i ∪ {T}) <= 2^i` succeeds; on activation the bucket's
//! transactions are scheduled by `𝒜` around the fixed schedule (never
//! altering it) and become part of `T_t^s`. When several levels activate
//! simultaneously, lower levels are processed first (their output joins
//! the fixed context seen by higher levels).
//!
//! Theorem 4: the resulting online schedule is `O(b_𝒜 log^3(nD))`
//! competitive; Lemma 3 bounds bucket levels by `log(nD) + 1`; Lemma 4
//! bounds the completion of a level-`i` insertion by `t + (i+1) 2^{i+2}`.

use crate::viewctx::FixedCache;
use dtm_model::{Schedule, Time, Transaction, TxnId};
use dtm_offline::{BatchContext, BatchScheduler};
use dtm_sim::{SchedulingPolicy, SystemView};
use dtm_telemetry::{Decision, DecisionKind, DecisionTraceHandle};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Observability for experiments E6/E7: insertion levels, activation
/// counts, and overflow insertions (inputs the probe rejected everywhere).
#[derive(Clone, Debug, Default)]
pub struct BucketStats {
    /// Bucket level each transaction was inserted into.
    // dtm-lint: bounded -- experiment-scoped stats (Retention::Full runs); streaming runs leave stats detached
    pub levels: BTreeMap<TxnId, u32>,
    /// Insertion time of each transaction.
    // dtm-lint: bounded -- experiment-scoped stats (Retention::Full runs); streaming runs leave stats detached
    pub inserted_at: BTreeMap<TxnId, Time>,
    /// Non-empty activations per level.
    // dtm-lint: bounded -- keyed by bucket level, at most O(log n) levels exist per network
    pub activations: BTreeMap<u32, u64>,
    /// Transactions that exceeded every probe and were force-inserted at
    /// the maximum level (0 in theorem-compliant runs).
    pub overflows: u64,
}

/// Algorithm 2, generic over the offline batch scheduler `𝒜`.
///
/// `Clone` (for [`dtm_sim::SchedulingPolicy::fork`] checkpoints)
/// captures the parked buckets and the fixed-context cache; attached
/// stats/decision handles are shared, not duplicated.
///
/// **Boundedness (open-system audit).** `buckets` holds only parked,
/// unscheduled transactions and drains completely at each activation;
/// the [`FixedCache`] tracks live scheduled transactions only. Policy
/// state is O(live set), safe for indefinite streaming runs.
#[derive(Clone)]
pub struct BucketPolicy<A> {
    scheduler: A,
    // dtm-lint: bounded -- parked transactions only; each level drains fully at its activation step
    buckets: BTreeMap<u32, Vec<Transaction>>,
    max_level: Option<u32>,
    period_multiplier: u64,
    stats: Option<Arc<Mutex<BucketStats>>>,
    decisions: Option<DecisionTraceHandle>,
    cache: FixedCache,
}

impl<A: BatchScheduler> BucketPolicy<A> {
    /// Wrap a batch scheduler.
    pub fn new(scheduler: A) -> Self {
        BucketPolicy {
            scheduler,
            buckets: BTreeMap::new(),
            max_level: None,
            period_multiplier: 1,
            stats: None,
            decisions: None,
            cache: FixedCache::default(),
        }
    }

    /// Attach a stats handle.
    pub fn with_stats(mut self, stats: Arc<Mutex<BucketStats>>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Record one [`DecisionKind::BucketInsert`] per arrival and one
    /// [`DecisionKind::BucketActivate`] per scheduled transaction into
    /// `trace` (the caller keeps the other `Arc` end).
    pub fn with_decision_trace(mut self, trace: DecisionTraceHandle) -> Self {
        self.decisions = Some(trace);
        self
    }

    /// Ablation knob (experiment A1): activate level `i` every
    /// `m * 2^i` steps instead of every `2^i`. `m = 1` is Algorithm 2.
    pub fn with_period_multiplier(mut self, m: u64) -> Self {
        assert!(m >= 1);
        self.period_multiplier = m;
        self
    }

    /// Number of transactions currently parked in buckets.
    pub fn parked(&self) -> usize {
        self.buckets.values().map(|b| b.len()).sum()
    }

    fn insert(&mut self, txn: Transaction, ctx: &BatchContext, view: &SystemView<'_>) {
        let max_level = self.max_level.expect("set in step"); // dtm-lint: allow(C1) -- set unconditionally at the top of step() before any insert
        let mut chosen = None;
        for i in 0..=max_level {
            let mut probe: Vec<Transaction> = self.buckets.get(&i).cloned().unwrap_or_default();
            probe.push(txn.clone());
            let f = self.scheduler.makespan(view.network, &probe, ctx);
            if f <= 1u64 << i {
                chosen = Some(i);
                break;
            }
        }
        let (level, overflow) = match chosen {
            Some(i) => (i, false),
            None => (max_level, true),
        };
        if let Some(stats) = &self.stats {
            let mut s = stats.lock();
            s.levels.insert(txn.id, level);
            s.inserted_at.insert(txn.id, ctx.now);
            if overflow {
                s.overflows += 1;
            }
        }
        if let Some(trace) = &self.decisions {
            trace.lock().push(Decision {
                t: ctx.now,
                txn: txn.id,
                exec_at: None,
                kind: DecisionKind::BucketInsert { level, overflow },
            });
        }
        self.buckets.entry(level).or_default().push(txn);
    }
}

impl<A: BatchScheduler> SchedulingPolicy for BucketPolicy<A> {
    // dtm-lint: hot-path
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        let max_level = *self
            .max_level
            .get_or_insert_with(|| view.network.max_bucket_level());
        self.cache.refresh(view);
        // The batch context re-projects every object position; skip
        // building it on quiet steps (no arrivals to insert, no bucket
        // activating). Buckets never hold empty vecs — entries are
        // created by a push and removed whole on activation — so
        // `activating` exactly predicts whether the loop below has work.
        let now = view.now;
        let activating = self
            .buckets
            .iter()
            .any(|(&i, b)| !b.is_empty() && now.is_multiple_of(self.period_multiplier << i));
        if arrivals.is_empty() && !activating {
            return Schedule::new();
        }
        let mut ctx = self.cache.context(view);

        // Insertion (before activation, as in Algorithm 2).
        let mut order: Vec<TxnId> = arrivals.to_vec(); // dtm-lint: allow(H1) -- O(arrival batch); an empty to_vec does not allocate, so quiet steps stay allocation-free
        order.sort_unstable();
        for id in order {
            let txn = view.live(id).expect("arrival is live").txn.clone(); // dtm-lint: allow(C1, H1) -- engine contract: every id in `arrivals` is live this step; one clone per arrival, absent on quiet steps
            self.insert(txn, &ctx, view);
        }

        // Activation: level i fires when t is a multiple of 2^i; lower
        // levels first, feeding the fixed context of higher levels.
        let mut fragment = Schedule::new();
        for i in 0..=max_level {
            if !now.is_multiple_of(self.period_multiplier << i) {
                continue;
            }
            let Some(bucket) = self.buckets.remove(&i) else {
                continue;
            };
            if bucket.is_empty() {
                continue;
            }
            let s = self.scheduler.schedule(view.network, &bucket, &ctx);
            for t in &bucket {
                ctx.fixed.push((t.clone(), s.get(t.id).expect("scheduled"))); // dtm-lint: allow(C1, H1) -- BatchScheduler contract: schedule() assigns every pending transaction; one clone per activated txn, amortized O(1) over its lifetime
            }
            if let Some(trace) = &self.decisions {
                let epoch = now / (self.period_multiplier << i);
                let mut trace = trace.lock();
                for t in &bucket {
                    trace.push(Decision {
                        t: now,
                        txn: t.id,
                        exec_at: s.get(t.id),
                        kind: DecisionKind::BucketActivate {
                            level: i,
                            epoch,
                            batch: bucket.len(),
                        },
                    });
                }
            }
            fragment.merge(&s);
            if let Some(stats) = &self.stats {
                *stats.lock().activations.entry(i).or_insert(0) += 1;
            }
        }
        fragment
    }

    fn name(&self) -> String {
        format!("bucket({})", self.scheduler.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_graph::NodeId;
    use dtm_model::{
        ClosedLoopSource, FiniteArrivals, Instance, ObjectChoice, ObjectId, ObjectInfo,
        TraceSource, WorkloadGenerator, WorkloadSpec,
    };
    use dtm_offline::{LineScheduler, ListScheduler};
    use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};

    fn obj(id: u32, origin: u32) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(id),
            origin: NodeId(origin),
            created_at: 0,
        }
    }

    fn txn(id: u64, home: u32, objs: &[u32], t: Time) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            t,
        )
    }

    #[test]
    fn light_txn_lands_in_low_bucket() {
        let net = topology::line(8);
        let stats = Arc::new(Mutex::new(BucketStats::default()));
        // Object next to its single requester: F = 1 -> level 0.
        let inst = Instance::new(vec![obj(0, 4)], vec![txn(0, 5, &[0], 0)]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            BucketPolicy::new(ListScheduler::fifo()).with_stats(Arc::clone(&stats)),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(stats.lock().levels[&TxnId(0)], 0);
        // Level 0 activates instantly: committed at t = 1 (distance 1).
        assert_eq!(res.commits[&TxnId(0)], 1);
    }

    #[test]
    fn heavy_txn_lands_in_higher_bucket() {
        let net = topology::line(32);
        let stats = Arc::new(Mutex::new(BucketStats::default()));
        // Object at the far end: F = 31 -> level 5 (2^5 = 32).
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 31, &[0], 0)]);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            BucketPolicy::new(ListScheduler::fifo()).with_stats(Arc::clone(&stats)),
            EngineConfig::default(),
        );
        res.expect_ok();
        assert_eq!(stats.lock().levels[&TxnId(0)], 5);
    }

    #[test]
    fn lemma3_level_bound_holds() {
        let net = topology::line(16);
        let stats = Arc::new(Mutex::new(BucketStats::default()));
        let spec = WorkloadSpec {
            num_objects: 4,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli {
                rate: 0.4,
                horizon: 20,
            },
        };
        let inst = WorkloadGenerator::new(spec, 7).generate(&net);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            BucketPolicy::new(LineScheduler).with_stats(Arc::clone(&stats)),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        let s = stats.lock();
        assert_eq!(s.overflows, 0);
        let bound = net.max_bucket_level();
        for (&id, &lvl) in &s.levels {
            assert!(lvl <= bound, "{id} at level {lvl} > Lemma 3 bound {bound}");
        }
    }

    #[test]
    fn lemma4_deadline_holds() {
        // Every txn inserted into level i at time t commits by
        // t + (i+1) * 2^(i+2).
        let net = topology::line(16);
        let stats = Arc::new(Mutex::new(BucketStats::default()));
        let spec = WorkloadSpec {
            num_objects: 4,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli {
                rate: 0.3,
                horizon: 16,
            },
        };
        let inst = WorkloadGenerator::new(spec, 9).generate(&net);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            BucketPolicy::new(LineScheduler).with_stats(Arc::clone(&stats)),
            EngineConfig::default(),
        );
        res.expect_ok();
        let s = stats.lock();
        for (&id, &lvl) in &s.levels {
            let t = s.inserted_at[&id];
            let commit = res.commits[&id];
            let deadline = t + (lvl as u64 + 1) * (1u64 << (lvl + 2));
            assert!(
                commit <= deadline,
                "{id} (level {lvl}, inserted {t}) committed {commit} > Lemma 4 deadline {deadline}"
            );
        }
    }

    #[test]
    fn closed_loop_line_runs_clean() {
        let net = topology::line(8);
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(4, 2), 2, 3);
        let res = run_policy(
            &net,
            src,
            BucketPolicy::new(LineScheduler),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, 16);
    }

    #[test]
    fn burst_arrivals_batch_into_buckets() {
        let net = topology::line(16);
        let spec = WorkloadSpec {
            num_objects: 3,
            k: 1,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bursts {
                period: 8,
                per_burst: 6,
                bursts: 3,
            },
        };
        let inst = WorkloadGenerator::new(spec, 11).generate(&net);
        let n = inst.num_txns();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            BucketPolicy::new(LineScheduler),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }
}

#[cfg(test)]
mod period_tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_graph::NodeId;
    use dtm_model::{Instance, ObjectId, ObjectInfo, TraceSource, Transaction};
    use dtm_offline::ListScheduler;
    use dtm_sim::{run_policy, EngineConfig};

    /// With period multiplier m, level-0 activations happen only on
    /// multiples of m: a transaction arriving off-grid waits.
    #[test]
    fn period_multiplier_delays_activation() {
        let net = topology::line(4);
        let make = || {
            TraceSource::new(Instance::new(
                vec![ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(1),
                    created_at: 0,
                }],
                // Arrives at t=1 with a local object: F = 1 -> level 0.
                vec![Transaction::new(TxnId(0), NodeId(1), [ObjectId(0)], 1)],
            ))
        };
        let fast = run_policy(
            &net,
            make(),
            BucketPolicy::new(ListScheduler::fifo()),
            EngineConfig::default(),
        );
        fast.expect_ok();
        let slow = run_policy(
            &net,
            make(),
            BucketPolicy::new(ListScheduler::fifo()).with_period_multiplier(4),
            EngineConfig::default(),
        );
        slow.expect_ok();
        // m=1: level 0 activates at t=1 -> immediate commit. m=4: the
        // next activation grid point is t=4.
        assert_eq!(fast.commits[&TxnId(0)], 1);
        assert!(slow.commits[&TxnId(0)] >= 4);
    }
}
