//! Message-level implementation of Algorithm 3 — the distributed bucket
//! schedule with **strictly node-local knowledge**.
//!
//! Where [`crate::distributed`] simulates the protocol's *timing* against
//! global state, this module exchanges actual messages:
//!
//! * a new transaction knows only its objects' **origins** (static
//!   creation metadata); it sends a `Find` toward each origin, and the
//!   message **chases** the object along its forwarding trail (the
//!   paper's "we can track objects in transit by reaching the node that
//!   the object departs from"). Messages travel at full speed, objects at
//!   half speed (engine `speed_divisor = 2`), so every chase converges;
//! * each object carries a registry of the transactions that requested it
//!   (the paper: "the object carries the information of all the
//!   transaction locations that will use it"); a `FindReply` returns the
//!   object's position and that registry, from which the transaction
//!   computes its dependency radius `y`;
//! * the transaction reports to the leader of its lowest covering home
//!   cluster; the leader's bucket probe and batch scheduling use **only**
//!   information carried by reports plus the leader's own past decisions;
//! * leader knowledge is inevitably stale, so assigned execution times
//!   are *targets*: the engine runs with `allow_late_execution` and
//!   transactions commit as soon as their objects assemble at or after
//!   the target (the behaviour of a practical DTM). Experiment E16
//!   measures the price of locality against the idealized Algorithm 3.

use dtm_graph::{ClusterId, Network, NodeId, SparseCover, Weight};
use dtm_model::{ObjectId, Schedule, Time, Transaction, TxnId};
use dtm_offline::{BatchContext, BatchScheduler};
use dtm_sim::{EngineConfig, SchedulingPolicy, SystemView};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Observability for the message-level protocol.
#[derive(Clone, Debug, Default)]
pub struct MsgStats {
    /// Total messages sent (finds, forwards, replies, reports, notifies).
    pub messages: u64,
    /// Extra hops spent chasing moving objects.
    pub chase_forwards: u64,
    /// Reports per cover layer.
    // dtm-lint: bounded -- keyed by cover layer; the sparse cover has O(log n) layers
    pub reports_per_layer: BTreeMap<u32, u64>,
    /// Partial-bucket level per transaction.
    // dtm-lint: bounded -- experiment-scoped stats (Retention::Full runs); streaming runs leave stats detached
    pub levels: BTreeMap<TxnId, u32>,
    /// Per-transaction discovery latency (arrival to report arrival).
    // dtm-lint: bounded -- experiment-scoped stats (Retention::Full runs); streaming runs leave stats detached
    pub report_latency: Vec<Time>,
}

/// In-flight protocol messages.
#[derive(Clone, Debug)]
enum Msg {
    /// Chasing `object` on behalf of `txn`; currently heading to `target`.
    Find {
        txn: TxnId,
        object: ObjectId,
        reply_to: NodeId,
        target: NodeId,
    },
    /// The object was caught: position and its requester registry.
    FindReply {
        txn: TxnId,
        object: ObjectId,
        position: NodeId,
        users: Vec<(TxnId, NodeId)>,
    },
    /// Transaction reports to its cluster leader.
    Report {
        txn_id: TxnId,
        cluster: ClusterId,
        /// Carried object positions (as discovered).
        carried: CarriedInfo,
    },
}

/// Object positions carried by a report: `(object, position)` pairs.
type CarriedInfo = Vec<(ObjectId, NodeId)>;

/// A transaction mid-discovery at its home node.
#[derive(Clone, Debug)]
struct Discovery {
    txn: Transaction,
    started_at: Time,
    awaiting: usize,
    // dtm-lint: bounded -- one entry per object the txn touches, fixed at arrival
    positions: Vec<(ObjectId, NodeId)>,
    // dtm-lint: bounded -- one entry per discovered conflicting requester, dropped with the Discovery
    conflict_homes: Vec<NodeId>,
}

/// Message-level Algorithm 3.
///
/// **Boundedness (open-system audit).** `inbox`, `discovering`,
/// `reported` and `partials` drain as the protocol advances;
/// `object_users` registries are pruned to live requesters whenever a
/// `Find` catches its object, and `leader_fixed` retains only live
/// transactions (top of `step`). State is O(live set + in-flight
/// messages), safe for indefinite streaming runs.
pub struct DistributedMsgPolicy<A> {
    scheduler: A,
    cover: SparseCover,
    /// Doubled-weight copy for scheduling math under half-speed objects.
    doubled: Network,
    max_level: Option<u32>,
    // dtm-lint: bounded -- in-flight messages; every entry with key <= now drains each step
    inbox: BTreeMap<Time, Vec<Msg>>,
    // dtm-lint: bounded -- entries leave when the last FindReply lands and the Report is sent
    discovering: BTreeMap<TxnId, Discovery>,
    /// Transactions whose report is in flight, awaiting leader pickup.
    // dtm-lint: bounded -- entries leave when the leader picks the report into a partial bucket
    reported: BTreeMap<TxnId, Transaction>,
    /// Registry carried by each object (requesters seen by `Find`s).
    // dtm-lint: bounded -- registries pruned to live requesters whenever a Find catches its object
    object_users: BTreeMap<ObjectId, Vec<(TxnId, NodeId)>>,
    /// Partial buckets: (level, cluster) -> members with carried info.
    // dtm-lint: bounded -- parked transactions only; each partial bucket drains at activation
    partials: BTreeMap<(u32, ClusterId), Vec<(Transaction, CarriedInfo)>>,
    /// Each leader's own past scheduling decisions (local knowledge).
    // dtm-lint: bounded -- retained entries filtered to live transactions at the top of step()
    leader_fixed: BTreeMap<ClusterId, Vec<(Transaction, Time)>>,
    stats: Option<Arc<Mutex<MsgStats>>>,
    /// Live protocol-message counter (telemetry registry handle).
    msg_counter: Option<Arc<dtm_telemetry::Counter>>,
}

fn double_weights(network: &Network) -> Network {
    let g = network.graph();
    let mut out = dtm_graph::Graph::new(g.n(), format!("{}-halfspeed", g.name()));
    for (u, v, w) in g.edges() {
        out.add_edge(u, v, 2 * w).expect("copying a valid graph"); // dtm-lint: allow(C1) -- copying the edges of an already-validated graph into a fresh one
    }
    Network::new(out, None)
}

impl<A: BatchScheduler> DistributedMsgPolicy<A> {
    /// Build the policy (cover deterministic in `seed`).
    pub fn new(network: &Network, scheduler: A, seed: u64) -> Self {
        DistributedMsgPolicy {
            scheduler,
            cover: SparseCover::build(network, seed),
            doubled: double_weights(network),
            max_level: None,
            inbox: BTreeMap::new(),
            discovering: BTreeMap::new(),
            reported: BTreeMap::new(),
            object_users: BTreeMap::new(),
            partials: BTreeMap::new(),
            leader_fixed: BTreeMap::new(),
            stats: None,
            msg_counter: None,
        }
    }

    /// Attach a stats handle.
    pub fn with_stats(mut self, stats: Arc<Mutex<MsgStats>>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Count every protocol message on a live telemetry counter (e.g.
    /// `registry.counter("dist_messages_total")`).
    pub fn with_message_counter(mut self, counter: Arc<dtm_telemetry::Counter>) -> Self {
        self.msg_counter = Some(counter);
        self
    }

    /// Engine configuration this protocol requires: half-speed objects
    /// (Section V) and late execution (leader knowledge is stale, so
    /// assigned times are targets, not guarantees).
    pub fn engine_config() -> EngineConfig {
        EngineConfig {
            speed_divisor: 2,
            allow_late_execution: true,
            ..EngineConfig::default()
        }
    }

    fn bump(&self, f: impl FnOnce(&mut MsgStats)) {
        if let Some(stats) = &self.stats {
            f(&mut stats.lock());
        }
    }

    fn send(&mut self, at: Time, msg: Msg) {
        self.bump(|s| s.messages += 1);
        if let Some(c) = &self.msg_counter {
            c.inc();
        }
        self.inbox.entry(at).or_default().push(msg);
    }

    /// Process one delivered message; may send follow-ups (same step if
    /// distance 0) and returns a schedule fragment when a report triggers
    /// nothing — fragments come from activations only.
    fn deliver(&mut self, view: &SystemView<'_>, msg: Msg) {
        let now = view.now;
        match msg {
            Msg::Find {
                txn,
                object,
                reply_to,
                target,
            } => {
                // Is the object resting at this node right now?
                let resting_here = matches!(
                    view.object(object).map(|st| st.place),
                    Some(dtm_sim::ObjectPlace::At(v)) if v == target
                );
                if resting_here {
                    // Caught: register the requester on the object and
                    // reply with the registry. Requesters that have
                    // retired no longer conflict, so drop them first —
                    // this keeps each registry bounded by the live set
                    // instead of growing with every requester ever seen
                    // (the open-system boundedness requirement).
                    let home = reply_to;
                    let users = self.object_users.entry(object).or_default();
                    users.retain(|&(id, _)| view.live(id).is_some());
                    let registry: Vec<(TxnId, NodeId)> = users.clone();
                    if !users.iter().any(|&(id, _)| id == txn) {
                        users.push((txn, home));
                    }
                    let dist = view.network.distance(target, reply_to);
                    self.send(
                        now + dist,
                        Msg::FindReply {
                            txn,
                            object,
                            position: target,
                            users: registry,
                        },
                    );
                    return;
                }
                // Follow this node's forwarding pointer — strictly local
                // knowledge ("reach the node that the object departs
                // from", §V). Pointers record the *last* departure, so the
                // chase follows a time-monotone subsequence of the
                // object's path and converges.
                if let Some(next) = view.forwarded_to(object, target) {
                    self.bump(|s| s.chase_forwards += 1);
                    let dist = view.network.distance(target, next).max(1);
                    self.send(
                        now + dist,
                        Msg::Find {
                            txn,
                            object,
                            reply_to,
                            target: next,
                        },
                    );
                } else {
                    // No pointer: the object has never departed from this
                    // node — it is inbound (or not yet created). Wait a
                    // step and retry here.
                    self.bump(|s| s.chase_forwards += 1);
                    self.send(
                        now + 1,
                        Msg::Find {
                            txn,
                            object,
                            reply_to,
                            target,
                        },
                    );
                }
            }
            Msg::FindReply {
                txn,
                object,
                position,
                users,
            } => {
                let Some(d) = self.discovering.get_mut(&txn) else {
                    return; // transaction already reported (duplicate reply)
                };
                d.positions.push((object, position));
                d.conflict_homes.extend(users.iter().map(|&(_, home)| home));
                d.awaiting -= 1;
                if d.awaiting == 0 {
                    if let Some(d) = self.discovering.remove(&txn) {
                        self.finish_discovery(view, d);
                    }
                }
            }
            Msg::Report {
                txn_id,
                cluster,
                carried,
            } => {
                self.insert_partial(view, txn_id, cluster, carried);
            }
        }
    }

    /// Discovery complete: compute the dependency radius, pick the home
    /// cluster, send the report.
    fn finish_discovery(&mut self, view: &SystemView<'_>, d: Discovery) {
        let now = view.now;
        let home = d.txn.home;
        let y: Weight = d
            .positions
            .iter()
            .map(|&(_, pos)| view.network.distance(home, pos))
            .chain(
                d.conflict_homes
                    .iter()
                    .map(|&h| view.network.distance(home, h)),
            )
            .max()
            .unwrap_or(0);
        let layer = self.cover.lowest_covering_layer(y);
        let cluster = self.cover.home_cluster(home, layer);
        let leader = cluster.leader;
        let dist = view.network.distance(home, leader);
        self.bump(|s| {
            *s.reports_per_layer.entry(layer).or_insert(0) += 1;
            s.report_latency.push(now + dist - d.started_at);
        });
        let cluster_id = cluster.id;
        let txn_id = d.txn.id;
        self.send(
            now + dist,
            Msg::Report {
                txn_id,
                cluster: cluster_id,
                carried: d.positions,
            },
        );
        // The transaction itself rides along with the report.
        self.reported.insert(txn_id, d.txn);
    }

    /// Leader-side partial bucket insertion using only carried knowledge.
    fn insert_partial(
        &mut self,
        view: &SystemView<'_>,
        txn_id: TxnId,
        cluster: ClusterId,
        carried: CarriedInfo,
    ) {
        let max_level = self.max_level.expect("set in step"); // dtm-lint: allow(C1) -- set unconditionally at the top of step() before any insert
        let Some(txn) = self.reported.remove(&txn_id) else {
            return;
        };
        let now = view.now;
        // Leader-local context: carried positions (aged to now) + the
        // leader's own fixed decisions. Nothing global.
        let mut ctx = BatchContext {
            now,
            object_avail: carried.iter().map(|&(o, v)| (o, (v, now))).collect(),
            fixed: self.leader_fixed.get(&cluster).cloned().unwrap_or_default(),
        };
        // Bucket members' carried info also feeds the probe.
        let mut chosen = None;
        for i in 0..=max_level {
            let members = self
                .partials
                .get(&(i, cluster))
                .cloned()
                .unwrap_or_default();
            let mut probe: Vec<Transaction> = members.iter().map(|(t, _)| t.clone()).collect();
            for (_, info) in &members {
                for &(o, v) in info {
                    ctx.object_avail.entry(o).or_insert((v, now));
                }
            }
            probe.push(txn.clone());
            let f = self.scheduler.makespan(&self.doubled, &probe, &ctx);
            if f <= 1u64 << i {
                chosen = Some(i);
                break;
            }
        }
        let level = chosen.unwrap_or(max_level);
        self.bump(|s| {
            s.levels.insert(txn.id, level);
        });
        self.partials
            .entry((level, cluster))
            .or_default()
            .push((txn, carried));
    }
}

impl<A: BatchScheduler> SchedulingPolicy for DistributedMsgPolicy<A> {
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        let now = view.now;
        let max_level = *self
            .max_level
            .get_or_insert_with(|| view.network.max_bucket_level());
        let _ = max_level;

        // Leaders forget decisions whose transactions have retired: the
        // fixed context's contract is "already-scheduled, *uncommitted*"
        // ([`BatchContext::fixed`]), and without this each leader's
        // history grows with every transaction it ever scheduled —
        // unbounded under open-system arrival streams.
        self.leader_fixed.retain(|_, fixed| {
            fixed.retain(|(t, _)| view.live(t.id).is_some());
            !fixed.is_empty()
        });

        let mut fragment = Schedule::new();

        // New arrivals start discovery toward each object's ORIGIN — the
        // only location knowledge a fresh transaction has.
        let mut order: Vec<TxnId> = arrivals.to_vec();
        order.sort_unstable();
        for id in order {
            let txn = view.live(id).expect("arrival is live").txn.clone(); // dtm-lint: allow(C1) -- engine contract: every id in `arrivals` is live this step
            if txn.k() == 0 {
                fragment.set(id, now); // nothing to assemble
                continue;
            }
            let home = txn.home;
            let objects: Vec<ObjectId> = txn.objects().collect();
            self.discovering.insert(
                id,
                Discovery {
                    txn,
                    started_at: now,
                    awaiting: objects.len(),
                    positions: Vec::new(),
                    conflict_homes: Vec::new(),
                },
            );
            for o in objects {
                let origin = view.object(o).map(|st| st.info.origin).unwrap_or(home);
                self.send(
                    now + view.network.distance(home, origin),
                    Msg::Find {
                        txn: id,
                        object: o,
                        reply_to: home,
                        target: origin,
                    },
                );
            }
        }

        // Deliver due messages; same-step cascades (distance-0 legs) drain
        // in the loop. Each cascade strictly advances a protocol phase, so
        // this terminates.
        loop {
            let due: Vec<Time> = self.inbox.range(..=now).map(|(&t, _)| t).collect();
            if due.is_empty() {
                break;
            }
            for t in due {
                for msg in self.inbox.remove(&t).unwrap_or_default() {
                    self.deliver(view, msg);
                }
            }
        }

        // Activations: every partial i-bucket fires when 2^i divides now.
        let keys: Vec<(u32, ClusterId)> = self
            .partials
            .keys()
            .filter(|(i, _)| now.is_multiple_of(1u64 << i))
            .copied()
            .collect();
        for key in keys {
            let members = self.partials.remove(&key).unwrap_or_default();
            if members.is_empty() {
                continue;
            }
            let leader = self.cover.cluster(key.1).leader;
            let notify: Time = members
                .iter()
                .map(|(t, _)| view.network.distance(leader, t.home))
                .max()
                .unwrap_or(0);
            self.bump(|s| s.messages += members.len() as u64);
            if let Some(c) = &self.msg_counter {
                c.add(members.len() as u64);
            }
            // Leader-local context from carried info + own history.
            let mut ctx = BatchContext {
                now: now + notify,
                object_avail: BTreeMap::new(),
                fixed: self.leader_fixed.get(&key.1).cloned().unwrap_or_default(),
            };
            for (_, info) in &members {
                for &(o, v) in info {
                    ctx.object_avail.entry(o).or_insert((v, now));
                }
            }
            let bucket: Vec<Transaction> = members.iter().map(|(t, _)| t.clone()).collect();
            let s = self.scheduler.schedule(&self.doubled, &bucket, &ctx);
            let fixed = self.leader_fixed.entry(key.1).or_default();
            for t in &bucket {
                fixed.push((t.clone(), s.get(t.id).expect("scheduled"))); // dtm-lint: allow(C1) -- BatchScheduler contract: schedule() assigns every pending transaction
            }
            fragment.merge(&s);
        }
        fragment
    }

    fn name(&self) -> String {
        format!("distributed-msg({})", self.scheduler.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_model::{
        ClosedLoopSource, FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator,
        WorkloadSpec,
    };
    use dtm_offline::ListScheduler;
    use dtm_sim::{run_policy, validate_events, ValidationConfig};

    fn cfg() -> EngineConfig {
        DistributedMsgPolicy::<ListScheduler>::engine_config()
    }

    fn vcfg() -> ValidationConfig {
        ValidationConfig {
            speed_divisor: 2,
            allow_late_execution: true,
            ..ValidationConfig::default()
        }
    }

    #[test]
    fn batch_on_grid_completes_and_validates() {
        let net = topology::grid(&[4, 4]);
        let inst = WorkloadGenerator::new(WorkloadSpec::batch_uniform(8, 2), 3).generate(&net);
        let n = inst.num_txns();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 5),
            cfg(),
        );
        res.expect_ok();
        validate_events(&net, &res, &vcfg()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }

    #[test]
    fn online_arrivals_on_line_complete() {
        let net = topology::line(16);
        let spec = WorkloadSpec {
            num_objects: 6,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli {
                rate: 0.1,
                horizon: 16,
            },
        };
        let inst = WorkloadGenerator::new(spec, 7).generate(&net);
        let n = inst.num_txns();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 2),
            cfg(),
        );
        res.expect_ok();
        validate_events(&net, &res, &vcfg()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }

    #[test]
    fn closed_loop_star_completes_with_message_accounting() {
        let net = topology::star(3, 3);
        let stats = Arc::new(Mutex::new(MsgStats::default()));
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(4, 2), 2, 9);
        let expected = src.total_txns();
        let res = run_policy(
            &net,
            src,
            DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 4)
                .with_stats(Arc::clone(&stats)),
            cfg(),
        );
        res.expect_ok();
        validate_events(&net, &res, &vcfg()).unwrap();
        assert_eq!(res.metrics.committed, expected);
        let s = stats.lock();
        assert_eq!(s.levels.len(), expected);
        // Each txn needs >= 2 finds + 2 replies + 1 report = 5 messages.
        assert!(s.messages >= expected as u64 * 5);
        assert_eq!(s.report_latency.len(), expected);
    }

    #[test]
    fn find_message_follows_forwarding_trail() {
        // Unit-level: the Find consults only the current node's
        // forwarding pointer — never the object's global position.
        use dtm_model::ObjectInfo;
        use dtm_sim::{LiveTxn, ObjectPlace, ObjectState};
        let net = topology::line(12);
        let mut policy = DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 1);
        policy.max_level = Some(net.max_bucket_level());
        let stats = Arc::new(Mutex::new(MsgStats::default()));
        policy.stats = Some(Arc::clone(&stats));

        let live: BTreeMap<TxnId, LiveTxn> = BTreeMap::new();
        let mut objects = BTreeMap::new();
        objects.insert(
            ObjectId(0),
            ObjectState {
                info: ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(0),
                    created_at: 0,
                },
                // In flight n4 -> n5, arriving at t=12.
                place: ObjectPlace::Hop {
                    from: NodeId(4),
                    next: NodeId(5),
                    arrive: 12,
                },
                last_holder: None,
            },
        );
        // The object's trail so far: 0 -> 4 (shortcut recorded by the
        // engine as last departures), 4 -> 5.
        let mut fwd = dtm_sim::ForwardingTable::new(net.n());
        fwd.insert(ObjectId(0), NodeId(0), NodeId(4));
        fwd.insert(ObjectId(0), NodeId(4), NodeId(5));
        let view = SystemView::new(10, &net, &live, &objects).with_forwarding(&fwd);
        policy.deliver(
            &view,
            Msg::Find {
                txn: TxnId(7),
                object: ObjectId(0),
                reply_to: NodeId(0),
                target: NodeId(0), // stale: the origin
            },
        );
        // Followed the pointer at n0 toward n4: arrives t = 10 + 4.
        assert_eq!(stats.lock().chase_forwards, 1);
        let queued = policy.inbox.remove(&14).expect("forwarded find queued");
        assert!(matches!(
            queued[0],
            Msg::Find {
                target: NodeId(4),
                ..
            }
        ));
        // At n4 (t=14): object still not resting there; pointer says n5.
        let view = SystemView::new(14, &net, &live, &objects).with_forwarding(&fwd);
        policy.deliver(&view, queued.into_iter().next().unwrap());
        let queued = policy.inbox.remove(&15).expect("next leg queued");
        assert!(matches!(
            queued[0],
            Msg::Find {
                target: NodeId(5),
                ..
            }
        ));
        // At n5 the object now rests: caught, registered, reply queued for
        // t = 15 + dist(5, 0) = 20.
        let mut objects2 = objects.clone();
        objects2.get_mut(&ObjectId(0)).unwrap().place = ObjectPlace::At(NodeId(5));
        let view2 = SystemView::new(15, &net, &live, &objects2).with_forwarding(&fwd);
        policy.deliver(&view2, queued.into_iter().next().unwrap());
        assert_eq!(
            policy.object_users[&ObjectId(0)],
            vec![(TxnId(7), NodeId(0))]
        );
        assert!(policy.inbox.contains_key(&20));
    }

    #[test]
    fn find_waits_when_object_inbound() {
        // No pointer at the node and the object not resting there: the
        // message waits a step (the object is on its way in).
        use dtm_model::ObjectInfo;
        use dtm_sim::{LiveTxn, ObjectPlace, ObjectState};
        let net = topology::line(6);
        let mut policy = DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 1);
        policy.max_level = Some(net.max_bucket_level());
        let live: BTreeMap<TxnId, LiveTxn> = BTreeMap::new();
        let mut objects = BTreeMap::new();
        objects.insert(
            ObjectId(0),
            ObjectState {
                info: ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(2),
                    created_at: 0,
                },
                place: ObjectPlace::Hop {
                    from: NodeId(1),
                    next: NodeId(2),
                    arrive: 9,
                },
                last_holder: None,
            },
        );
        let fwd = dtm_sim::ForwardingTable::new(net.n());
        let view = SystemView::new(8, &net, &live, &objects).with_forwarding(&fwd);
        policy.deliver(
            &view,
            Msg::Find {
                txn: TxnId(1),
                object: ObjectId(0),
                reply_to: NodeId(5),
                target: NodeId(2),
            },
        );
        // Retry queued at t+1 for the same node.
        let queued = policy.inbox.remove(&9).expect("retry queued");
        assert!(matches!(
            queued[0],
            Msg::Find {
                target: NodeId(2),
                ..
            }
        ));
    }

    #[test]
    fn deterministic() {
        let net = topology::grid(&[4, 4]);
        let mk = || {
            let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 1, 3);
            run_policy(
                &net,
                src,
                DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 11),
                cfg(),
            )
        };
        let (a, b) = (mk(), mk());
        a.expect_ok();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.commits, b.commits);
    }
}
