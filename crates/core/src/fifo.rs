//! Online baseline policies: FIFO earliest-feasible scheduling and the
//! TSP-tour heuristic of Zhang et al. \[30\].
//!
//! Both schedule each step's arrivals immediately using an offline batch
//! scheduler on the current snapshot — they are the "natural" schedulers a
//! practitioner would write without the paper's machinery, and experiment
//! E12 compares them against Algorithms 1 and 2.

use crate::viewctx::{batch_context_from_view, FixedCache};
use dtm_model::{Schedule, Time, TxnId};
use dtm_offline::{BatchScheduler, ListScheduler, TspScheduler};
use dtm_sim::{SchedulingPolicy, SystemView};
use dtm_telemetry::{Decision, DecisionKind, DecisionTraceHandle};

/// FIFO baseline: each arriving transaction is scheduled at the earliest
/// feasible time given every earlier decision, in arrival order.
///
/// **Boundedness (open-system audit).** The only state is the
/// [`FixedCache`] of live scheduled transactions (committed entries are
/// pruned via step effects), so the policy is O(live set) and safe for
/// indefinite streaming runs.
#[derive(Clone, Debug, Default)]
pub struct FifoPolicy {
    inner: Option<ListScheduler>,
    cache: FixedCache,
    decisions: Option<DecisionTraceHandle>,
}

impl FifoPolicy {
    /// Create the baseline.
    pub fn new() -> Self {
        FifoPolicy {
            inner: Some(ListScheduler::fifo()),
            cache: FixedCache::default(),
            decisions: None,
        }
    }

    /// Record one [`DecisionKind::FifoQueue`] per scheduled transaction
    /// into `trace` (the caller keeps the other `Arc` end).
    pub fn with_decision_trace(mut self, trace: DecisionTraceHandle) -> Self {
        self.decisions = Some(trace);
        self
    }
}

impl SchedulingPolicy for FifoPolicy {
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        // Fold this step's delta in *before* the early return, or quiet
        // steps would silently drop schedule/commit changes.
        self.cache.refresh(view);
        if arrivals.is_empty() {
            return Schedule::new();
        }
        let ctx = self.cache.context(view);
        let mut ids: Vec<TxnId> = arrivals.to_vec();
        ids.sort_unstable();
        let pending: Vec<_> = ids
            .iter()
            .map(|id| view.live(*id).expect("arrival is live").txn.clone()) // dtm-lint: allow(C1) -- engine contract: every id in `arrivals` is live this step
            .collect();
        let fragment = self.inner.get_or_insert_with(ListScheduler::fifo).schedule(
            view.network,
            &pending,
            &ctx,
        );
        if let Some(trace) = &self.decisions {
            let mut trace = trace.lock();
            for (queue_position, &txn) in ids.iter().enumerate() {
                trace.push(Decision {
                    t: view.now,
                    txn,
                    exec_at: fragment.get(txn),
                    kind: DecisionKind::FifoQueue { queue_position },
                });
            }
        }
        fragment
    }

    fn name(&self) -> String {
        "fifo".into()
    }
}

/// TSP-tour baseline (reference \[30\]): arrivals are scheduled each step
/// via per-object nearest-neighbor tours.
///
/// **Boundedness (open-system audit).** Stateless between steps (the
/// decision handle is an optional shared sink): trivially safe for
/// indefinite streaming runs.
#[derive(Clone, Debug, Default)]
pub struct TspPolicy {
    decisions: Option<DecisionTraceHandle>,
}

impl TspPolicy {
    /// Create the baseline.
    pub fn new() -> Self {
        TspPolicy::default()
    }

    /// Record one [`DecisionKind::TspTour`] per scheduled transaction
    /// into `trace` (the caller keeps the other `Arc` end).
    pub fn with_decision_trace(mut self, trace: DecisionTraceHandle) -> Self {
        self.decisions = Some(trace);
        self
    }
}

impl SchedulingPolicy for TspPolicy {
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        if arrivals.is_empty() {
            return Schedule::new();
        }
        let ctx = batch_context_from_view(view);
        let mut ids: Vec<TxnId> = arrivals.to_vec();
        ids.sort_unstable();
        let pending: Vec<_> = ids
            .iter()
            .map(|id| view.live(*id).expect("arrival is live").txn.clone()) // dtm-lint: allow(C1) -- engine contract: every id in `arrivals` is live this step
            .collect();
        let fragment = TspScheduler.schedule(view.network, &pending, &ctx);
        if let Some(trace) = &self.decisions {
            // Tour visit order is the execution-time order of the batch.
            let mut order: Vec<(Time, TxnId)> = fragment.iter().map(|(id, t)| (t, id)).collect();
            order.sort_unstable();
            let mut trace = trace.lock();
            for (tour_position, &(exec_at, txn)) in order.iter().enumerate() {
                trace.push(Decision {
                    t: view.now,
                    txn,
                    exec_at: Some(exec_at),
                    kind: DecisionKind::TspTour { tour_position },
                });
            }
        }
        fragment
    }

    fn name(&self) -> String {
        "tsp".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_model::{
        ClosedLoopSource, FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator,
        WorkloadSpec,
    };
    use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};

    fn spec(rate: f64) -> WorkloadSpec {
        WorkloadSpec {
            num_objects: 6,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli { rate, horizon: 12 },
        }
    }

    #[test]
    fn fifo_runs_clean_online() {
        let net = topology::grid(&[3, 3]);
        let inst = WorkloadGenerator::new(spec(0.3), 1).generate(&net);
        let n = inst.num_txns();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            FifoPolicy::new(),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }

    #[test]
    fn tsp_runs_clean_online() {
        let net = topology::grid(&[3, 3]);
        let inst = WorkloadGenerator::new(spec(0.3), 2).generate(&net);
        let n = inst.num_txns();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            TspPolicy::new(),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }

    #[test]
    fn fifo_closed_loop() {
        let net = topology::line(6);
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(4, 2), 2, 5);
        let res = run_policy(&net, src, FifoPolicy::new(), EngineConfig::default());
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, 12);
    }
}
