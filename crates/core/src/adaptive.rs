//! Additional online policies around the paper's core algorithms:
//!
//! * [`RandomizedBackoffPolicy`] — a window-based randomized contention
//!   manager in the spirit of Sharma & Busch's multi-core scheduler
//!   (reference \[27\] of the paper): each transaction is delayed by a
//!   uniformly random offset inside a contention-sized window before its
//!   earliest-feasible slot. Randomization spreads conflicting
//!   transactions without coordination; the window grows with the
//!   transaction's observed conflict degree.
//! * [`AutoPolicy`] — the paper's own deployment guidance turned into
//!   code: Section III-E recommends the direct greedy approach on
//!   small-diameter graphs and the (decentralizable) bucket conversion on
//!   large-diameter graphs. `AutoPolicy` picks per network at
//!   construction.

use crate::bucket::BucketPolicy;
use crate::dependency::constraints_for;
use crate::greedy::GreedyPolicy;
use dtm_graph::Network;
use dtm_model::{Schedule, Time, TxnId};
use dtm_offline::{LineScheduler, ListScheduler};
use dtm_sim::{SchedulingPolicy, SystemView};
use dtm_telemetry::{Decision, DecisionKind, DecisionTraceHandle};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Window-based randomized backoff scheduler (related-work baseline).
///
/// `Clone` (for [`dtm_sim::SchedulingPolicy::fork`] checkpoints)
/// preserves the RNG stream position, so a fork replays the exact
/// backoff sequence the original would have drawn.
#[derive(Clone)]
pub struct RandomizedBackoffPolicy {
    rng: ChaCha8Rng,
    /// Window size per unit of conflict degree (default 2).
    pub window_per_conflict: Time,
    decisions: Option<DecisionTraceHandle>,
}

impl RandomizedBackoffPolicy {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        RandomizedBackoffPolicy {
            rng: ChaCha8Rng::seed_from_u64(seed),
            window_per_conflict: 2,
            decisions: None,
        }
    }

    /// Record one [`DecisionKind::Backoff`] per scheduled transaction
    /// into `trace` (the caller keeps the other `Arc` end).
    pub fn with_decision_trace(mut self, trace: DecisionTraceHandle) -> Self {
        self.decisions = Some(trace);
        self
    }
}

impl SchedulingPolicy for RandomizedBackoffPolicy {
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        if arrivals.is_empty() {
            return Schedule::new();
        }
        let mut order: Vec<TxnId> = arrivals.to_vec();
        order.sort_unstable();
        let mut colored: BTreeMap<TxnId, Time> = BTreeMap::new();
        let mut fragment = Schedule::new();
        for id in order {
            let lt = view.live(id).expect("arrival is live"); // dtm-lint: allow(C1) -- engine contract: every id in `arrivals` is live this step
            let constraints = constraints_for(view, &lt.txn, &colored);
            // Random backoff scaled by the conflict window, then earliest
            // feasible at or after the backoff point.
            let window = self.window_per_conflict * (constraints.len() as Time + 1);
            let backoff = self.rng.gen_range(0..window);
            let mut color = backoff;
            // Push past every violated constraint (ascending scan).
            let mut intervals: Vec<(Time, Time)> = constraints
                .iter()
                .map(|c| {
                    (
                        (c.color + 1).saturating_sub(c.weight),
                        c.color + c.weight - 1,
                    )
                })
                .collect();
            intervals.sort_unstable();
            for (lo, hi) in intervals {
                if lo > color {
                    break;
                }
                if hi >= color {
                    color = hi + 1;
                }
            }
            colored.insert(id, color);
            fragment.set(id, view.now + color);
            if let Some(trace) = &self.decisions {
                trace.lock().push(Decision {
                    t: view.now,
                    txn: id,
                    exec_at: Some(view.now + color),
                    kind: DecisionKind::Backoff {
                        window,
                        backoff,
                        conflicts: constraints.len(),
                    },
                });
            }
        }
        fragment
    }

    fn name(&self) -> String {
        "randomized-backoff".into()
    }
}

/// Diameter threshold below which [`AutoPolicy`] uses the direct greedy
/// approach (Section III-E: small-diameter graphs collect information in
/// O(log n) steps; beyond that, the bucket conversion wins).
///
/// The test `d <= 2*log2(n)` is evaluated exactly in integers as
/// `2^d <= n^2` (both sides are monotone in `d`, and `n^2` fits u128 for
/// any u64 node count), so the policy choice can never flip with a
/// platform's float rounding.
fn small_diameter(network: &Network) -> bool {
    let n = network.n().max(2) as u128;
    let d = network.diameter();
    d < 128 && (1u128 << d) <= n * n
}

/// The paper's deployment recommendation as a policy: greedy on
/// small-diameter networks, bucket conversion (line sweep on lines,
/// generic list otherwise) on large-diameter ones.
#[derive(Clone)]
pub enum AutoPolicy {
    /// Direct greedy (Algorithm 1).
    Greedy(GreedyPolicy),
    /// Bucket around the line sweep (Algorithm 2 on line graphs).
    BucketLine(BucketPolicy<LineScheduler>),
    /// Bucket around generic list scheduling (Algorithm 2 elsewhere).
    BucketList(BucketPolicy<ListScheduler>),
}

impl AutoPolicy {
    /// Pick the approach for `network`.
    pub fn for_network(network: &Network) -> Self {
        if small_diameter(network) {
            AutoPolicy::Greedy(GreedyPolicy::new())
        } else if matches!(
            network.structured(),
            Some(dtm_graph::Structured::Line { .. })
        ) {
            AutoPolicy::BucketLine(BucketPolicy::new(LineScheduler))
        } else {
            AutoPolicy::BucketList(BucketPolicy::new(ListScheduler::fifo()))
        }
    }

    /// Delegate decision tracing to the chosen inner policy.
    pub fn with_decision_trace(self, trace: DecisionTraceHandle) -> Self {
        match self {
            AutoPolicy::Greedy(p) => AutoPolicy::Greedy(p.with_decision_trace(trace)),
            AutoPolicy::BucketLine(p) => AutoPolicy::BucketLine(p.with_decision_trace(trace)),
            AutoPolicy::BucketList(p) => AutoPolicy::BucketList(p.with_decision_trace(trace)),
        }
    }
}

impl SchedulingPolicy for AutoPolicy {
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        match self {
            AutoPolicy::Greedy(p) => p.step(view, arrivals),
            AutoPolicy::BucketLine(p) => p.step(view, arrivals),
            AutoPolicy::BucketList(p) => p.step(view, arrivals),
        }
    }

    fn name(&self) -> String {
        match self {
            AutoPolicy::Greedy(p) => format!("auto({})", p.name()),
            AutoPolicy::BucketLine(p) => format!("auto({})", p.name()),
            AutoPolicy::BucketList(p) => format!("auto({})", p.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_model::{ClosedLoopSource, WorkloadSpec};
    use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};

    #[test]
    fn backoff_schedules_validly() {
        let net = topology::grid(&[4, 4]);
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(8, 2), 2, 5);
        let expected = src.total_txns();
        let res = run_policy(
            &net,
            src,
            RandomizedBackoffPolicy::new(3),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, expected);
    }

    #[test]
    fn backoff_deterministic_per_seed() {
        let net = topology::clique(8);
        let mk = |seed| {
            let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 2, 7);
            run_policy(
                &net,
                src,
                RandomizedBackoffPolicy::new(seed),
                EngineConfig::default(),
            )
        };
        let (a, b, c) = (mk(1), mk(1), mk(2));
        assert_eq!(a.schedule, b.schedule);
        assert_ne!(a.schedule, c.schedule);
    }

    #[test]
    fn auto_picks_greedy_on_small_diameter() {
        let clique = topology::clique(16);
        assert!(matches!(
            AutoPolicy::for_network(&clique),
            AutoPolicy::Greedy(_)
        ));
        let cube = topology::hypercube(5);
        assert!(matches!(
            AutoPolicy::for_network(&cube),
            AutoPolicy::Greedy(_)
        ));
    }

    #[test]
    fn auto_picks_bucket_on_large_diameter() {
        let line = topology::line(128);
        assert!(matches!(
            AutoPolicy::for_network(&line),
            AutoPolicy::BucketLine(_)
        ));
        let ring = topology::ring(128);
        assert!(matches!(
            AutoPolicy::for_network(&ring),
            AutoPolicy::BucketList(_)
        ));
    }

    #[test]
    fn auto_runs_clean_everywhere() {
        for net in [
            topology::clique(8),
            topology::line(48),
            topology::ring(40),
            topology::grid(&[4, 4]),
        ] {
            let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 2, 9);
            let expected = src.total_txns();
            let res = run_policy(
                &net,
                src,
                AutoPolicy::for_network(&net),
                EngineConfig::default(),
            );
            res.expect_ok();
            validate_events(&net, &res, &ValidationConfig::default()).unwrap();
            assert_eq!(res.metrics.committed, expected, "{}", net.name());
        }
    }
}
