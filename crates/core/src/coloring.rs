//! Weighted graph coloring — Lemmas 1 and 2 of the paper.
//!
//! A valid coloring assigns integers to nodes so that adjacent nodes'
//! colors differ by at least their edge weight (Equation 1). Colors
//! translate to execution times: the gap gives objects time to travel.
//!
//! * **Lemma 1**: given any valid partial coloring, an uncolored node `v`
//!   can receive a valid color `c(v) <= 2Γ(v) - Δ(v)` (weighted degree and
//!   degree in the dependency graph). [`smallest_valid_color`] returns the
//!   *smallest* valid color, which always satisfies that bound.
//! * **Lemma 2**: if every edge has the same weight `β` and all existing
//!   colors are multiples of `β`, node `v` can receive a color `k_v β`
//!   with `k_v >= 1` and `c(v) <= Γ(v)`.
//!   [`smallest_valid_color_uniform`] implements it.

use dtm_graph::Weight;
use dtm_model::Time;

/// One coloring constraint: a neighbor already colored `color` over an
/// edge of weight `weight` forbids the interval
/// `(color - weight, color + weight)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorConstraint {
    /// The neighbor's color.
    pub color: Time,
    /// The connecting edge weight (must be >= 1).
    pub weight: Weight,
}

impl ColorConstraint {
    /// Convenience constructor.
    pub fn new(color: Time, weight: Weight) -> Self {
        debug_assert!(weight >= 1, "constraint weights must be positive");
        ColorConstraint { color, weight }
    }
}

/// Smallest color `c >= 0` with `|c - color_i| >= weight_i` for all
/// constraints (Lemma 1). Runs in `O(m log m)` for `m` constraints.
///
/// The result is at most `sum(2 w_i - 1) = 2Γ - Δ`: the forbidden set has
/// at most that many integers, so some value in `[0, 2Γ - Δ]` is free, and
/// the smallest free value can only be smaller.
pub fn smallest_valid_color(constraints: &[ColorConstraint]) -> Time {
    smallest_valid_color_into(constraints, &mut Vec::new())
}

/// [`smallest_valid_color`] with a caller-provided interval scratch
/// buffer, so hot paths (the greedy schedule phase) can amortize the
/// allocation across calls. `ranges` is cleared before use.
pub fn smallest_valid_color_into(
    constraints: &[ColorConstraint],
    ranges: &mut Vec<(Time, Time)>,
) -> Time {
    // Forbidden open intervals as inclusive integer ranges
    // [color - weight + 1, color + weight - 1], clamped at 0.
    ranges.clear();
    ranges.extend(constraints.iter().map(|c| {
        let lo = (c.color + 1).saturating_sub(c.weight);
        let hi = c.color + c.weight - 1;
        (lo, hi)
    }));
    ranges.sort_unstable();
    let mut candidate: Time = 0;
    for &(lo, hi) in ranges.iter() {
        if lo > candidate {
            break; // gap found before this range starts
        }
        if hi >= candidate {
            candidate = hi + 1;
        }
    }
    candidate
}

/// Lemma 1's closed-form bound `2Γ - Δ` for a constraint set.
pub fn lemma1_bound(constraints: &[ColorConstraint]) -> Time {
    constraints.iter().map(|c| 2 * c.weight - 1).sum()
}

/// Smallest color that is a positive multiple of `beta` and differs from
/// every constraint color by at least `beta` (Lemma 2: all edges weigh
/// `beta` and existing colors are multiples of `beta`; then distinct
/// multiples automatically satisfy the weight-β separation).
///
/// `taken` lists the multiples-of-β colors of adjacent nodes (colors that
/// are *not* multiples are rounded to the enclosing forbidden multiples).
pub fn smallest_valid_color_uniform(beta: Weight, taken: &[Time]) -> Time {
    assert!(beta >= 1, "beta must be positive");
    // Forbidden multiples k with |k*beta - taken_i| < beta, i.e. the
    // multiples within the open interval (t - beta, t + beta).
    let mut forbidden: Vec<Time> = Vec::with_capacity(2 * taken.len());
    for &t in taken {
        let k_low = (t + 1).saturating_sub(beta).div_ceil(beta);
        let k_high = t.div_ceil(beta);
        for k in k_low..=k_high {
            forbidden.push(k);
        }
    }
    forbidden.sort_unstable();
    forbidden.dedup();
    let mut k: Time = 1; // Lemma 2 requires k_v >= 1
    for f in forbidden {
        match f.cmp(&k) {
            std::cmp::Ordering::Less => continue,
            std::cmp::Ordering::Equal => k += 1,
            std::cmp::Ordering::Greater => break,
        }
    }
    k * beta
}

/// Smallest multiple of `beta` that is strictly greater than `after` and
/// satisfies arbitrary-weight constraints.
///
/// This is the Lemma 2 machinery in *absolute* time: the online uniform
/// scheduler keeps every execution time an absolute multiple of `beta`, so
/// that transactions scheduled at different steps still occupy distinct
/// β-slots (relative "remaining" times are not multiples of β once the
/// clock advances, which would silently break Lemma 2's premise).
/// Constraint colors here are absolute times; in-transit holders may carry
/// weights other than `beta`.
pub fn smallest_valid_multiple(beta: Weight, after: Time, constraints: &[ColorConstraint]) -> Time {
    smallest_valid_multiple_into(beta, after, constraints, &mut Vec::new())
}

/// [`smallest_valid_multiple`] with a caller-provided scratch buffer for
/// the forbidden-multiple set (cleared before use) — the allocation-free
/// variant for the schedule hot path.
pub fn smallest_valid_multiple_into(
    beta: Weight,
    after: Time,
    constraints: &[ColorConstraint],
    forbidden: &mut Vec<Time>,
) -> Time {
    assert!(beta >= 1, "beta must be positive");
    forbidden.clear();
    for c in constraints {
        // Multiples k with |k*beta - color| < weight.
        let k_low = (c.color + 1).saturating_sub(c.weight).div_ceil(beta);
        let k_high = (c.color + c.weight - 1) / beta;
        for k in k_low..=k_high {
            forbidden.push(k);
        }
    }
    forbidden.sort_unstable();
    forbidden.dedup();
    let mut k: Time = after / beta + 1;
    for &f in forbidden.iter() {
        match f.cmp(&k) {
            std::cmp::Ordering::Less => continue,
            std::cmp::Ordering::Equal => k += 1,
            std::cmp::Ordering::Greater => break,
        }
    }
    k * beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn c(color: Time, weight: Weight) -> ColorConstraint {
        ColorConstraint::new(color, weight)
    }

    fn is_valid(color: Time, constraints: &[ColorConstraint]) -> bool {
        constraints
            .iter()
            .all(|x| color.abs_diff(x.color) >= x.weight)
    }

    #[test]
    fn empty_constraints_give_zero() {
        assert_eq!(smallest_valid_color(&[]), 0);
    }

    #[test]
    fn single_constraint_at_zero() {
        // Neighbor colored 0 with weight 3: smallest valid is 3.
        assert_eq!(smallest_valid_color(&[c(0, 3)]), 3);
    }

    #[test]
    fn fits_in_gap() {
        // Forbidden: [0,2] (0,w3) and [8,12] (10,w3). Gap at 3.
        assert_eq!(smallest_valid_color(&[c(0, 3), c(10, 3)]), 3);
    }

    #[test]
    fn overlapping_ranges_merge() {
        // (0,w4):[0,3]; (4,w3):[2,6]; (8,w2):[7,9] -> first free is 10.
        assert_eq!(smallest_valid_color(&[c(0, 4), c(4, 3), c(8, 2)]), 10);
    }

    #[test]
    fn zero_allowed_when_ranges_start_later() {
        assert_eq!(smallest_valid_color(&[c(5, 2)]), 0);
    }

    #[test]
    fn uniform_basic() {
        // beta=4, neighbors at 4 and 8: k=1,2 forbidden -> 12.
        assert_eq!(smallest_valid_color_uniform(4, &[4, 8]), 12);
        // No neighbors: smallest is beta itself.
        assert_eq!(smallest_valid_color_uniform(4, &[]), 4);
        // Neighbor at 0 (a current holder): k=0 forbidden anyway, k=1 ok...
        // |4 - 0| = 4 >= beta: valid.
        assert_eq!(smallest_valid_color_uniform(4, &[0]), 4);
    }

    #[test]
    fn uniform_rounds_non_multiples() {
        // beta=4, neighbor colored 6 (not a multiple): multiples 4 and 8
        // are both within distance < 4 -> first valid is 12.
        assert_eq!(smallest_valid_color_uniform(4, &[6]), 12);
    }

    #[test]
    fn uniform_beta_one_is_mex_from_one() {
        assert_eq!(smallest_valid_color_uniform(1, &[1, 2, 3]), 4);
        assert_eq!(smallest_valid_color_uniform(1, &[2, 3]), 1);
    }

    #[test]
    fn multiple_skips_forbidden_slots() {
        // beta=3; constraint (4, w2) forbids multiples in (2,6): k=1 (3)...
        // 3 is within |3-4|=1 < 2 -> forbidden; 6: |6-4|=2 >= 2 -> ok.
        assert_eq!(
            smallest_valid_multiple(3, 0, &[ColorConstraint::new(4, 2)]),
            6
        );
        assert_eq!(smallest_valid_multiple(3, 0, &[]), 3);
        // Heavy holder constraint at color 0 pushes past its weight.
        assert_eq!(
            smallest_valid_multiple(3, 0, &[ColorConstraint::new(0, 7)]),
            9
        );
    }

    proptest! {
        /// smallest_valid_multiple returns a valid positive multiple.
        #[test]
        fn multiple_is_valid(
            beta in 1u64..8,
            raw in proptest::collection::vec((0u64..60, 1u64..12), 0..10),
        ) {
            let constraints: Vec<ColorConstraint> =
                raw.iter().map(|&(col, w)| c(col, w)).collect();
            let color = smallest_valid_multiple(beta, 0, &constraints);
            prop_assert_eq!(color % beta, 0);
            prop_assert!(color >= beta);
            prop_assert!(is_valid(color, &constraints));
            // Minimality among multiples.
            let mut k = color / beta;
            while k > 1 {
                k -= 1;
                prop_assert!(!is_valid(k * beta, &constraints));
            }
        }

        /// The returned color is valid and within the Lemma 1 bound.
        #[test]
        fn lemma1_holds(raw in proptest::collection::vec((0u64..200, 1u64..20), 0..20)) {
            let constraints: Vec<ColorConstraint> =
                raw.iter().map(|&(col, w)| c(col, w)).collect();
            let color = smallest_valid_color(&constraints);
            prop_assert!(is_valid(color, &constraints));
            prop_assert!(color <= lemma1_bound(&constraints));
            // Minimality: nothing smaller is valid.
            for smaller in color.saturating_sub(3)..color {
                prop_assert!(!is_valid(smaller, &constraints));
            }
        }

        /// Lemma 2: multiple of beta, >= beta, valid, and <= Γ = beta * degree
        /// when all neighbor colors are multiples of beta.
        #[test]
        fn lemma2_holds(beta in 1u64..12, ks in proptest::collection::vec(0u64..15, 0..12)) {
            let taken: Vec<Time> = ks.iter().map(|&k| k * beta).collect();
            let color = smallest_valid_color_uniform(beta, &taken);
            prop_assert_eq!(color % beta, 0);
            prop_assert!(color >= beta);
            for &t in &taken {
                prop_assert!(color.abs_diff(t) >= beta);
            }
            // Γ = beta * number of neighbors (all edges weigh beta). The
            // smallest valid multiple skips at most one slot per neighbor
            // starting from slot 1, i.e. c <= Γ + β (a conservative reading
            // of Lemma 2's c <= Γ that also covers the corner case of a
            // single neighbor colored exactly β, where no smaller positive
            // multiple is valid).
            let gamma = beta * taken.len() as u64;
            prop_assert!(color <= gamma + beta);
        }
    }
}
