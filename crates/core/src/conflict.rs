//! Incrementally-maintained conflict structure of the extended
//! dependency graph `H'_t` (Section III-B), driven by the kernel's
//! [`dtm_sim::StepEffects`] deltas.
//!
//! [`crate::constraints_for`] / [`crate::extended_degrees`] recompute a
//! transaction's conflict neighborhood — a requester-set union plus one
//! `network.distance` query per conflicting pair — from scratch on every
//! call. `H'_t` evolves by small deltas per step (arrivals add a
//! vertex and its edges, commits/aborts delete them, deliveries only
//! move objects), so [`ConflictCache`] maintains the pairwise structure
//! across steps instead, under the same refresh-fold discipline as
//! [`crate::FixedCache`]:
//!
//! * `fx.arrived` — each arrival gets a cache entry; its conflict edges
//!   are found through the per-object requester index
//!   ([`SystemView::for_each_requester`]) and the home-to-home distance
//!   of each pair is computed **once** and memoized on both endpoints.
//!   Two same-window arrivals are linked when the later one is folded
//!   (the earlier one is already in the cache by then), so fold order —
//!   `fx.arrived` order — does not leave dangling half-edges.
//! * `fx.removed()` — the entry is deleted and the transaction is
//!   unlinked from every neighbor's edge list.
//! * deliveries/departures — no cache impact: object positions enter
//!   constraints only through the per-query holder pass, which reads
//!   the view fresh (the "current transaction" `Z_t(o)` constraints are
//!   O(k) per query, not worth caching).
//!
//! Scheduled times are likewise read fresh at query time, so
//! `fx.scheduled` needs no folding here: the cached state is exactly
//! the conflict *topology* plus distances, both immutable for a live
//! transaction's lifetime.
//!
//! **Determinism.** Edge lists are kept sorted by transaction id, so
//! [`ConflictCache::constraints_into`] emits constraints in the same
//! id order as [`crate::constraints_for`]'s `conflicting_live` scan —
//! byte-identical schedules, pinned by the golden traces and the
//! equivalence tests below.
//!
//! **Boundedness (open-system audit).** Entries leave via
//! `fx.removed()` as transactions commit or abort; edges are removed
//! with either endpoint. The cache is O(live set + live conflict
//! edges) no matter how many transactions stream through.

use crate::coloring::ColorConstraint;
use crate::dependency::{constraints_for, extended_degrees, ExtendedDegrees};
use dtm_graph::{NodeId, Weight};
use dtm_model::{Time, Transaction, TxnId};
use dtm_sim::SystemView;
use std::collections::{BTreeMap, VecDeque};

/// Debug-build divergence checks (incremental state versus a full
/// rescan) run on every `DIVERGENCE_SAMPLE_PERIOD`-th refresh rather
/// than every step: the full rescan is O(live²) and made debug-mode
/// streaming tests pay it per tick. Shared with [`crate::FixedCache`].
#[cfg_attr(not(debug_assertions), allow(dead_code))] // referenced only by the debug-build divergence checks
pub(crate) const DIVERGENCE_SAMPLE_PERIOD: u64 = 64;

/// One live transaction's cached neighborhood in `H'_t`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CacheEntry {
    /// The transaction's home node (memoized for rebuild comparisons).
    home: NodeId,
    /// Conflicting live transactions, sorted by id, with the memoized
    /// **raw** home-to-home distance (the `.max(1)` same-home floor is
    /// applied at query time; the distributed protocol's conflict
    /// radius wants the raw value).
    // dtm-lint: bounded -- one edge per live conflicting txn; remove() erases both directions
    edges: Vec<(TxnId, Weight)>,
}

/// Dense id-window map from [`TxnId`] to [`CacheEntry`].
///
/// Transaction ids are handed out as a monotonically increasing
/// sequence and the live set is a bounded sliding window of that
/// sequence, so the refresh hot path does not need an ordered tree:
/// entries live in a `VecDeque` indexed by `id - base`, making every
/// get/insert/remove O(1). Dead slots at the front are trimmed on
/// removal, so memory stays O(live id window) no matter how many
/// transactions stream through. Iteration (and therefore the debug
/// divergence comparison) walks the window front-to-back — ascending
/// id order, same as the `BTreeMap` this replaces.
#[derive(Clone, Debug, Default)]
struct EntrySlab {
    /// TxnId of `slots[0]`; meaningful only while `slots` is non-empty.
    base: u64,
    // dtm-lint: bounded -- O(live id window): dead slots trim from the front on removal
    slots: VecDeque<Option<CacheEntry>>,
    len: usize,
}

impl EntrySlab {
    fn get(&self, id: TxnId) -> Option<&CacheEntry> {
        let idx = id.0.checked_sub(self.base)? as usize;
        self.slots.get(idx)?.as_ref()
    }

    fn get_mut(&mut self, id: TxnId) -> Option<&mut CacheEntry> {
        let idx = id.0.checked_sub(self.base)? as usize;
        self.slots.get_mut(idx)?.as_mut()
    }

    fn insert(&mut self, id: TxnId, entry: CacheEntry) {
        if self.slots.is_empty() {
            self.base = id.0;
        } else if id.0 < self.base {
            // Out-of-order low id (map-backed rebuilds): grow the front.
            for _ in id.0..self.base {
                self.slots.push_front(None);
            }
            self.base = id.0;
        }
        let idx = (id.0 - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].replace(entry).is_none() {
            self.len += 1;
        }
    }

    fn remove(&mut self, id: TxnId) -> Option<CacheEntry> {
        let idx = id.0.checked_sub(self.base)? as usize;
        let entry = self.slots.get_mut(idx)?.take()?;
        self.len -= 1;
        // Trim the dead front so `base` tracks the live window.
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        Some(entry)
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.base = 0;
        self.len = 0;
    }

    /// Entries in ascending id order.
    fn iter(&self) -> impl Iterator<Item = (TxnId, &CacheEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (TxnId(self.base + i as u64), e)))
    }
}

/// Window placement (`base`, dead-slot padding) is an implementation
/// detail: two slabs are equal when they hold the same entries.
impl PartialEq for EntrySlab {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for EntrySlab {}

/// Incrementally-maintained conflict pairs + memoized distances for all
/// live transactions. See the module docs for the delta discipline.
#[derive(Clone, Debug, Default)]
pub struct ConflictCache {
    entries: EntrySlab,
    init: bool,
    /// Refresh counter driving the sampled debug divergence check.
    refreshes: u64,
    /// Scratch pair buffer reused across arrival folds.
    // dtm-lint: bounded -- cleared every arrival fold; capacity plateaus at the largest neighborhood
    scratch: Vec<(TxnId, Weight)>,
    /// Edge-list allocations recycled from removed entries into new
    /// arrivals, so a warmed cache folds deltas without allocating.
    // dtm-lint: bounded -- recycled edge lists, at most one per removed live entry
    pool: Vec<Vec<(TxnId, Weight)>>,
}

impl ConflictCache {
    /// Bring the cache up to date with `view`. Must be called once per
    /// policy step, *before* any early-return the policy takes
    /// (otherwise a step's effects are silently dropped). Arena-backed
    /// views fold the [`dtm_sim::StepEffects`] deltas; map-backed views
    /// (no effects) fall back to a full rebuild.
    // dtm-lint: hot-path
    pub fn refresh(&mut self, view: &SystemView<'_>) {
        match view.step_effects() {
            Some(fx) if self.init => {
                // Removals first: a removed transaction has already left
                // the requester index, so the arrivals below never see it.
                for id in fx.removed() {
                    self.remove(id);
                }
                for &id in &fx.arrived {
                    self.add_arrival(view, id);
                }
            }
            _ => self.rebuild(view),
        }
        self.refreshes = self.refreshes.wrapping_add(1);
        #[cfg(debug_assertions)]
        if self.refreshes.is_multiple_of(DIVERGENCE_SAMPLE_PERIOD) {
            self.assert_matches_rescan(view);
        }
    }

    /// Constraints and `H'_t` degree statistics for `txn` in one pass
    /// over its cached edges — the fused, allocation-free equivalent of
    /// [`crate::constraints_for`] followed by
    /// [`crate::extended_degrees`]. Constraints land in `out` (cleared
    /// first) in the exact order of the uncached path: conflict
    /// constraints in neighbor-id order, then holder constraints in
    /// object order.
    // dtm-lint: hot-path
    pub fn constraints_into(
        &self,
        view: &SystemView<'_>,
        txn: &Transaction,
        extra_colored: &BTreeMap<TxnId, Time>,
        out: &mut Vec<ColorConstraint>,
    ) -> ExtendedDegrees {
        out.clear();
        let now = view.now;
        let mut deg = ExtendedDegrees::default();
        let Some(entry) = self.entries.get(txn.id) else {
            // A query for a transaction the refresh never saw: fall back
            // to the scan path (correct, just slower).
            debug_assert!(false, "constraints_into for uncached {}", txn.id);
            out.extend(constraints_for(view, txn, extra_colored));
            return extended_degrees(view, txn);
        };
        for &(nb, d) in &entry.edges {
            let Some(other) = view.live(nb) else {
                debug_assert!(false, "cached edge {} -> dead {}", txn.id, nb);
                continue;
            };
            let weight = d.max(1);
            deg.degree += 1;
            deg.weighted_degree += weight;
            let color = match (other.scheduled, extra_colored.get(&nb)) {
                (Some(t), _) => t.saturating_sub(now),
                (None, Some(&c)) => c,
                (None, None) => continue, // uncolored: constrains degrees only
            };
            out.push(ColorConstraint::new(color, weight));
        }
        for o in txn.objects() {
            if let Some(state) = view.object(o) {
                let w = state.effective_distance(view.network, txn.home, now);
                if w > 0 {
                    out.push(ColorConstraint::new(0, w));
                    deg.degree += 1;
                    deg.weighted_degree += w;
                }
            }
        }
        deg
    }

    /// Conflict-set summary for the distributed protocol's discovery
    /// phase: `(number of conflicting live transactions, furthest raw
    /// home-to-home distance)`. `None` if `id` is not cached.
    pub fn conflict_stats(&self, id: TxnId) -> Option<(usize, Weight)> {
        self.entries.get(id).map(|e| {
            let radius = e.edges.iter().map(|&(_, d)| d).max().unwrap_or(0);
            (e.edges.len(), radius)
        })
    }

    /// Number of cached live transactions (for boundedness assertions).
    pub fn len(&self) -> usize {
        self.entries.len
    }

    /// True when no transaction is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.len == 0
    }

    // dtm-lint: hot-path
    fn remove(&mut self, id: TxnId) {
        let Some(mut entry) = self.entries.remove(id) else {
            return;
        };
        for &(nb, _) in &entry.edges {
            if let Some(e) = self.entries.get_mut(nb) {
                if let Ok(i) = e.edges.binary_search_by_key(&id, |&(t, _)| t) {
                    e.edges.remove(i);
                }
            }
        }
        entry.edges.clear();
        self.pool.push(entry.edges);
    }

    // dtm-lint: hot-path
    fn add_arrival(&mut self, view: &SystemView<'_>, id: TxnId) {
        let Some(lt) = view.live(id) else {
            // Arrived and removed inside one window cannot happen under
            // engine phase order (generate precedes execute); tolerate
            // it for hand-driven harnesses.
            return;
        };
        let home = lt.txn.home;
        let mut pairs = std::mem::take(&mut self.scratch);
        pairs.clear();
        for o in lt.txn.objects() {
            view.for_each_requester(o, |r| {
                if r != id {
                    pairs.push((r, 0));
                }
            });
        }
        pairs.sort_unstable_by_key(|&(r, _)| r);
        pairs.dedup_by_key(|p| p.0);
        // Keep only neighbors already cached (a same-window co-arrival
        // ordered after `id` links the pair when its own fold runs),
        // memoizing the raw pair distance while the entry is at hand.
        pairs.retain_mut(|p| match self.entries.get(p.0) {
            Some(e) => {
                p.1 = view.network.distance(home, e.home);
                true
            }
            None => false,
        });
        for &(r, d) in &pairs {
            let e = self.entries.get_mut(r).expect("retained to cached"); // dtm-lint: allow(C1) -- pairs was filtered to cached ids just above
            if let Err(i) = e.edges.binary_search_by_key(&id, |&(t, _)| t) {
                e.edges.insert(i, (id, d));
            }
        }
        let mut edges = self.pool.pop().unwrap_or_default();
        edges.extend_from_slice(&pairs);
        pairs.clear();
        self.scratch = pairs;
        self.entries.insert(id, CacheEntry { home, edges });
    }

    fn rebuild(&mut self, view: &SystemView<'_>) {
        self.entries.clear();
        for lt in view.live_txns() {
            let edges = view
                .conflicting_live(&lt.txn)
                .iter()
                .map(|other| {
                    (
                        other.txn.id,
                        view.network.distance(lt.txn.home, other.txn.home),
                    )
                })
                .collect();
            self.entries.insert(
                lt.txn.id,
                CacheEntry {
                    home: lt.txn.home,
                    edges,
                },
            );
        }
        self.init = true;
    }

    /// Debug-only: the incremental state must equal a from-scratch scan.
    #[cfg(debug_assertions)]
    fn assert_matches_rescan(&self, view: &SystemView<'_>) {
        let mut fresh = ConflictCache::default();
        fresh.rebuild(view);
        debug_assert_eq!(
            self.entries, fresh.entries,
            "incremental conflict cache diverged"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_model::{ObjectId, ObjectInfo};
    use dtm_sim::{LiveTxn, ObjectPlace, ObjectState, RuntimeState};

    fn mk(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    fn insert_object(state: &mut RuntimeState, id: u32, node: u32) {
        state.insert_object(ObjectState {
            info: ObjectInfo {
                id: ObjectId(id),
                origin: NodeId(node),
                created_at: 0,
            },
            place: ObjectPlace::At(NodeId(node)),
            last_holder: None,
        });
    }

    /// Arrive `txn` the way the engine does: into the arena + effects.
    fn arrive(state: &mut RuntimeState, txn: Transaction) {
        let id = txn.id;
        state.insert_txn(LiveTxn {
            txn,
            scheduled: None,
        });
        state.effects_mut().arrived.push(id);
    }

    /// The cached constraints/degrees must equal the scan path for every
    /// live transaction, for any `extra_colored`.
    fn assert_equiv(cache: &ConflictCache, view: &SystemView<'_>, extra: &BTreeMap<TxnId, Time>) {
        let mut out = Vec::new();
        for lt in view.live_txns() {
            let deg = cache.constraints_into(view, &lt.txn, extra, &mut out);
            assert_eq!(
                out,
                constraints_for(view, &lt.txn, extra),
                "constraints diverge for {}",
                lt.txn.id
            );
            assert_eq!(
                deg,
                extended_degrees(view, &lt.txn),
                "degrees diverge for {}",
                lt.txn.id
            );
        }
    }

    /// Delta-vs-rescan over a window mixing schedule, commit, abort and
    /// delivery — the [`crate::FixedCache`] `fixed_cache_follows_deltas`
    /// suite, for conflict structure.
    #[test]
    fn conflict_cache_follows_deltas() {
        let net = topology::line(8);
        let mut state = RuntimeState::new();
        for (o, node) in [(0u32, 0u32), (1, 4), (2, 7)] {
            insert_object(&mut state, o, node);
        }
        let mut cache = ConflictCache::default();

        // Window 1: four arrivals, pairwise overlaps through objects.
        state.effects_mut().clear();
        arrive(&mut state, mk(0, 1, &[0, 1]));
        arrive(&mut state, mk(1, 6, &[1]));
        arrive(&mut state, mk(2, 3, &[0, 2]));
        arrive(&mut state, mk(3, 7, &[2]));
        let view = SystemView::from_state(1, &net, &state);
        cache.refresh(&view);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.conflict_stats(TxnId(0)), Some((2, 5))); // 1 (d=5), 2 (d=2)
        assert_eq!(cache.conflict_stats(TxnId(3)), Some((1, 4))); // 2 (d=4)
        assert_equiv(&cache, &view, &BTreeMap::new());
        // Same-step partial coloring (the greedy pass mid-flight).
        let extra: BTreeMap<TxnId, Time> = [(TxnId(1), 9)].into();
        assert_equiv(&cache, &view, &extra);

        // Window 2: schedule 0 and 1; commit 1; abort 3; move object 0
        // (deliveries must not disturb the pair structure).
        state.effects_mut().clear();
        state.txn_mut(TxnId(0)).unwrap().scheduled = Some(6);
        state.effects_mut().scheduled.push((TxnId(0), 6));
        state.txn_mut(TxnId(1)).unwrap().scheduled = Some(4);
        state.effects_mut().scheduled.push((TxnId(1), 4));
        state.remove_txn(TxnId(1));
        state.effects_mut().committed.push(TxnId(1));
        state.remove_txn(TxnId(3));
        state.effects_mut().aborted.push(TxnId(3));
        state.object_mut(ObjectId(0)).unwrap().place = ObjectPlace::Hop {
            from: NodeId(0),
            next: NodeId(1),
            arrive: 3,
        };
        state.effects_mut().departed.push(dtm_sim::Departure {
            object: ObjectId(0),
            from: NodeId(0),
            to: NodeId(1),
            arrive: 3,
        });
        let view = SystemView::from_state(2, &net, &state);
        cache.refresh(&view);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.conflict_stats(TxnId(0)), Some((1, 2)));
        assert_eq!(cache.conflict_stats(TxnId(1)), None);
        assert_equiv(&cache, &view, &BTreeMap::new());

        // Window 3: a new arrival conflicting with both survivors.
        state.effects_mut().clear();
        arrive(&mut state, mk(4, 5, &[0, 2]));
        let view = SystemView::from_state(3, &net, &state);
        cache.refresh(&view);
        assert_eq!(cache.conflict_stats(TxnId(4)), Some((2, 4)));
        assert_equiv(&cache, &view, &BTreeMap::new());
    }

    /// Scheduled-then-removed within one window: the removal wins and
    /// the neighbors' edge lists are clean.
    #[test]
    fn scheduled_then_removed_in_one_window() {
        let net = topology::line(8);
        let mut state = RuntimeState::new();
        insert_object(&mut state, 0, 0);
        let mut cache = ConflictCache::default();
        state.effects_mut().clear();
        arrive(&mut state, mk(0, 2, &[0]));
        arrive(&mut state, mk(1, 5, &[0]));
        let view = SystemView::from_state(1, &net, &state);
        cache.refresh(&view);
        assert_eq!(cache.conflict_stats(TxnId(0)), Some((1, 3)));

        state.effects_mut().clear();
        state.txn_mut(TxnId(1)).unwrap().scheduled = Some(2);
        state.effects_mut().scheduled.push((TxnId(1), 2));
        state.remove_txn(TxnId(1));
        state.effects_mut().committed.push(TxnId(1));
        let view = SystemView::from_state(2, &net, &state);
        cache.refresh(&view);
        assert_eq!(cache.conflict_stats(TxnId(0)), Some((0, 0)));
        assert_eq!(cache.conflict_stats(TxnId(1)), None);
        assert_equiv(&cache, &view, &BTreeMap::new());
    }

    /// Map-backed views carry no effects: every refresh is a rebuild,
    /// and the cache still answers exactly like the scan path.
    #[test]
    fn map_backed_fallback_rebuilds() {
        let net = topology::line(8);
        let mut live = BTreeMap::new();
        for t in [mk(0, 1, &[0]), mk(1, 6, &[0]), mk(2, 3, &[1])] {
            live.insert(
                t.id,
                LiveTxn {
                    txn: t,
                    scheduled: None,
                },
            );
        }
        let mut objects = BTreeMap::new();
        for (o, node) in [(0u32, 0u32), (1, 4)] {
            objects.insert(
                ObjectId(o),
                ObjectState {
                    info: ObjectInfo {
                        id: ObjectId(o),
                        origin: NodeId(node),
                        created_at: 0,
                    },
                    place: ObjectPlace::At(NodeId(node)),
                    last_holder: None,
                },
            );
        }
        let view = SystemView::new(0, &net, &live, &objects);
        assert!(view.step_effects().is_none());
        let mut cache = ConflictCache::default();
        cache.refresh(&view);
        assert_eq!(cache.conflict_stats(TxnId(0)), Some((1, 5)));
        assert_equiv(&cache, &view, &BTreeMap::new());
        // Mutate the maps directly (no effects recorded): the next
        // refresh still lands on the right answer via rebuild.
        live.remove(&TxnId(1));
        let view = SystemView::new(1, &net, &live, &objects);
        cache.refresh(&view);
        assert_eq!(cache.conflict_stats(TxnId(0)), Some((0, 0)));
        assert_equiv(&cache, &view, &BTreeMap::new());
    }

    /// Same-window co-arrivals are linked exactly once, whichever fold
    /// order the effects batch puts them in.
    #[test]
    fn co_arrivals_link_once() {
        let net = topology::line(8);
        let mut state = RuntimeState::new();
        insert_object(&mut state, 0, 0);
        let mut cache = ConflictCache::default();
        state.effects_mut().clear();
        // Three conflicting co-arrivals in one batch.
        arrive(&mut state, mk(0, 1, &[0]));
        arrive(&mut state, mk(1, 3, &[0]));
        arrive(&mut state, mk(2, 6, &[0]));
        let view = SystemView::from_state(1, &net, &state);
        cache.refresh(&view);
        for id in 0..3 {
            assert_eq!(
                cache.conflict_stats(TxnId(id)).map(|(n, _)| n),
                Some(2),
                "txn {id} links both co-arrivals exactly once"
            );
        }
        assert_equiv(&cache, &view, &BTreeMap::new());
    }
}
