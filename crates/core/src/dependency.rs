//! The extended dependency graph `H'_t` (Section III-B).
//!
//! Nodes of `H'_t` are the live transactions `T_t` plus, for each object,
//! its *current transaction* `Z_t(o)` — the last holder if the object is
//! resting, or a temporary transaction at the object's in-transit position
//! (an artificial node one residual-hop from the next node on its path).
//! Edges connect conflicting transactions, weighted by the distance
//! between their nodes in `G`; current transactions carry color 0 (they
//! execute "now").
//!
//! This module materializes exactly what the greedy scheduler needs: for a
//! transaction to be colored, the set of [`ColorConstraint`]s induced by
//! `H'_t`, plus the degree statistics `Γ'_t` and `Δ'_t` used by the
//! Theorem 1 / Theorem 2 bounds.
//!
//! One deviation from the paper's notation: a conflict edge between two
//! transactions at the *same* node would have weight 0, but exclusive
//! object access still forces their execution steps apart; such edges are
//! assigned weight 1 (the serialization step enforced by the execution
//! engine).

use crate::coloring::ColorConstraint;
use dtm_model::{Time, Transaction, TxnId};
use dtm_sim::SystemView;
use std::collections::BTreeMap;

/// Degree statistics of a transaction in `H'_t`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtendedDegrees {
    /// `Δ'_t(T)`: number of incident edges.
    pub degree: u64,
    /// `Γ'_t(T)`: sum of incident edge weights.
    pub weighted_degree: u64,
}

impl ExtendedDegrees {
    /// Theorem 1's execution-offset bound `2Γ' - Δ'`.
    pub fn theorem1_bound(&self) -> Time {
        2 * self.weighted_degree - self.degree
    }
}

/// Build the coloring constraints for `txn` at the view's current time.
///
/// Constraint sources:
/// * every **scheduled live** transaction conflicting with `txn`
///   (color = remaining time until its execution, weight = distance
///   between homes, at least 1);
/// * every transaction in `extra_colored` (same-step transactions already
///   colored by the greedy pass, with their relative colors);
/// * for each object of `txn`, its **current transaction** `Z_t(o)`:
///   color 0, weight = the object's effective distance (residual transit
///   time plus distance from its next node to `txn.home`). A weight-0 case
///   (object resting at `txn.home`) imposes no constraint.
pub fn constraints_for(
    view: &SystemView<'_>,
    txn: &Transaction,
    extra_colored: &BTreeMap<TxnId, Time>,
) -> Vec<ColorConstraint> {
    let now = view.now;
    let mut constraints = Vec::new();
    // `conflicting_live` answers from the per-object requester index when
    // the view is arena-backed (no full live-set rescan) and from a linear
    // scan otherwise; both return the same transactions in id order.
    for other in view.conflicting_live(txn) {
        let color = match (other.scheduled, extra_colored.get(&other.txn.id)) {
            (Some(t), _) => t.saturating_sub(now),
            (None, Some(&c)) => c,
            (None, None) => continue, // uncolored: constrained later, not now
        };
        let weight = view.network.distance(txn.home, other.txn.home).max(1);
        constraints.push(ColorConstraint::new(color, weight));
    }
    for o in txn.objects() {
        if let Some(state) = view.object(o) {
            let weight = state.effective_distance(view.network, txn.home, now);
            if weight > 0 {
                constraints.push(ColorConstraint::new(0, weight));
            }
        }
    }
    constraints
}

/// Degree statistics of `txn` in the full `H'_t` (edges to *all*
/// conflicting live transactions — colored or not — plus its objects'
/// current transactions). Used to check the Theorem 1 / 2 bounds.
pub fn extended_degrees(view: &SystemView<'_>, txn: &Transaction) -> ExtendedDegrees {
    let mut deg = ExtendedDegrees::default();
    for other in view.conflicting_live(txn) {
        deg.degree += 1;
        deg.weighted_degree += view.network.distance(txn.home, other.txn.home).max(1);
    }
    for o in txn.objects() {
        if let Some(state) = view.object(o) {
            let w = state.effective_distance(view.network, txn.home, view.now);
            if w > 0 {
                deg.degree += 1;
                deg.weighted_degree += w;
            }
        }
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{ObjectId, ObjectInfo};
    use dtm_sim::{LiveTxn, ObjectPlace, ObjectState};

    fn obj_at(id: u32, node: u32) -> (ObjectId, ObjectState) {
        (
            ObjectId(id),
            ObjectState {
                info: ObjectInfo {
                    id: ObjectId(id),
                    origin: NodeId(node),
                    created_at: 0,
                },
                place: ObjectPlace::At(NodeId(node)),
                last_holder: None,
            },
        )
    }

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn object_distance_becomes_holder_constraint() {
        let net = topology::line(8);
        let live = BTreeMap::new();
        let objects: BTreeMap<_, _> = [obj_at(0, 1)].into();
        let view = SystemView::new(5, &net, &live, &objects);
        let t = txn(0, 4, &[0]);
        let cs = constraints_for(&view, &t, &BTreeMap::new());
        assert_eq!(cs, vec![ColorConstraint::new(0, 3)]);
        let d = extended_degrees(&view, &t);
        assert_eq!(d.degree, 1);
        assert_eq!(d.weighted_degree, 3);
        assert_eq!(d.theorem1_bound(), 5);
    }

    #[test]
    fn local_object_imposes_nothing() {
        let net = topology::line(8);
        let live = BTreeMap::new();
        let objects: BTreeMap<_, _> = [obj_at(0, 4)].into();
        let view = SystemView::new(0, &net, &live, &objects);
        let t = txn(0, 4, &[0]);
        assert!(constraints_for(&view, &t, &BTreeMap::new()).is_empty());
    }

    #[test]
    fn scheduled_conflict_uses_remaining_time() {
        let net = topology::line(8);
        let other = txn(1, 6, &[0]);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: other,
                scheduled: Some(9),
            },
        );
        let objects: BTreeMap<_, _> = [obj_at(0, 6)].into();
        let view = SystemView::new(4, &net, &live, &objects);
        let t = txn(0, 2, &[0]);
        let cs = constraints_for(&view, &t, &BTreeMap::new());
        // Conflict with T1: color 9-4=5, weight d(2,6)=4.
        // Holder: object at n6, weight d(6,2)=4, color 0.
        assert!(cs.contains(&ColorConstraint::new(5, 4)));
        assert!(cs.contains(&ColorConstraint::new(0, 4)));
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn same_home_conflict_gets_weight_one() {
        let net = topology::line(8);
        let other = txn(1, 2, &[0]);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: other,
                scheduled: Some(0),
            },
        );
        let objects: BTreeMap<_, _> = [obj_at(0, 2)].into();
        let view = SystemView::new(0, &net, &live, &objects);
        let t = txn(0, 2, &[0]);
        let cs = constraints_for(&view, &t, &BTreeMap::new());
        assert_eq!(cs, vec![ColorConstraint::new(0, 1)]);
    }

    #[test]
    fn in_transit_object_pays_residual() {
        let net = topology::line(8);
        let live = BTreeMap::new();
        let mut objects = BTreeMap::new();
        objects.insert(
            ObjectId(0),
            ObjectState {
                info: ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(0),
                    created_at: 0,
                },
                place: ObjectPlace::Hop {
                    from: NodeId(2),
                    next: NodeId(3),
                    arrive: 12,
                },
                last_holder: None,
            },
        );
        let view = SystemView::new(10, &net, &live, &objects);
        let t = txn(0, 6, &[0]);
        let cs = constraints_for(&view, &t, &BTreeMap::new());
        // Residual 2 + distance(3, 6) = 3 -> weight 5.
        assert_eq!(cs, vec![ColorConstraint::new(0, 5)]);
    }

    #[test]
    fn extra_colored_same_step_counts() {
        let net = topology::line(8);
        let other = txn(1, 5, &[0]);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: other,
                scheduled: None,
            },
        );
        let objects: BTreeMap<_, _> = [obj_at(0, 5)].into();
        let view = SystemView::new(0, &net, &live, &objects);
        let t = txn(0, 2, &[0]);
        // Without the extra coloring T1 imposes nothing...
        assert_eq!(constraints_for(&view, &t, &BTreeMap::new()).len(), 1);
        // ...with it, it does.
        let extra: BTreeMap<TxnId, Time> = [(TxnId(1), 7)].into();
        let cs = constraints_for(&view, &t, &extra);
        assert!(cs.contains(&ColorConstraint::new(7, 3)));
    }

    #[test]
    fn non_conflicting_txns_ignored() {
        let net = topology::line(8);
        let other = txn(1, 5, &[1]);
        let mut live = BTreeMap::new();
        live.insert(
            TxnId(1),
            LiveTxn {
                txn: other,
                scheduled: Some(3),
            },
        );
        let objects: BTreeMap<_, _> = [obj_at(0, 2), obj_at(1, 5)].into();
        let view = SystemView::new(0, &net, &live, &objects);
        let t = txn(0, 2, &[0]);
        assert!(constraints_for(&view, &t, &BTreeMap::new()).is_empty());
        assert_eq!(extended_degrees(&view, &t).degree, 0);
    }
}

#[cfg(test)]
mod read_mode_tests {

    use dtm_graph::topology;
    use dtm_graph::NodeId;
    use dtm_model::TxnId;
    use dtm_model::{AccessMode, Instance, ObjectId, ObjectInfo, TraceSource, Transaction};
    use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};

    /// Two *readers* of the same single-copy object must still serialize:
    /// the object physically visits one node at a time. This guards the
    /// scheduler against using the read/write-aware conflict notion where
    /// the paper's object-intersection notion is required.
    #[test]
    fn two_readers_still_serialize() {
        let net = topology::line(6);
        let reader = |id: u64, home: u32| {
            Transaction::with_modes(
                TxnId(id),
                NodeId(home),
                [(ObjectId(0), AccessMode::Read)],
                0,
            )
        };
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![reader(0, 2), reader(1, 4)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            crate::greedy::GreedyPolicy::new(),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, 2);
        // Distinct commit times: physical serialization happened.
        let times: Vec<_> = res.commits.values().collect();
        assert_ne!(times[0], times[1]);
    }
}
