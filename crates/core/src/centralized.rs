//! Section III-E — the simple centralized online scheduler.
//!
//! The greedy schedules of Section III assume a central authority with
//! instant knowledge. The paper's practical remedy for small-diameter
//! graphs: a designated coordinator collects all information as it is
//! produced, so each scheduling decision pays a round trip — the upper
//! bounds scale by `O(D)` (`O(log n)` on the architectures of Section
//! III). This wrapper charges exactly that: a transaction arriving at
//! `t` is released to the inner policy at
//! `t + d(home, coordinator) + ecc(coordinator)` (report + broadcast).

use dtm_graph::{NodeId, Weight};
use dtm_model::{Schedule, Time, TxnId};
use dtm_sim::{SchedulingPolicy, SystemView};
use std::collections::BTreeMap;

/// Wraps any policy, delaying every arrival by the coordinator round trip.
#[derive(Clone)]
pub struct CentralizedWrapper<P> {
    inner: P,
    coordinator: NodeId,
    ecc: Option<Weight>,
    // dtm-lint: bounded -- delayed arrivals; every entry with key <= now is drained each step
    pending: BTreeMap<Time, Vec<TxnId>>,
}

impl<P: SchedulingPolicy> CentralizedWrapper<P> {
    /// Wrap `inner` with coordinator node `coordinator`.
    pub fn new(inner: P, coordinator: NodeId) -> Self {
        CentralizedWrapper {
            inner,
            coordinator,
            ecc: None,
            pending: BTreeMap::new(),
        }
    }
}

impl<P: SchedulingPolicy> SchedulingPolicy for CentralizedWrapper<P> {
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        let coordinator = self.coordinator;
        let ecc = *self.ecc.get_or_insert_with(|| {
            (0..view.network.n())
                .map(|v| view.network.distance(coordinator, NodeId::from_index(v)))
                .max()
                .unwrap_or(0)
        });
        let now = view.now;
        for &id in arrivals {
            let home = view.live(id).expect("arrival is live").txn.home; // dtm-lint: allow(C1) -- engine contract: every id in `arrivals` is live this step
            let release = now + view.network.distance(home, coordinator) + ecc;
            self.pending.entry(release).or_default().push(id);
        }
        let due: Vec<Time> = self.pending.range(..=now).map(|(&t, _)| t).collect();
        let mut released = Vec::new();
        for t in due {
            released.extend(self.pending.remove(&t).unwrap_or_default());
        }
        // Drop transactions that somehow disappeared (committed/aborted).
        released.retain(|id| view.live(*id).is_some());
        released.sort_unstable();
        self.inner.step(view, &released)
    }

    fn name(&self) -> String {
        format!("centralized({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPolicy;
    use dtm_graph::topology;
    use dtm_model::{
        Instance, ObjectId, ObjectInfo, TraceSource, Transaction, WorkloadGenerator, WorkloadSpec,
    };
    use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};

    #[test]
    fn arrivals_delayed_by_round_trip() {
        let net = topology::line(8);
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(4),
                created_at: 0,
            }],
            vec![Transaction::new(TxnId(0), NodeId(4), [ObjectId(0)], 0)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            CentralizedWrapper::new(GreedyPolicy::new(), NodeId(0)),
            EngineConfig::default(),
        );
        res.expect_ok();
        // Round trip: d(4, 0) = 4 report + ecc(0) = 7 broadcast = 11; the
        // object is local, so it commits right at release.
        assert_eq!(res.commits[&TxnId(0)], 11);
    }

    #[test]
    fn batch_workload_runs_clean() {
        let net = topology::clique(8);
        let inst = WorkloadGenerator::new(WorkloadSpec::batch_uniform(4, 2), 5).generate(&net);
        let n = inst.num_txns();
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            CentralizedWrapper::new(GreedyPolicy::new(), NodeId(0)),
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }

    #[test]
    fn makespan_dominates_uncoordinated_greedy() {
        let net = topology::clique(8);
        let make = || {
            TraceSource::new(
                WorkloadGenerator::new(WorkloadSpec::batch_uniform(4, 2), 5).generate(&net),
            )
        };
        let direct = run_policy(&net, make(), GreedyPolicy::new(), EngineConfig::default());
        let central = run_policy(
            &net,
            make(),
            CentralizedWrapper::new(GreedyPolicy::new(), NodeId(0)),
            EngineConfig::default(),
        );
        direct.expect_ok();
        central.expect_ok();
        assert!(central.metrics.makespan >= direct.metrics.makespan);
    }
}
