//! Algorithm 3 — the distributed bucket schedule (Section V).
//!
//! Decentralizes Algorithm 2 over a hierarchical sparse cover: partial
//! `i`-buckets live at cluster *leaders*; a new transaction
//!
//! 1. **discovers** the current positions of its objects (objects move at
//!    half speed — engine `speed_divisor = 2` — so a discovery message
//!    catches an object at distance `d` within `3d` steps, Section V);
//! 2. learns its conflicting transactions from the objects, giving the
//!    dependency radius `y` (max of object distance and conflict distance);
//! 3. **reports** to the leader of its lowest home cluster whose layer
//!    covers the `y`-neighborhood (one message over distance
//!    `d(home, leader)`);
//! 4. the leader places it into a partial `i`-bucket (same `F_𝒜` probe as
//!    Algorithm 2, leader-local contents);
//! 5. all partial `i`-buckets activate globally every `2^i` steps; each
//!    leader schedules its bucket and **notifies** the member homes /
//!    objects (the schedule starts after the farthest notification lands).
//!
//! Simulation fidelity note (documented in DESIGN.md): message *timing*
//! (discovery `3x`, report distance, notification distance) and the
//! half-speed object rule are modeled exactly and every message is
//! counted; leader-local *knowledge* is taken from the global state at
//! the leader's decision time. Sub-layer partition properties guarantee
//! non-interference in the paper (Lemma 6 / Corollary 1); here leaders
//! activating at the same step are processed in deterministic height
//! order, each seeing the previous leaders' output as fixed — the
//! centralized simulation of the same serialization.

use crate::conflict::ConflictCache;
use crate::viewctx::FixedCache;
use dtm_graph::{ClusterId, Graph, Network, SparseCover};
use dtm_model::{Schedule, Time, Transaction, TxnId};
use dtm_offline::BatchScheduler;
use dtm_sim::{EngineConfig, SchedulingPolicy, SystemView};
use dtm_telemetry::{Decision, DecisionKind, DecisionTraceHandle};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Observability for experiment E11.
#[derive(Clone, Debug, Default)]
pub struct DistStats {
    /// Total protocol messages (discovery round trips, conflict reports,
    /// leader reports, schedule notifications).
    pub messages: u64,
    /// Reports per cover layer.
    // dtm-lint: bounded -- keyed by cover layer; the sparse cover has O(log n) layers
    pub reports_per_layer: BTreeMap<u32, u64>,
    /// Partial-bucket level per transaction.
    // dtm-lint: bounded -- experiment-scoped stats (Retention::Full runs); streaming runs leave stats detached
    pub levels: BTreeMap<TxnId, u32>,
    /// Per-transaction protocol latency (arrival to report arrival).
    // dtm-lint: bounded -- experiment-scoped stats (Retention::Full runs); streaming runs leave stats detached
    pub report_latency: Vec<Time>,
}

/// A transaction in flight between arrival and its report reaching the
/// cluster leader.
#[derive(Clone, Debug)]
struct PendingReport {
    txn: Transaction,
    cluster: ClusterId,
    /// Object availability for the transaction's objects as observed at
    /// arrival time — the information the report physically carries.
    // dtm-lint: bounded -- one entry per object the txn touches, fixed at arrival
    snapshot: Vec<(dtm_model::ObjectId, (dtm_graph::NodeId, Time))>,
}

/// Algorithm 3, generic over the offline batch scheduler `𝒜`.
///
/// `Clone` (for [`dtm_sim::SchedulingPolicy::fork`] checkpoints)
/// captures the in-flight reports, partial buckets and caches; attached
/// stats/decision/counter handles are shared, not duplicated.
///
/// **Boundedness (open-system audit).** `reporting` entries are removed
/// when their arrival step is processed and `partials` drain at each
/// activation; the [`FixedCache`] tracks live scheduled transactions
/// only and the [`ConflictCache`] live conflict pairs only. Policy state
/// is O(live set + in-flight reports), safe for indefinite streaming
/// runs.
#[derive(Clone)]
pub struct DistributedBucketPolicy<A> {
    scheduler: A,
    cover: SparseCover,
    /// Copy of the network with doubled edge weights: all scheduling math
    /// runs against it so schedules stay feasible under the engine's
    /// half-speed objects (`speed_divisor = 2`).
    doubled: Network,
    max_level: Option<u32>,
    /// Reports arriving at their leaders, keyed by arrival time.
    // dtm-lint: bounded -- in-flight reports; every entry with key <= now drains each step
    reporting: BTreeMap<Time, Vec<PendingReport>>,
    /// Partial buckets: (level, cluster) -> parked transactions.
    // dtm-lint: bounded -- parked transactions only; each partial bucket drains at activation
    partials: BTreeMap<(u32, ClusterId), Vec<Transaction>>,
    /// When true, the leader's insertion probe uses the object positions
    /// *carried in the report* (stale by the protocol latency) instead of
    /// fresh global state — stricter locality of knowledge (ablation A5).
    stale_knowledge: bool,
    stats: Option<Arc<Mutex<DistStats>>>,
    decisions: Option<DecisionTraceHandle>,
    /// Live protocol-message counter (telemetry registry handle).
    msg_counter: Option<Arc<dtm_telemetry::Counter>>,
    cache: FixedCache,
    /// Incremental conflict pairs + memoized distances for the discovery
    /// phase (conflict radius and per-conflict message counts).
    conflicts: ConflictCache,
}

/// Double every edge weight of a network (dropping any structured oracle —
/// distances simply double, but `Structured` variants encode unit weights).
fn double_weights(network: &Network) -> Network {
    let g = network.graph();
    let mut out = Graph::new(g.n(), format!("{}-halfspeed", g.name()));
    for (u, v, w) in g.edges() {
        out.add_edge(u, v, 2 * w).expect("copying a valid graph"); // dtm-lint: allow(C1) -- copying the edges of an already-validated graph into a fresh one
    }
    Network::new(out, None)
}

impl<A: BatchScheduler> DistributedBucketPolicy<A> {
    /// Build the policy: constructs the sparse cover of `network`
    /// (deterministic in `seed`).
    pub fn new(network: &Network, scheduler: A, seed: u64) -> Self {
        let cover = SparseCover::build(network, seed);
        DistributedBucketPolicy {
            scheduler,
            cover,
            doubled: double_weights(network),
            max_level: None,
            reporting: BTreeMap::new(),
            partials: BTreeMap::new(),
            stale_knowledge: false,
            stats: None,
            decisions: None,
            msg_counter: None,
            cache: FixedCache::default(),
            conflicts: ConflictCache::default(),
        }
    }

    /// Count every protocol message on a live telemetry counter (e.g.
    /// `registry.counter("dist_messages_total")`).
    pub fn with_message_counter(mut self, counter: Arc<dtm_telemetry::Counter>) -> Self {
        self.msg_counter = Some(counter);
        self
    }

    /// Record the protocol's per-transaction decisions
    /// ([`DecisionKind::DistReport`], [`DecisionKind::DistInsert`],
    /// [`DecisionKind::DistActivate`]) into `trace` (the caller keeps the
    /// other `Arc` end).
    pub fn with_decision_trace(mut self, trace: DecisionTraceHandle) -> Self {
        self.decisions = Some(trace);
        self
    }

    /// Leader insertion probes use the stale object positions carried in
    /// each report instead of fresh global state (ablation A5): a
    /// strictly more local model of leader knowledge.
    pub fn with_stale_knowledge(mut self) -> Self {
        self.stale_knowledge = true;
        self
    }

    /// Attach a stats handle.
    pub fn with_stats(mut self, stats: Arc<Mutex<DistStats>>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Ablation knob (experiment A3): drop the half-speed rule — objects
    /// move at full speed and scheduling math uses true distances. The
    /// paper's `3d` discovery-catch-up guarantee no longer holds in a real
    /// deployment; in this simulation discovery still works (snapshots),
    /// so the ablation isolates the *price* of the rule.
    pub fn with_full_speed(mut self, network: &Network) -> Self {
        self.doubled = network.clone();
        self
    }

    /// The engine configuration this policy requires: objects at half
    /// speed (the discovery rule of Section V).
    pub fn engine_config() -> EngineConfig {
        EngineConfig {
            speed_divisor: 2,
            ..EngineConfig::default()
        }
    }

    /// The sparse cover in use (for tests / reports).
    pub fn cover(&self) -> &SparseCover {
        &self.cover
    }

    fn bump_messages(&self, by: u64) {
        if let Some(stats) = &self.stats {
            stats.lock().messages += by;
        }
        if let Some(c) = &self.msg_counter {
            c.add(by);
        }
    }
}

impl<A: BatchScheduler> SchedulingPolicy for DistributedBucketPolicy<A> {
    // dtm-lint: hot-path
    fn step(&mut self, view: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
        let now = view.now;
        let max_level = *self
            .max_level
            .get_or_insert_with(|| view.network.max_bucket_level());
        self.cache.refresh(view);
        self.conflicts.refresh(view);

        // 1-3. Discovery + report for this step's arrivals.
        let mut order: Vec<TxnId> = arrivals.to_vec(); // dtm-lint: allow(H1) -- O(arrival batch); an empty to_vec does not allocate, so quiet steps stay allocation-free
        order.sort_unstable();
        for id in order {
            let txn = view.live(id).expect("arrival is live").txn.clone(); // dtm-lint: allow(C1, H1) -- engine contract: every id in `arrivals` is live this step; one clone per arrival, absent on quiet steps
                                                                           // Discovery radius x: furthest current object position.
            let x: Time = txn
                .objects()
                .filter_map(|o| {
                    view.object(o)
                        .map(|st| st.effective_distance(view.network, txn.home, now))
                })
                .max()
                .unwrap_or(0);
            // Conflict radius: furthest conflicting live transaction,
            // answered from the incremental conflict cache (the arrival
            // was just folded in by the refresh above).
            let (n_conflicts, conflict_radius) = self
                .conflicts
                .conflict_stats(id)
                .expect("arrival folded by refresh"); // dtm-lint: allow(C1) -- refresh() above caches every live txn, and arrivals are live
            let y = x.max(conflict_radius);
            let layer = self.cover.lowest_covering_layer(y);
            let cluster = self.cover.home_cluster(txn.home, layer);
            let leader = cluster.leader;
            let discovery_delay = 3 * x;
            let report_delay = view.network.distance(txn.home, leader);
            let t_report = now + discovery_delay + report_delay;
            // Messages: discovery round trip per object, one conflict
            // notice per conflicting txn, one report.
            self.bump_messages(2 * txn.k() as u64 + n_conflicts as u64 + 1);
            if let Some(stats) = &self.stats {
                let mut s = stats.lock();
                *s.reports_per_layer.entry(layer).or_insert(0) += 1;
                s.report_latency.push(t_report - now);
            }
            if let Some(trace) = &self.decisions {
                trace.lock().push(Decision {
                    t: now,
                    txn: txn.id,
                    exec_at: None,
                    kind: DecisionKind::DistReport {
                        layer,
                        cluster: cluster.id.0 as u64,
                        report_latency: t_report - now,
                    },
                });
            }
            let snapshot = txn
                .objects()
                .filter_map(|o| view.object(o).map(|st| (o, st.position(now))))
                .collect(); // dtm-lint: allow(H1) -- per-arrival report snapshot, O(objects per txn)
            self.reporting
                .entry(t_report)
                .or_default()
                .push(PendingReport {
                    txn,
                    cluster: cluster.id,
                    snapshot,
                });
        }

        // 4. Reports that reached their leader by now: partial-bucket
        // insertion (leader-local probe against the doubled network).
        let due: Vec<Time> = self.reporting.range(..=now).map(|(&t, _)| t).collect(); // dtm-lint: allow(H1) -- empty collect allocates nothing on idle ticks; O(due reports) otherwise
                                                                                      // The batch context re-projects every object position, so build it
                                                                                      // lazily: on a quiet step (no due report, no bucket activating)
                                                                                      // nothing below reads it. Partial buckets are never empty, so
                                                                                      // `activating` exactly predicts whether step 5 has work.
        let activating = self
            .partials
            .keys()
            .any(|&(i, _)| now.is_multiple_of(1u64 << i));
        if due.is_empty() && !activating {
            return Schedule::new();
        }
        let ctx = self.cache.context(view);
        for t in due {
            for report in self.reporting.remove(&t).unwrap_or_default() {
                // Under stale knowledge the probe sees the object
                // positions the report carried, aged to the present.
                let probe_ctx = if self.stale_knowledge {
                    let mut c = ctx.clone(); // dtm-lint: allow(H1) -- stale-knowledge ablation path (A5), one copy per due report
                    for &(o, (node, ready)) in &report.snapshot {
                        c.object_avail.insert(o, (node, ready.max(now)));
                    }
                    c
                } else {
                    ctx.clone() // dtm-lint: allow(H1) -- per due report; the probe mutates its context copy
                };
                let mut chosen = None;
                for i in 0..=max_level {
                    let mut probe = self
                        .partials
                        .get(&(i, report.cluster))
                        .cloned() // dtm-lint: allow(H1) -- per-level probe copies its partial bucket; bounded by max_level per report
                        .unwrap_or_default();
                    probe.push(report.txn.clone()); // dtm-lint: allow(H1) -- probe candidate, one clone per level tried per report
                    let f = self.scheduler.makespan(&self.doubled, &probe, &probe_ctx);
                    if f <= 1u64 << i {
                        chosen = Some(i);
                        break;
                    }
                }
                let level = chosen.unwrap_or(max_level);
                if let Some(stats) = &self.stats {
                    stats.lock().levels.insert(report.txn.id, level);
                }
                if let Some(trace) = &self.decisions {
                    trace.lock().push(Decision {
                        t: now,
                        txn: report.txn.id,
                        exec_at: None,
                        kind: DecisionKind::DistInsert {
                            level,
                            cluster: report.cluster.0 as u64,
                        },
                    });
                }
                self.partials
                    .entry((level, report.cluster))
                    .or_default()
                    .push(report.txn);
            }
        }

        // 5. Activation: all partial i-buckets fire when 2^i divides now.
        // Deterministic serialization: ascending (level, cluster id);
        // each leader sees earlier outputs as fixed.
        let mut fragment = Schedule::new();
        let mut ctx = ctx;
        let keys: Vec<(u32, ClusterId)> = self
            .partials
            .keys()
            .filter(|(i, _)| now.is_multiple_of(1u64 << i))
            .copied()
            .collect(); // dtm-lint: allow(H1) -- empty collect allocates nothing when no bucket activates
        for key in keys {
            let bucket = self.partials.remove(&key).unwrap_or_default();
            if bucket.is_empty() {
                continue;
            }
            let leader = self.cover.cluster(key.1).leader;
            // Notification latency: the schedule may only start once every
            // member home has heard from the leader.
            let notify: Time = bucket
                .iter()
                .map(|t| view.network.distance(leader, t.home))
                .max()
                .unwrap_or(0);
            self.bump_messages(bucket.len() as u64);
            let mut bucket_ctx = ctx.clone(); // dtm-lint: allow(H1) -- one context copy per activated bucket for its notify offset
            bucket_ctx.now = now + notify;
            let s = self.scheduler.schedule(&self.doubled, &bucket, &bucket_ctx);
            for t in &bucket {
                ctx.fixed.push((t.clone(), s.get(t.id).expect("scheduled"))); // dtm-lint: allow(C1, H1) -- BatchScheduler contract: schedule() assigns every pending transaction; one clone per activated txn, amortized O(1) over its lifetime
            }
            if let Some(trace) = &self.decisions {
                let mut trace = trace.lock();
                for t in &bucket {
                    trace.push(Decision {
                        t: now,
                        txn: t.id,
                        exec_at: s.get(t.id),
                        kind: DecisionKind::DistActivate {
                            level: key.0,
                            cluster: key.1 .0 as u64,
                            notify,
                        },
                    });
                }
            }
            fragment.merge(&s);
        }
        fragment
    }

    fn name(&self) -> String {
        format!("distributed-bucket({})", self.scheduler.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_model::{
        ClosedLoopSource, FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator,
        WorkloadSpec,
    };
    use dtm_offline::ListScheduler;
    use dtm_sim::{run_policy, validate_events, ValidationConfig};

    fn dist_validation() -> ValidationConfig {
        ValidationConfig {
            speed_divisor: 2,
            ..ValidationConfig::default()
        }
    }

    #[test]
    fn doubled_network_doubles_distances() {
        let net = topology::line(8);
        let d = double_weights(&net);
        assert_eq!(d.distance(dtm_graph::NodeId(0), dtm_graph::NodeId(5)), 10);
        assert_eq!(d.diameter(), 14);
    }

    #[test]
    fn batch_on_line_runs_clean() {
        let net = topology::line(12);
        let inst = WorkloadGenerator::new(WorkloadSpec::batch_uniform(4, 2), 3).generate(&net);
        let n = inst.num_txns();
        let policy = DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 1);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            policy,
            DistributedBucketPolicy::<ListScheduler>::engine_config(),
        );
        res.expect_ok();
        validate_events(&net, &res, &dist_validation()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }

    #[test]
    fn online_arrivals_on_grid_run_clean() {
        let net = topology::grid(&[4, 4]);
        let spec = WorkloadSpec {
            num_objects: 5,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli {
                rate: 0.15,
                horizon: 12,
            },
        };
        let inst = WorkloadGenerator::new(spec, 5).generate(&net);
        let n = inst.num_txns();
        let stats = Arc::new(Mutex::new(DistStats::default()));
        let policy = DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 2)
            .with_stats(Arc::clone(&stats));
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            policy,
            DistributedBucketPolicy::<ListScheduler>::engine_config(),
        );
        res.expect_ok();
        validate_events(&net, &res, &dist_validation()).unwrap();
        assert_eq!(res.metrics.committed, n);
        let s = stats.lock();
        if n > 0 {
            assert!(s.messages > 0, "protocol must exchange messages");
            assert_eq!(s.levels.len(), n);
        }
    }

    #[test]
    fn closed_loop_star_runs_clean() {
        let net = topology::star(3, 3);
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(4, 2), 2, 7);
        let policy = DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 3);
        let res = run_policy(
            &net,
            src,
            policy,
            DistributedBucketPolicy::<ListScheduler>::engine_config(),
        );
        res.expect_ok();
        validate_events(&net, &res, &dist_validation()).unwrap();
        assert_eq!(res.metrics.committed, 20);
    }

    #[test]
    fn reports_go_to_covering_layers() {
        // A transaction with a far object must report to a high layer.
        let net = topology::line(32);
        use dtm_graph::NodeId;
        use dtm_model::{Instance, ObjectId, ObjectInfo};
        let inst = Instance::new(
            vec![
                ObjectInfo {
                    id: ObjectId(0),
                    origin: NodeId(0),
                    created_at: 0,
                },
                ObjectInfo {
                    id: ObjectId(1),
                    origin: NodeId(16),
                    created_at: 0,
                },
            ],
            vec![
                Transaction::new(TxnId(0), NodeId(31), [ObjectId(0)], 0), // far: y >= 31
                Transaction::new(TxnId(1), NodeId(17), [ObjectId(1)], 0), // near: y small
            ],
        );
        let stats = Arc::new(Mutex::new(DistStats::default()));
        let policy = DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 4)
            .with_stats(Arc::clone(&stats));
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            policy,
            DistributedBucketPolicy::<ListScheduler>::engine_config(),
        );
        res.expect_ok();
        let s = stats.lock();
        let layers: Vec<u32> = s.reports_per_layer.keys().copied().collect();
        assert!(layers.len() >= 2, "far and near txns use different layers");
        assert!(*layers.last().unwrap() >= 5); // 2^5 - 1 = 31 covers y=31
    }
}
