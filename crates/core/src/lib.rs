//! # dtm-core
//!
//! Online dynamic scheduling for distributed transactional memory — the
//! algorithms of Busch, Herlihy, Popovic and Sharma, *"Dynamic Scheduling
//! in Distributed Transactional Memory"* (IPDPS 2020).
//!
//! The paper's setting: transactions arrive online at nodes of a weighted
//! communication graph and request mobile shared objects; objects move to
//! transactions along shortest paths; the scheduler assigns each
//! transaction an execution time that is never revised. Three schedulers
//! are provided, each a [`dtm_sim::SchedulingPolicy`]:
//!
//! * [`GreedyPolicy`] — **Algorithm 1**, the online greedy schedule: each
//!   arriving transaction is colored in the extended dependency graph
//!   `H'_t` (Lemmas 1 and 2 in [`coloring`]), and the color becomes its
//!   execution offset. Near-optimal on small-diameter graphs: `O(k)`
//!   competitive on cliques (Theorem 3), `O(k log n)` on hypercubes,
//!   butterflies and `log n`-dimensional grids (Section III-D).
//! * [`BucketPolicy`] — **Algorithm 2**, the online bucket schedule: a
//!   black-box conversion of any offline batch scheduler `𝒜` (a
//!   [`dtm_offline::BatchScheduler`]) into an online scheduler with a
//!   `O(b_𝒜 log^3(nD))` competitive ratio (Theorem 4). Level-`i` buckets
//!   hold transactions whose batch would execute within `2^i` steps and
//!   activate every `2^i` steps.
//! * [`DistributedBucketPolicy`] — **Algorithm 3**, the decentralized
//!   bucket schedule: partial buckets live at leaders of a hierarchical
//!   sparse cover ([`dtm_graph::SparseCover`]); transactions discover
//!   their objects (at half object speed), report to the leader of the
//!   lowest home cluster covering their dependency radius, and are
//!   scheduled on bucket activation — `O(b_𝒜 log^9(nD))` competitive
//!   (Theorem 5).
//!
//! Baselines and deployment wrappers: [`FifoPolicy`] (earliest-feasible
//! arrival-order scheduling), [`TspPolicy`] (per-object TSP tours, the
//! related-work baseline \[30\]) and [`CentralizedWrapper`] (Section III-E's
//! simple centralized coordinator, which charges every decision a
//! round-trip to a designated node).
//!
//! # Example
//!
//! Run Algorithm 1 on a random online workload over a hypercube and check
//! the execution end to end:
//!
//! ```
//! use dtm_core::GreedyPolicy;
//! use dtm_graph::topology;
//! use dtm_model::{FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec};
//! use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};
//!
//! let network = topology::hypercube(4);
//! let spec = WorkloadSpec {
//!     num_objects: 8,
//!     k: 2,
//!     object_choice: ObjectChoice::Uniform,
//!     arrival: FiniteArrivals::Bernoulli { rate: 0.2, horizon: 10 },
//! };
//! let instance = WorkloadGenerator::new(spec, 7).generate(&network);
//! let result = run_policy(
//!     &network,
//!     TraceSource::new(instance),
//!     GreedyPolicy::new(),
//!     EngineConfig::default(),
//! );
//! result.expect_ok();
//! validate_events(&network, &result, &ValidationConfig::default()).unwrap();
//! assert_eq!(result.metrics.committed, result.txns.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod bucket;
pub mod centralized;
pub mod coloring;
pub mod conflict;
pub mod dependency;
pub mod distributed;
pub mod distributed_msg;
pub mod fifo;
pub mod greedy;
pub mod viewctx;

pub use adaptive::{AutoPolicy, RandomizedBackoffPolicy};
pub use bucket::{BucketPolicy, BucketStats};
pub use centralized::CentralizedWrapper;
pub use coloring::{
    smallest_valid_color, smallest_valid_color_into, smallest_valid_color_uniform,
    smallest_valid_multiple, smallest_valid_multiple_into, ColorConstraint,
};
pub use conflict::ConflictCache;
pub use dependency::{constraints_for, extended_degrees, ExtendedDegrees};
pub use distributed::{DistStats, DistributedBucketPolicy};
pub use distributed_msg::{DistributedMsgPolicy, MsgStats};
pub use fifo::{FifoPolicy, TspPolicy};
pub use greedy::{GreedyMode, GreedyPolicy, GreedyStats};
pub use viewctx::{batch_context_from_view, FixedCache};
