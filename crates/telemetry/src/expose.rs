//! Live exposition: periodic [`MetricsSnapshot`] flushing and a
//! Prometheus text-format writer.
//!
//! The `--telemetry` sidecars from PR 2 write one snapshot at process
//! exit; a 10⁶-step open-system run wants its metrics *while it runs*.
//! [`PeriodicExposer`] is a [`StepObserver`] that re-snapshots a shared
//! [`MetricsRegistry`] every `every` steps and atomically rewrites one
//! or two files: a JSON snapshot (the existing sidecar schema) and/or a
//! Prometheus text-format rendering ([`prometheus_text`]) that a
//! node-exporter-style scrape (or a human with `watch cat`) can follow.
//!
//! Flushing overwrites in place via a write-then-rename so a reader
//! never sees a torn file; I/O errors are retained
//! ([`PeriodicExposer::last_error`]) instead of panicking inside the
//! engine loop. The exposer does no timing and touches no engine state,
//! so attaching it cannot perturb a run (the telemetry integration
//! suite pins this).

use crate::registry::{MetricsRegistry, MetricsSnapshot};
use dtm_model::Time;
use dtm_sim::{Phase, StepEffects, StepObserver};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Sanitize a metric name for the Prometheus exposition format:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, everything else becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format (v0.0.4).
///
/// Counters and gauges map directly. Each log2 histogram becomes a
/// Prometheus histogram with cumulative `_bucket{le="..."}` series (one
/// per non-empty log2 bucket, upper bound inclusive, plus `+Inf`),
/// `_sum` and `_count`. Output order is deterministic: counters, then
/// gauges, then histograms, each alphabetical (inherited from the
/// snapshot's sorted maps).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for b in &h.buckets {
            cumulative += b.count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cumulative}", b.hi);
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// Write `text` to `path` atomically (write a sibling `.tmp`, then
/// rename over the target) so concurrent readers never see a torn file.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// A [`StepObserver`] that periodically flushes a registry snapshot to
/// disk. See the module docs.
pub struct PeriodicExposer {
    registry: Arc<MetricsRegistry>,
    every: u64,
    json_path: Option<PathBuf>,
    prom_path: Option<PathBuf>,
    flushes: u64,
    last_error: Option<String>,
}

impl PeriodicExposer {
    /// Exposer flushing `registry` every `every` steps (clamped to ≥ 1).
    /// Add at least one output with [`with_json`](Self::with_json) /
    /// [`with_prom`](Self::with_prom); with none the exposer is inert.
    pub fn new(registry: Arc<MetricsRegistry>, every: u64) -> Self {
        PeriodicExposer {
            registry,
            every: every.max(1),
            json_path: None,
            prom_path: None,
            flushes: 0,
            last_error: None,
        }
    }

    /// Rewrite `path` with the JSON snapshot (sidecar schema) each flush.
    pub fn with_json(mut self, path: PathBuf) -> Self {
        self.json_path = Some(path);
        self
    }

    /// Rewrite `path` in Prometheus text format each flush.
    pub fn with_prom(mut self, path: PathBuf) -> Self {
        self.prom_path = Some(path);
        self
    }

    /// Completed flushes (a flush with both outputs counts once).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Most recent I/O error, if any flush failed.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// Snapshot and write now, regardless of cadence. Harnesses call
    /// this once after the run so the files hold the final state.
    pub fn flush_now(&mut self) {
        let snap = self.registry.snapshot();
        let mut ok = true;
        if let Some(path) = &self.json_path {
            if let Err(e) = write_atomic(path, &snap.to_json()) {
                self.last_error = Some(format!("expose json to {}: {e}", path.display()));
                ok = false;
            }
        }
        if let Some(path) = &self.prom_path {
            if let Err(e) = write_atomic(path, &prometheus_text(&snap)) {
                self.last_error = Some(format!("expose prom to {}: {e}", path.display()));
                ok = false;
            }
        }
        if ok {
            self.flushes += 1;
        }
    }
}

impl StepObserver for PeriodicExposer {
    fn on_phase(&mut self, _t: Time, _phase: Phase, _items: usize, _elapsed: Duration) {}

    fn wants_timing(&self, _t: Time) -> bool {
        false
    }

    fn wants_phases(&self, _t: Time) -> bool {
        false
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        // Flush on the last step of each cadence window so a run of
        // exactly `every` steps flushes once at its end.
        if (effects.t + 1).is_multiple_of(self.every) {
            self.flush_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dtm-expose-{}-{name}", std::process::id()))
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter("engine_steps").add(10);
        r.gauge("live.now").set(-3);
        let h = r.histogram("sojourn");
        h.record(0);
        h.record(1);
        h.record(5);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE engine_steps counter\nengine_steps 10\n"));
        // Dots sanitize to underscores.
        assert!(text.contains("# TYPE live_now gauge\nlive_now -3\n"));
        // Cumulative buckets: {0}→1, {1}→2, {4..7}→3, +Inf→3.
        assert!(text.contains("sojourn_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("sojourn_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("sojourn_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("sojourn_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("sojourn_sum 6\n"));
        assert!(text.contains("sojourn_count 3\n"));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn flushes_at_cadence_and_rewrites_in_place() {
        let r = Arc::new(MetricsRegistry::new());
        let steps = r.counter("steps");
        let json = tmp("cadence.json");
        let prom = tmp("cadence.prom");
        let mut ex = PeriodicExposer::new(Arc::clone(&r), 10)
            .with_json(json.clone())
            .with_prom(prom.clone());
        for t in 0..25u64 {
            steps.inc();
            let fx = StepEffects {
                t,
                ..StepEffects::default()
            };
            ex.on_step_end(&fx);
        }
        // Cadence 10 over t = 0..25 flushes at t = 9 and t = 19.
        assert_eq!(ex.flushes(), 2);
        assert!(ex.last_error().is_none());
        let snap: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&json).expect("json readable"))
                .expect("sidecar schema");
        assert_eq!(snap.counters["steps"], 20, "flush at t=19 saw 20 steps");
        let text = std::fs::read_to_string(&prom).expect("prom readable");
        assert!(text.contains("steps 20"));
        ex.flush_now();
        assert_eq!(ex.flushes(), 3);
        let text = std::fs::read_to_string(&prom).expect("prom readable");
        assert!(text.contains("steps 25"), "final flush sees all steps");
        let _ = std::fs::remove_file(&json);
        let _ = std::fs::remove_file(&prom);
    }

    #[test]
    fn io_errors_are_retained_not_panicked() {
        let r = Arc::new(MetricsRegistry::new());
        let mut ex =
            PeriodicExposer::new(r, 1).with_json(PathBuf::from("/nonexistent-dir-dtm/expose.json"));
        ex.flush_now();
        assert_eq!(ex.flushes(), 0);
        let err = ex.last_error().expect("error retained");
        assert!(err.contains("expose json"), "{err}");
    }
}
