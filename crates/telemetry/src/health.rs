//! Health watchdogs: typed alarms derived from the step stream.
//!
//! [`HealthMonitor`] is a [`StepObserver`] that evaluates four detectors
//! as pure functions of the effects stream (plus one externally fed
//! arena probe), emitting typed [`HealthEvent`]s:
//!
//! * **overload** — the backlog grows faster than a tolerance between
//!   the two halves of a sliding window, the same half-window slope
//!   signature the E17 stability sweep uses offline (slope =
//!   `(late_mean − early_mean) / half_window`), evaluated online in O(1)
//!   per step with hysteresis so a sustained overload fires once, not
//!   every step;
//! * **commit stall** — no commit for `stall_window` steps while the
//!   live set is nonempty;
//! * **starvation** — a live transaction's age exceeded
//!   `starvation_age` steps (at most one event per step, each
//!   transaction reported once);
//! * **arena drift** — the transaction arena's slot high-water mark
//!   exceeded the peak live-set size, which the kernel's free-list
//!   recycling forbids ([`HealthMonitor::probe_arena`], fed by the
//!   harness from [`dtm_sim::StepKernel`] accessors — observers cannot
//!   see the arena).
//!
//! Every event carries the step index, the backlog, and a bounded
//! context sample (the oldest live transactions). The stored event list
//! is capped ([`HealthConfig::max_events`], overflow counted), detector
//! state is bounded by the backlog, and idle steps allocate nothing —
//! the monitor can ride a 10⁶-step run. When a [`FlightRecorderHandle`]
//! is attached, the monitor **auto-dumps** the recorder on its first
//! event, appending the event as a `health_event` JSONL line — the black
//! box is written at failure onset, not at process exit.
//!
//! Determinism: all detectors are pure functions of the deterministic
//! step stream, so the event sequence for a seeded run is byte-identical
//! across runs and `--jobs` levels.

use crate::flight::{push_line, FlightRecorderHandle};
use dtm_model::{Time, TxnId};
use dtm_sim::{StepEffects, StepObserver};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

/// Detector thresholds. The defaults suit the open-system experiment
/// scale (thousands to millions of steps at per-step arrival rates ≲ 2).
#[derive(Clone, Debug, PartialEq)]
pub struct HealthConfig {
    /// Half-window length for the backlog-slope detector; the full
    /// sliding window is twice this. Clamped to ≥ 1.
    pub slope_half_window: u64,
    /// Backlog growth (live transactions per step between the two
    /// half-window means) above which overload fires. Matches the E17
    /// sweep's `SLOPE_TOL` by default.
    pub slope_tol: f64,
    /// Steps without a commit (while transactions are live) before a
    /// commit-stall event. Clamped to ≥ 1.
    pub stall_window: u64,
    /// Live age (steps since generation) past which a transaction
    /// counts as starved.
    pub starvation_age: u64,
    /// Maximum events retained; further emissions only bump
    /// [`HealthMonitor::suppressed`].
    pub max_events: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            slope_half_window: 256,
            slope_tol: 0.02,
            stall_window: 256,
            starvation_age: 1024,
            max_events: 64,
        }
    }
}

/// Why a health event fired.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum HealthEventKind {
    /// Backlog slope between the sliding window's halves exceeded the
    /// tolerance: the system is not keeping up with arrivals.
    Overload {
        /// Mean backlog over the early half-window.
        early_mean: f64,
        /// Mean backlog over the late half-window.
        late_mean: f64,
        /// Growth per step: `(late_mean - early_mean) / half_window`.
        slope: f64,
    },
    /// No commit for `window` steps while the live set was nonempty.
    CommitStall {
        /// Last step that committed (or saw an empty live set).
        idle_since: Time,
        /// The configured stall window.
        window: Time,
    },
    /// A live transaction's age exceeded the starvation threshold.
    Starvation {
        /// The starved transaction.
        txn: TxnId,
        /// When it was generated.
        arrived: Time,
        /// Its age at detection.
        age: Time,
    },
    /// The transaction arena's slot high-water mark exceeded the peak
    /// live-set size — the bounded-memory invariant broke.
    ArenaDrift {
        /// Arena slot high-water mark reported by the probe.
        slot_high_water: u64,
        /// Peak live-set size reported by the probe.
        peak_live: u64,
    },
}

impl HealthEventKind {
    /// Stable lowercase tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            HealthEventKind::Overload { .. } => "overload",
            HealthEventKind::CommitStall { .. } => "commit-stall",
            HealthEventKind::Starvation { .. } => "starvation",
            HealthEventKind::ArenaDrift { .. } => "arena-drift",
        }
    }
}

/// One typed alarm: when, how loaded the system was, a bounded sample
/// of the oldest live transactions, and the detector-specific detail.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Step at which the detector fired.
    pub t: Time,
    /// Live-set size at that step.
    pub live: u64,
    /// Up to [`CONTEXT_SAMPLE`] oldest live transactions, oldest first.
    pub oldest: Vec<TxnId>,
    /// What fired.
    pub kind: HealthEventKind,
}

/// Oldest-live-transaction sample size carried by each event.
pub const CONTEXT_SAMPLE: usize = 4;

/// A [`StepObserver`] running the health detectors. See the module docs.
pub struct HealthMonitor {
    cfg: HealthConfig,
    /// Sliding backlog window, preallocated to `2 * slope_half_window`.
    window: Vec<u64>,
    /// Next ring slot to write (wraps at `2 * slope_half_window`).
    idx: usize,
    /// Slot of the value aging out of the late half into the early half
    /// (always `idx - half_window` mod capacity, maintained incrementally
    /// so the hot path never divides).
    mid: usize,
    /// Half-window sums. `u64` suffices: the window holds at most 2^20
    /// backlog values, each far below 2^40.
    early_sum: u64,
    late_sum: u64,
    /// `slope_tol * half_window^2`: overload fires when
    /// `late_sum - early_sum` exceeds this, which is the same predicate
    /// as `slope > slope_tol` without per-step divisions.
    fire_thresh: f64,
    /// Hysteresis: overload fires only while armed; re-arms when the
    /// slope falls back to half the tolerance.
    overload_armed: bool,
    /// Last step that committed or had an empty live set.
    last_activity: Time,
    /// Live transactions sorted by id. Transaction ids are monotone, so
    /// in practice an arrival is a push at the end and id order equals
    /// age order; liveness is a binary search.
    live: Vec<(TxnId, Time)>,
    /// Arrival-ordered transactions for context samples. Retired entries
    /// are tombstoned lazily (liveness = membership in `live`) and
    /// swept from the front each step, so the queue tracks the backlog
    /// plus at most one oldest-transaction sojourn of retirees — never
    /// the total arrival count.
    age_queue: VecDeque<(Time, TxnId)>,
    /// Arrival-ordered transactions not yet reported as starved; lazily
    /// tombstoned like `age_queue`.
    starve_queue: VecDeque<(Time, TxnId)>,
    events: Vec<HealthEvent>,
    suppressed: u64,
    auto_dump: Option<(FlightRecorderHandle, PathBuf)>,
    dump_result: Option<Result<PathBuf, String>>,
    arena_alarmed: bool,
}

impl HealthMonitor {
    /// Monitor with the given thresholds. All detector state is
    /// preallocated or bounded by the backlog.
    pub fn new(cfg: HealthConfig) -> Self {
        let mut cfg = cfg;
        cfg.slope_half_window = cfg.slope_half_window.max(1);
        cfg.stall_window = cfg.stall_window.max(1);
        let cap = 2 * cfg.slope_half_window as usize;
        let max_events = cfg.max_events;
        let h = cfg.slope_half_window as f64;
        let fire_thresh = cfg.slope_tol * h * h;
        HealthMonitor {
            cfg,
            window: Vec::with_capacity(cap),
            idx: 0,
            mid: cap / 2,
            early_sum: 0,
            late_sum: 0,
            fire_thresh,
            overload_armed: true,
            last_activity: 0,
            live: Vec::new(),
            age_queue: VecDeque::new(),
            starve_queue: VecDeque::new(),
            events: Vec::with_capacity(max_events),
            suppressed: 0,
            auto_dump: None,
            dump_result: None,
            arena_alarmed: false,
        }
    }

    /// Auto-dump `recorder` to `path` when the first event fires. The
    /// dump is the recorder's JSONL plus one `health_event` line per
    /// event retained so far (at first fire: exactly the triggering
    /// event) — see [`crate::validate_flight_dump`].
    pub fn with_auto_dump(mut self, recorder: FlightRecorderHandle, path: PathBuf) -> Self {
        self.auto_dump = Some((recorder, path));
        self
    }

    /// Events retained, in emission order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Emissions dropped after [`HealthConfig::max_events`] was reached.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// True when no detector has fired.
    pub fn is_healthy(&self) -> bool {
        self.events.is_empty() && self.suppressed == 0
    }

    /// Outcome of the auto-dump, if one was attempted: the path written,
    /// or the I/O error (the monitor never panics inside the engine).
    pub fn dump_result(&self) -> Option<&Result<PathBuf, String>> {
        self.dump_result.as_ref()
    }

    /// Serialize the retained events as `health_event` JSONL lines (the
    /// same shape the auto-dump appends to the flight dump).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            push_line(&mut out, "health_event", ev.to_value());
        }
        out
    }

    /// Feed the arena-invariant probe. Observers cannot see the kernel,
    /// so the driving harness reads
    /// [`dtm_sim::StepKernel::arena_high_water`] /
    /// [`dtm_sim::StepKernel::peak_live`] (or
    /// [`dtm_sim::StepKernel::vitals`]) and forwards them here at
    /// whatever cadence it likes; the invariant `slot_high_water <=
    /// peak_live` must hold at every step, so any cadence catches a
    /// regression. Fires at most once.
    pub fn probe_arena(&mut self, t: Time, slot_high_water: usize, peak_live: usize) {
        if !self.arena_alarmed && slot_high_water > peak_live {
            self.arena_alarmed = true;
            let live = self.live.len() as u64;
            self.emit(
                t,
                live,
                HealthEventKind::ArenaDrift {
                    slot_high_water: slot_high_water as u64,
                    peak_live: peak_live as u64,
                },
            );
        }
    }

    fn emit(&mut self, t: Time, live: u64, kind: HealthEventKind) {
        let first = self.events.is_empty() && self.suppressed == 0;
        let mut oldest: Vec<TxnId> = Vec::with_capacity(CONTEXT_SAMPLE);
        for &(_, id) in self.age_queue.iter() {
            if oldest.len() == CONTEXT_SAMPLE {
                break;
            }
            if self.is_live(id) {
                oldest.push(id);
            }
        }
        let ev = HealthEvent {
            t,
            live,
            oldest,
            kind,
        };
        if self.events.len() < self.cfg.max_events {
            self.events.push(ev);
        } else {
            self.suppressed += 1;
        }
        if first {
            self.auto_dump_now();
        }
    }

    fn auto_dump_now(&mut self) {
        let Some((recorder, path)) = &self.auto_dump else {
            return;
        };
        let mut text = recorder.lock().dump();
        for ev in &self.events {
            push_line(&mut text, "health_event", ev.to_value());
        }
        self.dump_result = Some(
            std::fs::write(path, text)
                .map(|_| path.clone())
                .map_err(|e| format!("flight auto-dump to {} failed: {e}", path.display())),
        );
    }

    /// O(1) sliding-window slope update; evaluates once the window is
    /// full. Returns the slope when the overload detector fires. The hot
    /// path is division-free: `slope > tol` is tested as the integer
    /// sum difference against the precomputed `fire_thresh`, and the
    /// means are only materialized for the event payload.
    fn push_backlog(&mut self, v: u64) -> Option<(f64, f64, f64)> {
        let h = self.cfg.slope_half_window as usize;
        let cap = 2 * h;
        if self.window.len() == cap {
            // The value from `cap` steps ago leaves the early half.
            self.early_sum -= self.window[self.idx];
        }
        if self.window.len() >= h {
            // The value from `h` steps ago ages out of the late half
            // into the early half.
            let moved = self.window[self.mid];
            self.late_sum -= moved;
            self.early_sum += moved;
        }
        if self.window.len() < cap {
            self.window.push(v);
        } else {
            self.window[self.idx] = v;
        }
        self.late_sum += v;
        self.idx += 1;
        if self.idx == cap {
            self.idx = 0;
        }
        self.mid += 1;
        if self.mid == cap {
            self.mid = 0;
        }
        if self.window.len() < cap {
            return None;
        }
        // diff / h^2 is the slope; compare against tol * h^2 instead.
        let diff = self.late_sum as f64 - self.early_sum as f64;
        if self.overload_armed && diff > self.fire_thresh {
            self.overload_armed = false;
            let hf = h as f64;
            let early = self.early_sum as f64 / hf;
            let late = self.late_sum as f64 / hf;
            return Some((early, late, (late - early) / hf));
        }
        if !self.overload_armed && diff <= self.fire_thresh * 0.5 {
            self.overload_armed = true;
        }
        None
    }

    fn is_live(&self, id: TxnId) -> bool {
        self.live.binary_search_by_key(&id, |&(i, _)| i).is_ok()
    }

    /// Smallest live transaction id, the O(1) liveness witness for the
    /// queue fronts: a queue front is `<=` every live id (ids are
    /// monotone), so a front equal to the minimum is live without a
    /// binary search.
    fn min_live(&self) -> Option<TxnId> {
        self.live.first().map(|&(id, _)| id)
    }

    fn arrive(&mut self, id: TxnId, t: Time) {
        match self.live.last() {
            // Monotone ids: an arrival is an O(1) append.
            Some(&(last, _)) if id > last => self.live.push((id, t)),
            None => self.live.push((id, t)),
            _ => match self.live.binary_search_by_key(&id, |&(i, _)| i) {
                Ok(_) => return, // duplicate arrival: sources never produce these
                Err(pos) => self.live.insert(pos, (id, t)),
            },
        }
        self.age_queue.push_back((t, id));
        self.starve_queue.push_back((t, id));
    }

    fn retire(&mut self, id: TxnId) {
        if let Ok(pos) = self.live.binary_search_by_key(&id, |&(i, _)| i) {
            self.live.remove(pos);
        }
    }
}

impl StepObserver for HealthMonitor {
    fn on_phase(
        &mut self,
        _t: Time,
        _phase: dtm_sim::Phase,
        _items: usize,
        _elapsed: std::time::Duration,
    ) {
        // Never called: wants_phases declines every step.
    }

    fn wants_timing(&self, _t: Time) -> bool {
        false // never ask the engine to pay for Instant::now
    }

    fn wants_phases(&self, _t: Time) -> bool {
        false // step-granular detectors: everything is in the effects
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        let t = effects.t;
        let live = effects.live_after as u64;
        for &id in &effects.arrived {
            self.arrive(id, t);
        }
        for &id in &effects.committed {
            self.retire(id);
        }
        for &id in &effects.aborted {
            self.retire(id);
        }
        // Sweep tombstones off the queue fronts (amortized O(1)). The
        // common case — a live front — is the O(1) min-live comparison;
        // the binary search only confirms death before a pop (and keeps
        // the sweep correct even for out-of-order arrivals).
        let min_live = self.min_live();
        while let Some(&(_, id)) = self.age_queue.front() {
            if Some(id) == min_live || self.is_live(id) {
                break;
            }
            self.age_queue.pop_front();
        }
        while let Some(&(_, id)) = self.starve_queue.front() {
            if Some(id) == min_live || self.is_live(id) {
                break;
            }
            self.starve_queue.pop_front();
        }
        if !effects.committed.is_empty() || effects.live_after == 0 {
            self.last_activity = t;
        }

        // Overload: half-window backlog slope with hysteresis.
        if let Some((early_mean, late_mean, slope)) = self.push_backlog(live) {
            self.emit(
                t,
                live,
                HealthEventKind::Overload {
                    early_mean,
                    late_mean,
                    slope,
                },
            );
        }

        // Commit stall: live work but no commits for a full window.
        if effects.live_after > 0 && t.saturating_sub(self.last_activity) >= self.cfg.stall_window {
            let idle_since = self.last_activity;
            self.emit(
                t,
                live,
                HealthEventKind::CommitStall {
                    idle_since,
                    window: self.cfg.stall_window,
                },
            );
            // Re-arm: the next stall event needs another full window.
            self.last_activity = t;
        }

        // Starvation: oldest unreported live transaction past the age
        // threshold (at most one event per step; each txn fires once —
        // the front is live after the tombstone sweep above).
        if let Some(&(arrived, txn)) = self.starve_queue.front() {
            let age = t.saturating_sub(arrived);
            if age > self.cfg.starvation_age {
                self.starve_queue.pop_front();
                self.emit(t, live, HealthEventKind::Starvation { txn, arrived, age });
            }
        }
    }
}

/// Shared handle: the engine owns one end as an observer, the harness
/// keeps the other to read events and feed [`HealthMonitor::probe_arena`].
pub type HealthMonitorHandle = Arc<Mutex<HealthMonitor>>;

/// Fresh shared monitor.
pub fn health_monitor(cfg: HealthConfig) -> HealthMonitorHandle {
    Arc::new(Mutex::new(HealthMonitor::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(t: Time, live: usize) -> StepEffects {
        StepEffects {
            t,
            live_after: live,
            ..StepEffects::default()
        }
    }

    fn cfg_small() -> HealthConfig {
        HealthConfig {
            slope_half_window: 4,
            slope_tol: 0.02,
            stall_window: 10,
            starvation_age: 20,
            max_events: 8,
        }
    }

    #[test]
    fn overload_fires_once_on_sustained_growth() {
        let mut m = HealthMonitor::new(cfg_small());
        // Backlog grows by 1 per step: slope = 1 > tol once the 8-step
        // window fills; hysteresis keeps it to a single event.
        for t in 0..40u64 {
            m.on_step_end(&fx(t, t as usize));
        }
        let overloads: Vec<&HealthEvent> = m
            .events()
            .iter()
            .filter(|e| matches!(e.kind, HealthEventKind::Overload { .. }))
            .collect();
        assert_eq!(overloads.len(), 1, "hysteresis failed: {:?}", m.events());
        let HealthEventKind::Overload {
            early_mean,
            late_mean,
            slope,
        } = overloads[0].kind
        else {
            unreachable!()
        };
        assert!(late_mean > early_mean);
        // Backlog +1/step ⇒ half-window means differ by exactly h.
        assert!((slope - 1.0).abs() < 1e-9, "slope {slope}");
        assert_eq!(overloads[0].t, 7, "fires as soon as the window fills");
    }

    #[test]
    fn overload_rearms_after_recovery() {
        let mut m = HealthMonitor::new(cfg_small());
        for t in 0..20u64 {
            m.on_step_end(&fx(t, t as usize)); // growth: fires once
        }
        for t in 20..60u64 {
            m.on_step_end(&fx(t, 5)); // flat: slope 0, re-arms
        }
        for t in 60..90u64 {
            m.on_step_end(&fx(t, 5 + (t - 60) as usize * 2)); // growth again
        }
        let overloads = m
            .events()
            .iter()
            .filter(|e| matches!(e.kind, HealthEventKind::Overload { .. }))
            .count();
        assert_eq!(overloads, 2);
    }

    #[test]
    fn stable_backlog_stays_healthy() {
        let mut m = HealthMonitor::new(cfg_small());
        let mut e = fx(0, 3);
        e.arrived.push(TxnId(0));
        e.committed.push(TxnId(0));
        m.on_step_end(&e);
        for t in 1..200u64 {
            let mut e = fx(t, 3);
            // A commit every few steps keeps the stall detector quiet.
            if t % 3 == 0 {
                e.arrived.push(TxnId(t));
                e.committed.push(TxnId(t));
            }
            m.on_step_end(&e);
        }
        assert!(m.is_healthy(), "events: {:?}", m.events());
    }

    #[test]
    fn commit_stall_fires_and_rearms() {
        let mut m = HealthMonitor::new(cfg_small());
        let mut e = fx(0, 1);
        e.arrived.push(TxnId(7));
        m.on_step_end(&e);
        for t in 1..25u64 {
            m.on_step_end(&fx(t, 1));
        }
        let stalls: Vec<&HealthEvent> = m
            .events()
            .iter()
            .filter(|e| matches!(e.kind, HealthEventKind::CommitStall { .. }))
            .collect();
        // Window 10: fires at t=10 (idle since 0) and t=20 (re-armed).
        assert_eq!(stalls.len(), 2, "events: {:?}", m.events());
        assert_eq!(stalls[0].t, 10);
        assert_eq!(stalls[1].t, 20);
        assert_eq!(stalls[0].oldest, vec![TxnId(7)], "context sample");
        assert_eq!(stalls[0].live, 1);
    }

    #[test]
    fn starvation_reports_each_txn_once_oldest_first() {
        let mut m = HealthMonitor::new(cfg_small());
        let mut e = fx(0, 2);
        e.arrived.push(TxnId(1));
        e.arrived.push(TxnId(2));
        m.on_step_end(&e);
        for t in 1..40u64 {
            let mut e = fx(t, 2);
            if t % 9 == 0 {
                // Periodic commits of *other* txns keep the stall
                // detector quiet while 1 and 2 starve.
                e.arrived.push(TxnId(100 + t));
                e.committed.push(TxnId(100 + t));
            }
            m.on_step_end(&e);
        }
        let starved: Vec<TxnId> = m
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                HealthEventKind::Starvation { txn, .. } => Some(txn),
                _ => None,
            })
            .collect();
        assert_eq!(starved, vec![TxnId(1), TxnId(2)]);
        // Retiring a starved txn cleans its tracking state.
        let mut e = fx(40, 0);
        e.committed.push(TxnId(1));
        e.committed.push(TxnId(2));
        m.on_step_end(&e);
        assert!(m.live.is_empty());
        assert!(m.age_queue.is_empty());
        assert!(m.starve_queue.is_empty());
    }

    #[test]
    fn arena_probe_fires_once_on_drift() {
        let mut m = HealthMonitor::new(cfg_small());
        m.probe_arena(5, 10, 10); // invariant holds
        assert!(m.is_healthy());
        m.probe_arena(6, 11, 10); // drift
        m.probe_arena(7, 12, 10); // still drifting: no second event
        assert_eq!(m.events().len(), 1);
        assert_eq!(m.events()[0].kind.tag(), "arena-drift");
    }

    #[test]
    fn event_cap_suppresses_overflow() {
        let mut cfg = cfg_small();
        cfg.max_events = 2;
        cfg.starvation_age = 1;
        let mut m = HealthMonitor::new(cfg);
        let mut e = fx(0, 5);
        for i in 0..5u64 {
            e.arrived.push(TxnId(i));
        }
        m.on_step_end(&e);
        for t in 1..20u64 {
            m.on_step_end(&fx(t, 5));
        }
        assert_eq!(m.events().len(), 2);
        assert!(m.suppressed() > 0);
        assert!(!m.is_healthy());
    }

    #[test]
    fn first_event_auto_dumps_recorder() {
        let recorder = crate::flight_recorder(8);
        let dir = std::env::temp_dir().join(format!("dtm-health-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("auto.flight.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut m =
            HealthMonitor::new(cfg_small()).with_auto_dump(Arc::clone(&recorder), path.clone());
        for t in 0..20u64 {
            let e = fx(t, t as usize);
            recorder.lock().on_step_end(&e);
            m.on_step_end(&e);
        }
        assert!(!m.is_healthy(), "growth must trip the overload detector");
        let written = m
            .dump_result()
            .expect("auto-dump attempted")
            .as_ref()
            .expect("auto-dump wrote");
        assert_eq!(written, &path);
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let summary = crate::validate_flight_dump(&text).expect("auto-dump validates");
        assert_eq!(summary.health_events, 1, "dumped at first event");
        assert!(summary.records > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_roundtrip_through_json() {
        let ev = HealthEvent {
            t: 42,
            live: 7,
            oldest: vec![TxnId(1), TxnId(2)],
            kind: HealthEventKind::Overload {
                early_mean: 1.0,
                late_mean: 9.0,
                slope: 2.0,
            },
        };
        let s = serde_json::to_string(&ev).expect("serializes");
        let back: HealthEvent = serde_json::from_str(&s).expect("parses");
        assert_eq!(back, ev);
        assert_eq!(ev.kind.tag(), "overload");
    }
}
