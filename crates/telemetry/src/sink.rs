//! Live telemetry sink: a [`StepObserver`] that feeds the metrics
//! registry and records per-phase spans for trace export.
//!
//! Attach with the shared-handle pattern:
//!
//! ```
//! use dtm_sim::Engine;
//! # use dtm_sim::EngineConfig;
//! # use dtm_telemetry::TelemetrySink;
//! # use dtm_telemetry::MetricsRegistry;
//! # use parking_lot::Mutex;
//! # use std::sync::Arc;
//! let registry = Arc::new(MetricsRegistry::new());
//! let sink = Arc::new(Mutex::new(TelemetrySink::new(Arc::clone(&registry))));
//! # let network = dtm_graph::topology::line(2);
//! # let policy = dtm_sim::FixedSchedulePolicy::new(dtm_model::Schedule::new());
//! let engine = Engine::new(network, policy, EngineConfig::default())
//!     .with_observer(Arc::clone(&sink));
//! ```
//!
//! **Overhead contract.** Observation never changes engine behavior, and
//! the sink is built to cost close to nothing: every update is an atomic
//! add on a pre-registered handle, and wall-clock phase timing is
//! *sampled* — [`TelemetrySink::wants_timing`] opts in only every
//! `sample_every`-th step, so the engine skips its `Instant::now` calls
//! on the others. `sample_every = 0` disables wall-clock sampling
//! entirely; [`TelemetrySink::with_full_timing`] times every step (the
//! [`dtm_sim::PhaseProfile`] behavior).

use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry};
use dtm_model::Time;
use dtm_sim::{Phase, RunResult, StepEffects, StepObserver};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// One observed engine phase at one step (sampled).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Step.
    pub t: Time,
    /// Phase.
    pub phase: Phase,
    /// Items the phase processed.
    pub items: u64,
    /// Wall-clock nanoseconds (0 when the step was not timed).
    pub nanos: u64,
}

/// Default timing-sample period: wall-clock phase timing every 64th step.
pub const DEFAULT_TIMING_SAMPLE: u64 = 64;

/// Default cap on retained [`PhaseSpan`]s (see
/// [`TelemetrySink::dropped_spans`]).
pub const DEFAULT_MAX_SPANS: usize = 100_000;

/// Metric names the sink registers (documented for sidecar consumers).
pub mod names {
    /// Completed engine steps.
    pub const STEPS: &str = "engine_steps_total";
    /// Live-set size sampled at every step end.
    pub const LIVE_SET: &str = "live_set_size";
    /// Current live-set size.
    pub const LIVE_NOW: &str = "live_set_current";
    /// Largest live-set size seen.
    pub const LIVE_PEAK: &str = "live_set_peak";
    /// Per-phase processed items: `phase_<name>_items_total`.
    pub fn phase_items(phase: dtm_sim::Phase) -> String {
        format!("phase_{}_items_total", phase.name())
    }
    /// Per-phase sampled wall-clock nanoseconds histogram:
    /// `phase_<name>_step_nanos`.
    pub fn phase_nanos(phase: dtm_sim::Phase) -> String {
        format!("phase_{}_step_nanos", phase.name())
    }
}

/// The live sink. See the module docs for the overhead contract.
pub struct TelemetrySink {
    steps: Arc<Counter>,
    live_hist: Arc<Histogram>,
    live_now: Arc<Gauge>,
    live_peak: Arc<Gauge>,
    phase_items: [Arc<Counter>; 5],
    phase_nanos: [Arc<Histogram>; 5],
    sample_every: u64,
    max_spans: usize,
    spans: Vec<PhaseSpan>,
    dropped_spans: u64,
}

impl TelemetrySink {
    /// Sink feeding `registry`, with sampled timing
    /// ([`DEFAULT_TIMING_SAMPLE`]) and span retention
    /// ([`DEFAULT_MAX_SPANS`]).
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        TelemetrySink {
            steps: registry.counter(names::STEPS),
            live_hist: registry.histogram(names::LIVE_SET),
            live_now: registry.gauge(names::LIVE_NOW),
            live_peak: registry.gauge(names::LIVE_PEAK),
            phase_items: std::array::from_fn(|i| {
                registry.counter(&names::phase_items(Phase::ALL[i]))
            }),
            phase_nanos: std::array::from_fn(|i| {
                registry.histogram(&names::phase_nanos(Phase::ALL[i]))
            }),
            sample_every: DEFAULT_TIMING_SAMPLE,
            max_spans: DEFAULT_MAX_SPANS,
            spans: Vec::new(),
            dropped_spans: 0,
        }
    }

    /// Request wall-clock timing every `every`-th step (0 = never).
    pub fn with_timing_sample(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }

    /// Time every step (the highest-fidelity, highest-overhead mode).
    pub fn with_full_timing(self) -> Self {
        self.with_timing_sample(1)
    }

    /// Retain at most `max` phase spans (0 disables span recording).
    pub fn with_max_spans(mut self, max: usize) -> Self {
        self.max_spans = max;
        self
    }

    /// Phase spans recorded so far (timed steps only).
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Take ownership of the recorded spans.
    pub fn take_spans(&mut self) -> Vec<PhaseSpan> {
        std::mem::take(&mut self.spans)
    }

    /// Spans discarded after [`Self::with_max_spans`] was hit — nonzero
    /// means the span record is truncated, not complete.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    fn timed(&self, t: Time) -> bool {
        self.sample_every != 0 && t.is_multiple_of(self.sample_every)
    }
}

impl StepObserver for TelemetrySink {
    fn on_phase(&mut self, t: Time, phase: Phase, items: usize, elapsed: Duration) {
        let i = phase.index();
        self.phase_items[i].add(items as u64);
        if self.timed(t) {
            let nanos = elapsed.as_nanos() as u64;
            self.phase_nanos[i].record(nanos);
            if self.spans.len() < self.max_spans {
                self.spans.push(PhaseSpan {
                    t,
                    phase,
                    items: items as u64,
                    nanos,
                });
            } else {
                self.dropped_spans += 1;
            }
        }
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        let live = effects.live_after;
        self.steps.inc();
        self.live_hist.record(live as u64);
        self.live_now.set(live as i64);
        self.live_peak.record_max(live as i64);
    }

    fn wants_timing(&self, t: Time) -> bool {
        self.timed(t)
    }
}

/// Metric names used by [`record_run`].
pub mod run_names {
    /// Committed transactions.
    pub const COMMITTED: &str = "txn_committed_total";
    /// Generated transactions.
    pub const GENERATED: &str = "txn_generated_total";
    /// Run violations.
    pub const VIOLATIONS: &str = "violations_total";
    /// Total object edge traversals.
    pub const HOPS: &str = "object_hops_total";
    /// Total weighted communication cost.
    pub const COMM_COST: &str = "comm_cost_total";
    /// Steps between generation and the assigned execution time.
    pub const QUEUE_WAIT: &str = "queue_wait_steps";
    /// Steps between generation and commit.
    pub const TIME_TO_COMMIT: &str = "time_to_commit_steps";
    /// Edge traversals per object over the whole run (from the event
    /// log; absent when event recording was disabled).
    pub const OBJECT_HOPS: &str = "object_hops_per_object";
}

/// Fold a finished run into `registry`: queue-wait and time-to-commit
/// histograms, per-object hop counts (when the event log was recorded),
/// and the headline totals. Complements the live [`TelemetrySink`] —
/// together they populate the full sidecar snapshot.
pub fn record_run(result: &RunResult, registry: &MetricsRegistry) {
    registry
        .counter(run_names::COMMITTED)
        .add(result.metrics.committed as u64);
    registry
        .counter(run_names::GENERATED)
        .add(result.generated.len() as u64);
    registry
        .counter(run_names::VIOLATIONS)
        .add(result.violations.len() as u64);
    registry.counter(run_names::HOPS).add(result.metrics.hops);
    registry
        .counter(run_names::COMM_COST)
        .add(result.metrics.comm_cost);

    let queue_wait = registry.histogram(run_names::QUEUE_WAIT);
    for (txn, exec_at) in result.schedule.iter() {
        if let Some(&generated) = result.generated.get(&txn) {
            queue_wait.record(exec_at.saturating_sub(generated));
        }
    }
    let ttc = registry.histogram(run_names::TIME_TO_COMMIT);
    for (txn, commit) in &result.commits {
        let generated = result.generated.get(txn).copied().unwrap_or(0);
        ttc.record(commit.saturating_sub(generated));
    }
    if !result.events.is_empty() {
        let per_object = registry.histogram(run_names::OBJECT_HOPS);
        let mut hops: std::collections::BTreeMap<dtm_model::ObjectId, u64> =
            std::collections::BTreeMap::new();
        for e in &result.events {
            match e {
                dtm_sim::Event::ObjectCreated { object, .. } => {
                    hops.entry(*object).or_insert(0);
                }
                dtm_sim::Event::Departed { object, .. } => {
                    *hops.entry(*object).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        for (_, n) in hops {
            per_object.record(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_counts_phases_and_live() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut sink = TelemetrySink::new(Arc::clone(&registry)).with_timing_sample(2);
        // t=0 is sampled; t=1 is not.
        assert!(sink.wants_timing(0));
        assert!(!sink.wants_timing(1));
        sink.on_phase(0, Phase::Execute, 3, Duration::from_nanos(50));
        sink.on_phase(1, Phase::Execute, 2, Duration::ZERO);
        sink.on_step_end(&StepEffects {
            t: 0,
            live_after: 5,
            ..StepEffects::default()
        });
        sink.on_step_end(&StepEffects {
            t: 1,
            live_after: 2,
            ..StepEffects::default()
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counters[names::STEPS], 2);
        assert_eq!(snap.counters[&names::phase_items(Phase::Execute)], 5);
        // Only the sampled step recorded nanos.
        assert_eq!(
            snap.histograms[&names::phase_nanos(Phase::Execute)].count,
            1
        );
        assert_eq!(snap.histograms[names::LIVE_SET].count, 2);
        assert_eq!(snap.gauges[names::LIVE_PEAK], 5);
        assert_eq!(snap.gauges[names::LIVE_NOW], 2);
        assert_eq!(sink.spans().len(), 1);
        assert_eq!(sink.spans()[0].items, 3);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut sink = TelemetrySink::new(registry)
            .with_full_timing()
            .with_max_spans(2);
        for t in 0..4 {
            sink.on_phase(t, Phase::Receive, 1, Duration::from_nanos(1));
        }
        assert_eq!(sink.spans().len(), 2);
        assert_eq!(sink.dropped_spans(), 2);
        let spans = sink.take_spans();
        assert_eq!(spans.len(), 2);
        assert!(sink.spans().is_empty());
    }

    #[test]
    fn zero_sample_disables_timing() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = TelemetrySink::new(registry).with_timing_sample(0);
        assert!(!sink.wants_timing(0));
        assert!(!sink.wants_timing(64));
    }
}
