//! Steady-state probe for open-system (streaming) runs.
//!
//! Closed-batch telemetry folds a finished [`dtm_sim::RunResult`] into
//! the registry after the fact ([`crate::record_run`]), which assumes
//! the result retains per-transaction history. Open-system runs retain
//! none (see [`dtm_sim::Retention::Streaming`]), so this module observes
//! the stream as it happens instead: [`SteadyStateProbe`] is a
//! [`StepObserver`] that tracks every live transaction from arrival to
//! retirement and feeds three steady-state signals into a
//! [`MetricsRegistry`]:
//!
//! * **backlog** — the live-set size after each step, as a gauge (with
//!   running peak) and a histogram of per-step sizes;
//! * **sojourn latency** — commit step minus generation step, recorded
//!   into a histogram only for transactions generated at or after the
//!   warmup cutoff, so cold-start transients stay out of the steady-state
//!   percentiles;
//! * **throughput** — commits and aborts since warmup, as counters.
//!
//! The probe's own memory is bounded by the backlog: it holds exactly
//! one map entry per live transaction (inserted on arrival, removed on
//! commit or abort), never one per transaction that ever existed.

use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry};
use dtm_model::{Time, TxnId};
use dtm_sim::{StepEffects, StepObserver};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Metric names registered by [`SteadyStateProbe`].
pub mod steady_names {
    /// Live-set (backlog) size after each step, as a histogram.
    pub const BACKLOG: &str = "steady_backlog_size";
    /// Current backlog, as a gauge.
    pub const BACKLOG_NOW: &str = "steady_backlog_current";
    /// Peak backlog seen, as a gauge.
    pub const BACKLOG_PEAK: &str = "steady_backlog_peak";
    /// Sojourn latency (commit − generation) of post-warmup
    /// transactions.
    pub const SOJOURN: &str = "steady_sojourn_steps";
    /// Post-warmup commits.
    pub const COMMITS: &str = "steady_commits_total";
    /// Post-warmup aborts (missed executions).
    pub const ABORTS: &str = "steady_aborts_total";
    /// Transaction-arena slot high-water mark (set by the harness from
    /// [`dtm_sim::StepKernel::arena_high_water`] — observers cannot see
    /// the arena directly).
    pub const ARENA_SLOT_HWM: &str = "txn_arena_slot_high_water";
}

/// A [`StepObserver`] recording backlog, steady-state sojourn latency
/// and post-warmup throughput for open-system runs. See the module docs.
pub struct SteadyStateProbe {
    warmup: Time,
    backlog: Arc<Histogram>,
    backlog_now: Arc<Gauge>,
    backlog_peak: Arc<Gauge>,
    sojourn: Arc<Histogram>,
    commits: Arc<Counter>,
    aborts: Arc<Counter>,
    /// Generation time of each live transaction. Bounded by the backlog:
    /// entries leave when their transaction commits or aborts.
    live_since: BTreeMap<TxnId, Time>,
}

impl SteadyStateProbe {
    /// Probe feeding `registry`, excluding transactions generated before
    /// `warmup` from the sojourn histogram and throughput counters.
    pub fn new(registry: Arc<MetricsRegistry>, warmup: Time) -> Self {
        SteadyStateProbe {
            warmup,
            backlog: registry.histogram(steady_names::BACKLOG),
            backlog_now: registry.gauge(steady_names::BACKLOG_NOW),
            backlog_peak: registry.gauge(steady_names::BACKLOG_PEAK),
            sojourn: registry.histogram(steady_names::SOJOURN),
            commits: registry.counter(steady_names::COMMITS),
            aborts: registry.counter(steady_names::ABORTS),
            live_since: BTreeMap::new(),
        }
    }

    /// Transactions currently tracked (equals the engine's live count).
    pub fn tracked(&self) -> usize {
        self.live_since.len()
    }

    fn retire(&mut self, id: TxnId, t: Time, committed: bool) {
        let Some(generated) = self.live_since.remove(&id) else {
            return; // arrived before the probe was attached
        };
        if generated < self.warmup {
            return;
        }
        if committed {
            self.commits.inc();
            self.sojourn.record(t.saturating_sub(generated));
        } else {
            self.aborts.inc();
        }
    }
}

impl StepObserver for SteadyStateProbe {
    fn on_phase(
        &mut self,
        _t: Time,
        _phase: dtm_sim::Phase,
        _items: usize,
        _elapsed: std::time::Duration,
    ) {
        // Step-granular probe: everything it needs is in the effects.
    }

    fn wants_timing(&self, _t: Time) -> bool {
        false // never ask the engine to pay for Instant::now
    }

    fn wants_phases(&self, _t: Time) -> bool {
        false // step-granular probe: no phase callbacks needed
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        let t = effects.t;
        for &id in &effects.arrived {
            self.live_since.insert(id, t);
        }
        for &id in &effects.committed {
            self.retire(id, t, true);
        }
        for &id in &effects.aborted {
            self.retire(id, t, false);
        }
        self.backlog.record(effects.live_after as u64);
        self.backlog_now.set(effects.live_after as i64);
        self.backlog_peak.record_max(effects.live_after as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(t: Time) -> StepEffects {
        StepEffects {
            t,
            ..StepEffects::default()
        }
    }

    #[test]
    fn probe_tracks_live_and_records_post_warmup_sojourn() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut probe = SteadyStateProbe::new(Arc::clone(&registry), 5);
        // T0 arrives pre-warmup at t=1; T1 arrives post-warmup at t=6.
        let mut e = fx(1);
        e.arrived.push(TxnId(0));
        e.live_after = 1;
        probe.on_step_end(&e);
        let mut e = fx(6);
        e.arrived.push(TxnId(1));
        e.live_after = 2;
        probe.on_step_end(&e);
        assert_eq!(probe.tracked(), 2);
        // Both commit at t=10: only T1 lands in the histogram.
        let mut e = fx(10);
        e.committed.push(TxnId(0));
        e.committed.push(TxnId(1));
        e.live_after = 0;
        probe.on_step_end(&e);
        assert_eq!(probe.tracked(), 0);
        let snap = registry.snapshot();
        assert_eq!(snap.counters[steady_names::COMMITS], 1);
        let soj = &snap.histograms[steady_names::SOJOURN];
        assert_eq!(soj.count, 1);
        assert_eq!(soj.max, 4); // committed 10 − generated 6
        assert_eq!(snap.gauges[steady_names::BACKLOG_PEAK], 2);
        assert_eq!(snap.gauges[steady_names::BACKLOG_NOW], 0);
    }

    #[test]
    fn probe_counts_aborts_separately_and_stays_bounded() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut probe = SteadyStateProbe::new(Arc::clone(&registry), 0);
        // Churn 100 transactions through, never more than one live.
        for i in 0..100u64 {
            let mut e = fx(i);
            e.arrived.push(TxnId(i));
            e.live_after = 1;
            probe.on_step_end(&e);
            let mut e = fx(i);
            if i % 10 == 0 {
                e.aborted.push(TxnId(i));
            } else {
                e.committed.push(TxnId(i));
            }
            e.live_after = 0;
            probe.on_step_end(&e);
            assert_eq!(probe.tracked(), 0);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters[steady_names::COMMITS], 90);
        assert_eq!(snap.counters[steady_names::ABORTS], 10);
        assert_eq!(snap.histograms[steady_names::SOJOURN].count, 90);
    }

    #[test]
    fn retirements_of_unseen_txns_are_ignored() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut probe = SteadyStateProbe::new(Arc::clone(&registry), 0);
        let mut e = fx(3);
        e.committed.push(TxnId(42)); // arrived before attachment
        probe.on_step_end(&e);
        let snap = registry.snapshot();
        assert_eq!(snap.counters[steady_names::COMMITS], 0);
    }
}
