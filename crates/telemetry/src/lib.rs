//! `dtm-telemetry`: observability for the DTM scheduling workspace.
//!
//! Three layers, usable independently:
//!
//! * [`MetricsRegistry`] — lock-cheap named counters, gauges and
//!   log2-bucketed histograms with a serializable [`MetricsSnapshot`]
//!   (the `--telemetry` sidecar format);
//! * [`TelemetrySink`] — a [`dtm_sim::StepObserver`] feeding the
//!   registry live (phase item counts, sampled wall-clock phase timing,
//!   live-set tracking), plus [`record_run`] to fold a finished
//!   [`dtm_sim::RunResult`] into queue-wait / time-to-commit / hop
//!   histograms;
//! * [`SteadyStateProbe`] — a backlog / sojourn-latency observer for
//!   open-system (streaming) runs, whose results exist only as the
//!   stream flows by ([`dtm_sim::Retention::Streaming`] retains no
//!   per-transaction history to fold afterwards);
//! * [`RunTrace`] — a structured trace joining the engine's event log,
//!   the policy's [`DecisionTrace`] and the sink's sampled
//!   [`PhaseSpan`]s, exportable as JSONL or Chrome `trace_event` JSON
//!   ([`RunTrace::chrome_trace`], Perfetto-loadable, validated by
//!   [`validate_chrome_trace`]);
//! * [`FlightRecorder`] — a bounded ring buffer of per-step records
//!   (O(K) memory regardless of run length) with a deterministic JSONL
//!   [`FlightRecorder::dump`] — the black box for long open-system runs;
//! * [`HealthMonitor`] — typed [`HealthEvent`] watchdogs (overload,
//!   commit stall, starvation, arena drift) over the step stream, with
//!   flight-recorder auto-dump on first event;
//! * [`PeriodicExposer`] — periodic [`MetricsSnapshot`] flushing to JSON
//!   and/or Prometheus text format ([`prometheus_text`]) while a run is
//!   still in flight.
//!
//! Observation is strictly passive: attaching any of these to an engine
//! or policy must never change a run's schedule, events or metrics (the
//! integration suite pins this with golden traces), and the sink's
//! sampled timing keeps attached-mode overhead within the substrate
//! bench's noise floor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
pub mod expose;
pub mod flight;
pub mod health;
pub mod registry;
pub mod sink;
pub mod steady;
pub mod trace;

pub use decision::{decision_trace, Decision, DecisionKind, DecisionTrace, DecisionTraceHandle};
pub use expose::{prometheus_text, PeriodicExposer};
pub use flight::{
    flight_recorder, validate_flight_dump, FlightDumpSummary, FlightRecord, FlightRecorder,
    FlightRecorderHandle, ObservabilityStack, DEFAULT_FLIGHT_K, DEFAULT_FLIGHT_TIMING_SAMPLE,
};
pub use health::{
    health_monitor, HealthConfig, HealthEvent, HealthEventKind, HealthMonitor, HealthMonitorHandle,
};
pub use registry::{
    Counter, Gauge, Histogram, HistogramBucket, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use sink::{names, record_run, run_names, PhaseSpan, TelemetrySink, DEFAULT_TIMING_SAMPLE};
pub use steady::{steady_names, SteadyStateProbe};
pub use trace::{slowest_transactions, validate_chrome_trace, RunTrace};
