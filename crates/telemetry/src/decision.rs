//! Per-policy decision tracing: *why* a transaction got its slot.
//!
//! Every scheduler in `dtm-core` accepts an optional
//! [`DecisionTraceHandle`] and appends one [`Decision`] per choice it
//! makes — the conflict-set size and assigned color for the greedy
//! coloring, bucket level and activation epoch for the bucket schedules,
//! cover layer and report latency for the distributed protocol, queue and
//! tour positions for the baselines. The records are structured (serde)
//! so traces can be exported as JSONL or joined against the event log by
//! transaction id.

use dtm_model::{Time, TxnId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Policy-specific reason a decision was taken.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DecisionKind {
    /// Algorithm 1: the transaction was greedily colored in `H'_t`.
    GreedyColor {
        /// Live conflicting transactions considered (degree in `H'_t`).
        conflicts: usize,
        /// Assigned color (execution offset from decision time).
        color: Time,
        /// The theorem bound on the color at decision time.
        bound: Time,
    },
    /// FIFO baseline: scheduled at the earliest feasible time, in arrival
    /// order.
    FifoQueue {
        /// Position among this step's arrivals (0 = first served).
        queue_position: usize,
    },
    /// TSP baseline: slot assigned by the per-object nearest-neighbor
    /// tour.
    TspTour {
        /// Visit position within this step's batch tour (0 = first).
        tour_position: usize,
    },
    /// Algorithm 2: the arrival was parked in a bucket.
    BucketInsert {
        /// Chosen bucket level `i` (probe `F <= 2^i` succeeded).
        level: u32,
        /// True when every probe failed and the transaction was forced
        /// into the top level.
        overflow: bool,
    },
    /// Algorithm 2: a bucket activation assigned the execution time.
    BucketActivate {
        /// Activated bucket level.
        level: u32,
        /// Activation epoch: `t / 2^level` at activation time.
        epoch: u64,
        /// Transactions scheduled together in this activation.
        batch: usize,
    },
    /// Algorithm 3: the transaction reported to a cluster leader.
    DistReport {
        /// Sparse-cover layer whose cluster covers the dependency radius.
        layer: u32,
        /// Reporting cluster id.
        cluster: u64,
        /// Steps from arrival until the report reached the leader.
        report_latency: Time,
    },
    /// Algorithm 3: a leader parked the transaction in a partial bucket.
    DistInsert {
        /// Partial-bucket level.
        level: u32,
        /// Leader's cluster id.
        cluster: u64,
    },
    /// Algorithm 3: a partial-bucket activation assigned the execution
    /// time.
    DistActivate {
        /// Activated partial-bucket level.
        level: u32,
        /// Leader's cluster id.
        cluster: u64,
        /// Farthest leader-to-home notification distance the schedule
        /// waited for.
        notify: Time,
    },
    /// Randomized backoff: a random offset inside the contention window.
    Backoff {
        /// Window size the offset was drawn from.
        window: Time,
        /// The drawn backoff.
        backoff: Time,
        /// Conflicting constraints considered.
        conflicts: usize,
    },
}

impl DecisionKind {
    /// Stable lowercase tag for reports and trace lines.
    pub fn tag(&self) -> &'static str {
        match self {
            DecisionKind::GreedyColor { .. } => "greedy-color",
            DecisionKind::FifoQueue { .. } => "fifo-queue",
            DecisionKind::TspTour { .. } => "tsp-tour",
            DecisionKind::BucketInsert { .. } => "bucket-insert",
            DecisionKind::BucketActivate { .. } => "bucket-activate",
            DecisionKind::DistReport { .. } => "dist-report",
            DecisionKind::DistInsert { .. } => "dist-insert",
            DecisionKind::DistActivate { .. } => "dist-activate",
            DecisionKind::Backoff { .. } => "backoff",
        }
    }
}

/// One scheduling decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Step at which the decision was taken.
    pub t: Time,
    /// The transaction decided about.
    pub txn: TxnId,
    /// Execution time assigned by this decision (`None` for intermediate
    /// decisions such as bucket insertions).
    pub exec_at: Option<Time>,
    /// Why.
    pub kind: DecisionKind,
}

/// An append-only log of scheduling decisions.
///
/// By default the log is unbounded (suits finite batch runs, where the
/// whole trace is exported afterwards). Open-system runs that only want
/// a recent-decisions tail — e.g. feeding a
/// [`crate::FlightRecorder`] — should use [`DecisionTrace::bounded`],
/// which retains the most recent `cap` decisions and counts evictions.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// Decisions in the order they were taken (oldest first; in bounded
    /// mode, the most recent `cap`).
    pub decisions: Vec<Decision>,
    /// Retention cap (`None` = unbounded).
    cap: Option<usize>,
    /// Decisions evicted by the cap.
    dropped: u64,
}

impl DecisionTrace {
    /// Bounded trace retaining the most recent `cap` decisions
    /// (clamped to ≥ 1). O(cap) memory regardless of run length.
    pub fn bounded(cap: usize) -> Self {
        DecisionTrace {
            decisions: Vec::new(),
            cap: Some(cap.max(1)),
            dropped: 0,
        }
    }

    /// Append one decision, evicting the oldest when at the cap.
    pub fn push(&mut self, d: Decision) {
        if let Some(cap) = self.cap {
            if self.decisions.len() == cap {
                self.decisions.remove(0);
                self.dropped += 1;
            }
        }
        self.decisions.push(d);
    }

    /// Decisions evicted so far (always 0 when unbounded).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Decisions about `txn`, in order.
    pub fn for_txn(&self, txn: TxnId) -> Vec<&Decision> {
        self.decisions.iter().filter(|d| d.txn == txn).collect()
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

/// Shared handle a policy writes through while the caller keeps the other
/// end (the same `Arc<Mutex<_>>` convention as the policy stats handles).
pub type DecisionTraceHandle = Arc<Mutex<DecisionTrace>>;

/// Fresh empty handle.
pub fn decision_trace() -> DecisionTraceHandle {
    Arc::new(Mutex::new(DecisionTrace::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulates_and_filters() {
        let h = decision_trace();
        h.lock().push(Decision {
            t: 0,
            txn: TxnId(1),
            exec_at: None,
            kind: DecisionKind::BucketInsert {
                level: 2,
                overflow: false,
            },
        });
        h.lock().push(Decision {
            t: 4,
            txn: TxnId(1),
            exec_at: Some(9),
            kind: DecisionKind::BucketActivate {
                level: 2,
                epoch: 1,
                batch: 3,
            },
        });
        let t = h.lock();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let mine = t.for_txn(TxnId(1));
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[1].exec_at, Some(9));
        assert_eq!(mine[0].kind.tag(), "bucket-insert");
    }

    #[test]
    fn bounded_trace_keeps_a_recent_tail() {
        let mut t = DecisionTrace::bounded(3);
        for i in 0..7u64 {
            t.push(Decision {
                t: i,
                txn: TxnId(i),
                exec_at: None,
                kind: DecisionKind::FifoQueue {
                    queue_position: i as usize,
                },
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 4);
        let ts: Vec<Time> = t.decisions.iter().map(|d| d.t).collect();
        assert_eq!(ts, vec![4, 5, 6], "most recent tail, oldest first");
        // Unbounded default never drops.
        let mut u = DecisionTrace::default();
        for i in 0..7u64 {
            u.push(Decision {
                t: i,
                txn: TxnId(i),
                exec_at: None,
                kind: DecisionKind::FifoQueue { queue_position: 0 },
            });
        }
        assert_eq!(u.len(), 7);
        assert_eq!(u.dropped(), 0);
    }

    #[test]
    fn decision_roundtrips_through_json() {
        let d = Decision {
            t: 3,
            txn: TxnId(7),
            exec_at: Some(12),
            kind: DecisionKind::GreedyColor {
                conflicts: 2,
                color: 9,
                bound: 20,
            },
        };
        let s = serde_json::to_string(&d).unwrap();
        let back: Decision = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }
}
