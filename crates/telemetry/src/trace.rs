//! Structured trace export: JSONL run traces and Chrome `trace_event`
//! JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! A [`RunTrace`] bundles everything observability captured about one
//! run — the engine's event log, the policy's decision trace, sampled
//! per-phase spans, and the headline metrics — in one serializable
//! value. Export formats:
//!
//! * **JSONL** ([`RunTrace::to_jsonl`] / [`RunTrace::from_jsonl`]): one
//!   typed JSON object per line (`meta`, `txn`, `event`, `phase`,
//!   `decision`, `violation`), stream-appendable and greppable;
//! * **Chrome `trace_event`** ([`RunTrace::chrome_trace`]): one track
//!   per object (hop spans), one track per engine phase (sampled spans),
//!   and instant events for commits, violations and decisions. One
//!   simulated step maps to one microsecond of trace time.
//!
//! The export needs the engine's event log: run with
//! `EngineConfig::record_events = true` (the default).

use crate::decision::{Decision, DecisionTrace};
use crate::sink::PhaseSpan;
use dtm_model::{Time, Transaction, TxnId};
use dtm_sim::{Event, Metrics, Phase, RunResult, Violation};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Everything observability captured about one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunTrace {
    /// Name of the policy that produced the run.
    pub policy: String,
    /// Headline metrics.
    pub metrics: Metrics,
    /// Every transaction seen during the run.
    pub txns: Vec<Transaction>,
    /// The engine's event log.
    pub events: Vec<Event>,
    /// Sampled per-phase spans (empty without a live sink).
    pub phases: Vec<PhaseSpan>,
    /// The policy's decision trace (empty without a handle attached).
    pub decisions: Vec<Decision>,
    /// Run violations.
    pub violations: Vec<Violation>,
}

impl RunTrace {
    /// Assemble a trace from a finished run plus whatever side channels
    /// were attached.
    pub fn from_run(
        result: &RunResult,
        phases: Vec<PhaseSpan>,
        decisions: Option<&DecisionTrace>,
    ) -> Self {
        RunTrace {
            policy: result.policy.clone(),
            metrics: result.metrics.clone(),
            txns: result.txns.values().cloned().collect(),
            events: result.events.clone(),
            phases,
            decisions: decisions.map(|d| d.decisions.clone()).unwrap_or_default(),
            violations: result.violations.clone(),
        }
    }

    /// Rebuild a [`RunResult`] (schedule, commits and generation times
    /// recovered from the event log) — enough for
    /// [`dtm_sim::render_timeline`] and offline re-validation.
    pub fn to_run_result(&self) -> RunResult {
        let mut schedule = dtm_model::Schedule::new();
        let mut commits = BTreeMap::new();
        let mut generated = BTreeMap::new();
        for e in &self.events {
            match *e {
                Event::Scheduled { txn, exec_at, .. } => {
                    schedule.set(txn, exec_at);
                }
                Event::Committed { t, txn, .. } => {
                    commits.insert(txn, t);
                }
                Event::Generated { t, txn, .. } => {
                    generated.insert(txn, t);
                }
                _ => {}
            }
        }
        RunResult {
            schedule,
            commits,
            generated,
            txns: self.txns.iter().map(|t| (t.id, t.clone())).collect(),
            metrics: self.metrics.clone(),
            events: self.events.clone(),
            violations: self.violations.clone(),
            policy: self.policy.clone(),
        }
    }

    /// Serialize as JSONL: a `meta` line followed by one typed line per
    /// transaction, event, phase span, decision and violation.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let line = |out: &mut String, kind: &str, data: Value| {
            let obj = Value::Object(vec![
                ("type".to_string(), Value::Str(kind.to_string())),
                ("data".to_string(), data),
            ]);
            out.push_str(&serde_json::to_string(&obj).expect("trace line serializes"));
            out.push('\n');
        };
        let meta = Value::Object(vec![
            ("policy".to_string(), self.policy.to_value()),
            ("metrics".to_string(), self.metrics.to_value()),
        ]);
        line(&mut out, "meta", meta);
        for t in &self.txns {
            line(&mut out, "txn", t.to_value());
        }
        for e in &self.events {
            line(&mut out, "event", e.to_value());
        }
        for p in &self.phases {
            line(&mut out, "phase", p.to_value());
        }
        for d in &self.decisions {
            line(&mut out, "decision", d.to_value());
        }
        for v in &self.violations {
            line(&mut out, "violation", v.to_value());
        }
        out
    }

    /// Parse a JSONL trace produced by [`RunTrace::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Self, serde_json::Error> {
        let mut trace = RunTrace::default();
        for (i, raw) in text.lines().enumerate() {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(raw)?;
            let kind = v
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| serde_json::Error::msg(format!("line {}: no type", i + 1)))?;
            let data = v
                .get("data")
                .ok_or_else(|| serde_json::Error::msg(format!("line {}: no data", i + 1)))?;
            match kind {
                "meta" => {
                    trace.policy = data
                        .get("policy")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string();
                    if let Some(m) = data.get("metrics") {
                        trace.metrics = serde_json::from_value(m.clone())?;
                    }
                }
                "txn" => trace.txns.push(serde_json::from_value(data.clone())?),
                "event" => trace.events.push(serde_json::from_value(data.clone())?),
                "phase" => trace.phases.push(serde_json::from_value(data.clone())?),
                "decision" => trace.decisions.push(serde_json::from_value(data.clone())?),
                "violation" => trace.violations.push(serde_json::from_value(data.clone())?),
                other => {
                    return Err(serde_json::Error::msg(format!(
                        "line {}: unknown trace line type {other:?}",
                        i + 1
                    )))
                }
            }
        }
        Ok(trace)
    }

    /// Export as Chrome `trace_event` JSON. See the module docs for the
    /// track layout.
    pub fn chrome_trace(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();

        // Process / track metadata.
        for (pid, name) in [
            (PID_OBJECTS, "objects"),
            (PID_PHASES, "engine phases"),
            (PID_RUN, "run"),
        ] {
            events.push(metadata(pid, None, "process_name", name));
        }
        for phase in Phase::ALL {
            events.push(metadata(
                PID_PHASES,
                Some(phase.index() as u64),
                "thread_name",
                phase.name(),
            ));
        }
        for (tid, name) in [
            (TID_COMMITS, "commits"),
            (TID_VIOLATIONS, "violations"),
            (TID_DECISIONS, "decisions"),
        ] {
            events.push(metadata(PID_RUN, Some(tid), "thread_name", name));
        }
        let mut seen_objects = std::collections::BTreeSet::new();

        // Object tracks: creation instants and hop spans.
        for e in &self.events {
            match *e {
                Event::ObjectCreated { t, object, node } => {
                    if seen_objects.insert(object.0) {
                        events.push(metadata(
                            PID_OBJECTS,
                            Some(object.0 as u64),
                            "thread_name",
                            &format!("{object}"),
                        ));
                    }
                    events.push(obj(vec![
                        ("name", Value::Str(format!("created@n{}", node.0))),
                        ("ph", str_v("i")),
                        ("s", str_v("t")),
                        ("ts", (t).to_value()),
                        ("pid", PID_OBJECTS.to_value()),
                        ("tid", (object.0 as u64).to_value()),
                    ]));
                }
                Event::Departed {
                    t,
                    object,
                    from,
                    to,
                    arrive,
                } => {
                    if seen_objects.insert(object.0) {
                        events.push(metadata(
                            PID_OBJECTS,
                            Some(object.0 as u64),
                            "thread_name",
                            &format!("{object}"),
                        ));
                    }
                    events.push(obj(vec![
                        ("name", Value::Str(format!("n{}->n{}", from.0, to.0))),
                        ("ph", str_v("X")),
                        ("ts", t.to_value()),
                        ("dur", (arrive.saturating_sub(t).max(1)).to_value()),
                        ("pid", PID_OBJECTS.to_value()),
                        ("tid", (object.0 as u64).to_value()),
                    ]));
                }
                Event::Committed { t, txn, node } => {
                    events.push(obj(vec![
                        ("name", Value::Str(format!("commit {txn}@n{}", node.0))),
                        ("ph", str_v("i")),
                        ("s", str_v("g")),
                        ("ts", t.to_value()),
                        ("pid", PID_RUN.to_value()),
                        ("tid", TID_COMMITS.to_value()),
                    ]));
                }
                _ => {}
            }
        }

        // One track per phase (sampled spans; one step = one microsecond).
        for p in &self.phases {
            events.push(obj(vec![
                ("name", str_v(p.phase.name())),
                ("ph", str_v("X")),
                ("ts", p.t.to_value()),
                ("dur", 1u64.to_value()),
                ("pid", PID_PHASES.to_value()),
                ("tid", (p.phase.index() as u64).to_value()),
                (
                    "args",
                    obj(vec![
                        ("items", p.items.to_value()),
                        ("nanos", p.nanos.to_value()),
                    ]),
                ),
            ]));
        }

        // Decision instants.
        for d in &self.decisions {
            events.push(obj(vec![
                ("name", Value::Str(format!("{} {}", d.kind.tag(), d.txn))),
                ("ph", str_v("i")),
                ("s", str_v("t")),
                ("ts", d.t.to_value()),
                ("pid", PID_RUN.to_value()),
                ("tid", TID_DECISIONS.to_value()),
                ("args", d.kind.to_value()),
            ]));
        }

        // Violation instants (at the end of the run timeline: violations
        // carry no uniform timestamp, so they are pinned to the makespan).
        for v in &self.violations {
            events.push(obj(vec![
                ("name", Value::Str(format!("{v}"))),
                ("ph", str_v("i")),
                ("s", str_v("g")),
                ("ts", self.metrics.steps.to_value()),
                ("pid", PID_RUN.to_value()),
                ("tid", TID_VIOLATIONS.to_value()),
            ]));
        }

        obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", str_v("ms")),
            (
                "otherData",
                obj(vec![
                    ("policy", self.policy.to_value()),
                    ("makespan", self.metrics.makespan.to_value()),
                ]),
            ),
        ])
    }
}

/// Chrome-trace process id for object tracks.
pub const PID_OBJECTS: u64 = 1;
/// Chrome-trace process id for engine-phase tracks.
pub const PID_PHASES: u64 = 2;
/// Chrome-trace process id for run-level instants.
pub const PID_RUN: u64 = 3;
const TID_COMMITS: u64 = 0;
const TID_VIOLATIONS: u64 = 1;
const TID_DECISIONS: u64 = 2;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn str_v(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn metadata(pid: u64, tid: Option<u64>, kind: &str, name: &str) -> Value {
    obj(vec![
        ("name", str_v(kind)),
        ("ph", str_v("M")),
        ("ts", 0u64.to_value()),
        ("pid", pid.to_value()),
        ("tid", tid.unwrap_or(0).to_value()),
        ("args", obj(vec![("name", str_v(name))])),
    ])
}

/// Check that `value` is structurally valid Chrome `trace_event` JSON
/// (the "JSON object format"): a top-level object with a `traceEvents`
/// array whose members all carry `name`/`ph`/`ts`/`pid`/`tid`, with a
/// non-negative `dur` on every complete (`"X"`) event. Returns the
/// number of trace events on success.
pub fn validate_chrome_trace(value: &Value) -> Result<usize, String> {
    let events = value
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    const PHASES: [&str; 9] = ["B", "E", "X", "i", "I", "C", "M", "b", "e"];
    for (i, e) in events.iter().enumerate() {
        let ctx = |field: &str| format!("traceEvents[{i}]: bad or missing {field}");
        e.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("name"))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("ph"))?;
        if !PHASES.contains(&ph) {
            return Err(format!("traceEvents[{i}]: unknown ph {ph:?}"));
        }
        for field in ["ts", "pid", "tid"] {
            e.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| ctx(field))?;
        }
        if ph == "X" {
            let dur = e
                .get("dur")
                .and_then(Value::as_f64)
                .ok_or_else(|| ctx("dur"))?;
            if dur < 0.0 {
                return Err(format!("traceEvents[{i}]: negative dur"));
            }
        }
    }
    Ok(events.len())
}

/// Per-transaction latency rows for reports: `(txn, generated, commit)`
/// sorted by descending commit latency, truncated to `k`.
pub fn slowest_transactions(trace: &RunTrace, k: usize) -> Vec<(TxnId, Time, Time)> {
    let mut generated: BTreeMap<TxnId, Time> = BTreeMap::new();
    let mut rows: Vec<(TxnId, Time, Time)> = Vec::new();
    for e in &trace.events {
        match *e {
            Event::Generated { t, txn, .. } => {
                generated.insert(txn, t);
            }
            Event::Committed { t, txn, .. } => {
                let g = generated.get(&txn).copied().unwrap_or(0);
                rows.push((txn, g, t));
            }
            _ => {}
        }
    }
    rows.sort_by_key(|&(txn, g, c)| (std::cmp::Reverse(c.saturating_sub(g)), txn));
    rows.truncate(k);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::NodeId;
    use dtm_model::ObjectId;

    fn tiny_trace() -> RunTrace {
        let txn = Transaction::new(TxnId(0), NodeId(1), [ObjectId(0)], 0);
        let events = vec![
            Event::ObjectCreated {
                t: 0,
                object: ObjectId(0),
                node: NodeId(0),
            },
            Event::Generated {
                t: 0,
                txn: TxnId(0),
                node: NodeId(1),
            },
            Event::Scheduled {
                t: 0,
                txn: TxnId(0),
                exec_at: 1,
            },
            Event::Departed {
                t: 0,
                object: ObjectId(0),
                from: NodeId(0),
                to: NodeId(1),
                arrive: 1,
            },
            Event::Arrived {
                t: 1,
                object: ObjectId(0),
                node: NodeId(1),
            },
            Event::Committed {
                t: 1,
                txn: TxnId(0),
                node: NodeId(1),
            },
        ];
        let metrics = Metrics {
            makespan: 1,
            committed: 1,
            steps: 2,
            ..Default::default()
        };
        RunTrace {
            policy: "test".into(),
            metrics,
            txns: vec![txn],
            events,
            phases: vec![PhaseSpan {
                t: 0,
                phase: Phase::Execute,
                items: 1,
                nanos: 42,
            }],
            decisions: vec![Decision {
                t: 0,
                txn: TxnId(0),
                exec_at: Some(1),
                kind: crate::decision::DecisionKind::FifoQueue { queue_position: 0 },
            }],
            violations: vec![],
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let trace = tiny_trace();
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), 1 + 1 + 6 + 1 + 1);
        let back = RunTrace::from_jsonl(&text).unwrap();
        assert_eq!(back.policy, trace.policy);
        assert_eq!(back.txns, trace.txns);
        assert_eq!(back.events, trace.events);
        assert_eq!(back.phases, trace.phases);
        assert_eq!(back.decisions, trace.decisions);
        assert_eq!(back.metrics.makespan, 1);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(RunTrace::from_jsonl("{\"type\":\"wat\",\"data\":{}}").is_err());
        assert!(RunTrace::from_jsonl("not json").is_err());
    }

    #[test]
    fn chrome_trace_is_schema_valid() {
        let trace = tiny_trace();
        let chrome = trace.chrome_trace();
        let n = validate_chrome_trace(&chrome).expect("valid trace_event JSON");
        // Metadata (3 processes + 5 phases + 3 run tracks + 1 object)
        // + 1 created + 1 hop + 1 commit + 1 phase span + 1 decision.
        assert_eq!(n, 12 + 5);
        // Round-trip through text to ensure it is real JSON.
        let text = serde_json::to_string(&chrome).unwrap();
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        validate_chrome_trace(&reparsed).unwrap();
    }

    #[test]
    fn validator_rejects_malformed() {
        let bad: Value = serde_json::from_str("{\"traceEvents\":[{\"name\":\"x\"}]}").unwrap();
        assert!(validate_chrome_trace(&bad).is_err());
        let not_array: Value = serde_json::from_str("{\"traceEvents\":3}").unwrap();
        assert!(validate_chrome_trace(&not_array).is_err());
    }

    #[test]
    fn run_result_reconstruction() {
        let trace = tiny_trace();
        let res = trace.to_run_result();
        assert_eq!(res.commits[&TxnId(0)], 1);
        assert_eq!(res.generated[&TxnId(0)], 0);
        assert_eq!(res.schedule.get(TxnId(0)), Some(1));
        assert_eq!(res.txns.len(), 1);
        assert_eq!(res.policy, "test");
    }

    #[test]
    fn slowest_transactions_orders_by_latency() {
        let mut trace = tiny_trace();
        trace.events.push(Event::Generated {
            t: 0,
            txn: TxnId(1),
            node: NodeId(0),
        });
        trace.events.push(Event::Committed {
            t: 9,
            txn: TxnId(1),
            node: NodeId(0),
        });
        let rows = slowest_transactions(&trace, 5);
        assert_eq!(rows[0], (TxnId(1), 0, 9));
        assert_eq!(rows[1], (TxnId(0), 0, 1));
        assert_eq!(slowest_transactions(&trace, 1).len(), 1);
    }
}
