//! Flight recorder: a bounded black box for long open-system runs.
//!
//! [`FlightRecorder`] is a [`StepObserver`] that retains the most recent
//! K steps of compact per-step records — condensed [`StepEffects`]
//! counts, the live-set gauge, and sampled per-phase wall-clock timings —
//! in a preallocated ring buffer. Memory is O(K) however long the run
//! streams, and a warmed-up step writes into existing ring slots without
//! touching the allocator (pinned, together with the kernel's own
//! zero-alloc idle ticks, by `tests/alloc_steady_state.rs`).
//!
//! When a 10⁶-step run dies at step 742k, [`FlightRecorder::dump`]
//! serializes the window leading up to the failure as deterministic
//! JSONL — a `flight_meta` header, one `flight_step` line per retained
//! step, the tail of the policy's decision trace (`flight_decision`
//! lines, when a [`DecisionTraceHandle`] is attached), and optionally
//! the `health_event` lines a [`crate::HealthMonitor`] appends when it
//! auto-dumps on its first alarm. [`validate_flight_dump`] checks the
//! schema; the `flight_report` binary in `dtm-bench` renders it.

use crate::decision::DecisionTraceHandle;
use dtm_model::Time;
use dtm_sim::{Phase, StepEffects, StepObserver};
use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::sync::Arc;
use std::time::Duration;

/// Default ring capacity (steps retained) when a caller does not choose.
pub const DEFAULT_FLIGHT_K: usize = 1024;

/// Default number of trailing decision-trace entries included in a dump.
pub const DEFAULT_DECISION_TAIL: usize = 32;

/// Default wall-clock timing cadence for the recorder: one timed step
/// per default ring length. Deliberately much sparser than the
/// [`crate::TelemetrySink`]'s [`crate::DEFAULT_TIMING_SAMPLE`]: the
/// recorder rides 10⁶-step runs where clock reads are the dominant
/// observation cost (on hosts without a cheap vDSO clock, one
/// `Instant::now` pair per phase costs more than the whole step), and a
/// long run still times thousands of steps at this cadence.
pub const DEFAULT_FLIGHT_TIMING_SAMPLE: u64 = 1024;

/// One step's condensed record: everything the tick changed, as counts,
/// plus per-phase item totals and (sampled) wall-clock nanoseconds.
/// Fixed-size and `Copy`, so ring writes never touch the heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightRecord {
    /// The step this record describes.
    pub t: Time,
    /// Objects created this step.
    pub created: u32,
    /// Objects completing an edge traversal this step.
    pub delivered: u32,
    /// Transactions generated this step.
    pub arrived: u32,
    /// Transactions assigned an execution time this step.
    pub scheduled: u32,
    /// Transactions committed this step.
    pub committed: u32,
    /// Transactions aborted this step.
    pub aborted: u32,
    /// Objects departing on an edge this step.
    pub departed: u32,
    /// Live-set size after the step.
    pub live_after: u64,
    /// Whether wall-clock phase timing was sampled on this step.
    pub timed: bool,
    /// Per-phase item counts, indexed by [`Phase::index`], derived from
    /// the step's effects (delivered / arrived / scheduled / committed /
    /// departed) — the recorder skips the per-phase callbacks entirely
    /// on unsampled steps.
    pub phase_items: [u32; 5],
    /// Per-phase wall-clock nanoseconds (zero on unsampled steps).
    pub phase_nanos: [u64; 5],
}

/// A [`StepObserver`] retaining the last K steps in O(K) memory. See the
/// module docs.
pub struct FlightRecorder {
    k: usize,
    ring: Vec<FlightRecord>,
    /// Next ring slot to write (oldest record once the ring is full).
    next: usize,
    steps_seen: u64,
    /// Accumulator for the step currently in flight (phases arrive
    /// before the end-of-step effects).
    pending: FlightRecord,
    /// Sample wall-clock timing every this many steps (0 = never).
    timing_sample: u64,
    decisions: Option<DecisionTraceHandle>,
    decision_tail: usize,
}

impl FlightRecorder {
    /// Recorder retaining the last `k` steps (`k` is clamped to ≥ 1).
    /// The ring is preallocated here; recording never grows it.
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        FlightRecorder {
            k,
            ring: Vec::with_capacity(k),
            next: 0,
            steps_seen: 0,
            pending: FlightRecord::default(),
            timing_sample: DEFAULT_FLIGHT_TIMING_SAMPLE,
            decisions: None,
            decision_tail: DEFAULT_DECISION_TAIL,
        }
    }

    /// Sample wall-clock phase timing every `every` steps (0 disables
    /// timing entirely; default [`DEFAULT_FLIGHT_TIMING_SAMPLE`]).
    pub fn with_timing_sample(mut self, every: u64) -> Self {
        self.timing_sample = every;
        self
    }

    /// Include the last `tail` entries of `handle` as `flight_decision`
    /// lines in every dump. Pair this with a bounded trace
    /// ([`crate::DecisionTrace::bounded`]) on long runs so the handle
    /// itself stays O(tail).
    pub fn with_decisions(mut self, handle: DecisionTraceHandle, tail: usize) -> Self {
        self.decisions = Some(handle);
        self.decision_tail = tail;
        self
    }

    /// Ring capacity K.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// The configured timing-sample cadence (0 = never).
    pub fn timing_sample(&self) -> u64 {
        self.timing_sample
    }

    /// Records currently retained (≤ K).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True before the first completed step.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total steps observed over the recorder's lifetime.
    pub fn steps_seen(&self) -> u64 {
        self.steps_seen
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        let split = if self.ring.len() < self.k {
            0
        } else {
            self.next
        };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }

    fn record_to_value(r: &FlightRecord) -> Value {
        Value::Object(vec![
            ("t".into(), r.t.to_value()),
            ("created".into(), r.created.to_value()),
            ("delivered".into(), r.delivered.to_value()),
            ("arrived".into(), r.arrived.to_value()),
            ("scheduled".into(), r.scheduled.to_value()),
            ("committed".into(), r.committed.to_value()),
            ("aborted".into(), r.aborted.to_value()),
            ("departed".into(), r.departed.to_value()),
            ("live_after".into(), r.live_after.to_value()),
            ("timed".into(), Value::Bool(r.timed)),
            ("items".into(), r.phase_items.to_value()),
            ("nanos".into(), r.phase_nanos.to_value()),
        ])
    }

    /// Serialize the retained window as deterministic JSONL: one
    /// `flight_meta` header, one `flight_step` line per record (oldest
    /// first), then up to `decision_tail` trailing `flight_decision`
    /// lines. The output for a given recorder state is byte-identical
    /// across runs and platforms.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let first_t = self.records().next().map(|r| r.t).unwrap_or(0);
        let last_t = self.records().last().map(|r| r.t).unwrap_or(0);
        let meta = Value::Object(vec![
            ("version".into(), 1u64.to_value()),
            ("k".into(), (self.k as u64).to_value()),
            ("steps_seen".into(), self.steps_seen.to_value()),
            ("records".into(), (self.ring.len() as u64).to_value()),
            ("first_t".into(), first_t.to_value()),
            ("last_t".into(), last_t.to_value()),
            ("timing_sample".into(), self.timing_sample.to_value()),
            (
                "decision_tail".into(),
                (self.decision_tail as u64).to_value(),
            ),
        ]);
        push_line(&mut out, "flight_meta", meta);
        for r in self.records() {
            push_line(&mut out, "flight_step", Self::record_to_value(r));
        }
        if let Some(handle) = &self.decisions {
            let trace = handle.lock();
            let skip = trace.decisions.len().saturating_sub(self.decision_tail);
            for d in &trace.decisions[skip..] {
                push_line(&mut out, "flight_decision", d.to_value());
            }
        }
        out
    }
}

/// Append one typed JSONL line (the same `{"type":...,"data":...}` shape
/// as [`crate::RunTrace::to_jsonl`]).
pub(crate) fn push_line(out: &mut String, kind: &str, data: Value) {
    let obj = Value::Object(vec![
        ("type".into(), Value::Str(kind.to_string())),
        ("data".into(), data),
    ]);
    out.push_str(&serde_json::to_string(&obj).expect("flight line serializes"));
    out.push('\n');
}

impl StepObserver for FlightRecorder {
    fn on_phase(&mut self, _t: Time, phase: Phase, _items: usize, elapsed: Duration) {
        // Only the wall-clock nanos come from the phase callbacks; the
        // item counts are reconstructed from the effects at step end, so
        // the recorder declines phases entirely on unsampled steps.
        let i = phase.index();
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.pending.phase_nanos[i] = self.pending.phase_nanos[i].saturating_add(nanos);
        if nanos > 0 {
            self.pending.timed = true;
        }
    }

    fn wants_timing(&self, t: Time) -> bool {
        self.timing_sample != 0 && t.is_multiple_of(self.timing_sample)
    }

    fn wants_phases(&self, t: Time) -> bool {
        // Phases matter only for their timings, sampled like wants_timing.
        self.timing_sample != 0 && t.is_multiple_of(self.timing_sample)
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        let mut rec = self.pending;
        self.pending = FlightRecord::default();
        rec.t = effects.t;
        rec.created = effects.created.len() as u32;
        rec.delivered = effects.delivered.len() as u32;
        rec.arrived = effects.arrived.len() as u32;
        rec.scheduled = effects.scheduled.len() as u32;
        rec.committed = effects.committed.len() as u32;
        rec.aborted = effects.aborted.len() as u32;
        rec.departed = effects.departed.len() as u32;
        rec.live_after = effects.live_after as u64;
        rec.phase_items = [
            rec.delivered,
            rec.arrived,
            rec.scheduled,
            rec.committed,
            rec.departed,
        ];
        if self.ring.len() < self.k {
            self.ring.push(rec);
        } else {
            self.ring[self.next] = rec;
        }
        self.next = (self.next + 1) % self.k;
        self.steps_seen += 1;
    }
}

/// Shared handle: the engine owns one end as an observer, the harness
/// keeps the other to `dump()` after (or during) the run.
pub type FlightRecorderHandle = Arc<Mutex<FlightRecorder>>;

/// Fresh shared recorder retaining the last `k` steps.
pub fn flight_recorder(k: usize) -> FlightRecorderHandle {
    Arc::new(Mutex::new(FlightRecorder::new(k)))
}

/// Recorder + health monitor fused into one observer.
///
/// Attaching the two handles separately works, but costs each of them a
/// mutex round-trip for every `wants_timing` / `wants_phases` probe and
/// `on_step_end` call — six lock operations per step. The stack answers
/// the per-tick probes from a cached copy of the recorder's
/// timing-sample cadence without locking anything, and takes one lock
/// per component only where a callback actually lands. The harness
/// keeps both handles for dumping/reading as usual.
pub struct ObservabilityStack {
    recorder: FlightRecorderHandle,
    monitor: crate::health::HealthMonitorHandle,
    /// Cached [`FlightRecorder::timing_sample`]; answers the kernel's
    /// per-tick probes lock-free. The cadence is fixed at construction
    /// (the builder consumes the recorder), so the cache cannot go
    /// stale.
    timing_sample: u64,
}

impl ObservabilityStack {
    /// Fuse `recorder` and `monitor` into one observer.
    pub fn new(
        recorder: FlightRecorderHandle,
        monitor: crate::health::HealthMonitorHandle,
    ) -> Self {
        let timing_sample = recorder.lock().timing_sample();
        ObservabilityStack {
            recorder,
            monitor,
            timing_sample,
        }
    }
}

impl StepObserver for ObservabilityStack {
    fn on_phase(&mut self, t: Time, phase: Phase, items: usize, elapsed: Duration) {
        // Only the recorder consumes phases (sampled steps only).
        self.recorder.lock().on_phase(t, phase, items, elapsed);
    }

    fn wants_timing(&self, t: Time) -> bool {
        self.timing_sample != 0 && t.is_multiple_of(self.timing_sample)
    }

    fn wants_phases(&self, t: Time) -> bool {
        self.timing_sample != 0 && t.is_multiple_of(self.timing_sample)
    }

    fn on_step_end(&mut self, effects: &StepEffects) {
        self.recorder.lock().on_step_end(effects);
        self.monitor.lock().on_step_end(effects);
    }
}

/// What a validated flight dump contains.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightDumpSummary {
    /// Ring capacity the recorder ran with.
    pub k: u64,
    /// Total steps the recorder observed.
    pub steps_seen: u64,
    /// `flight_step` lines in the dump.
    pub records: usize,
    /// First retained step.
    pub first_t: Time,
    /// Last retained step.
    pub last_t: Time,
    /// Trailing `flight_decision` lines.
    pub decisions: usize,
    /// Appended `health_event` lines (present in auto-dumps).
    pub health_events: usize,
}

fn req_u64(data: &Value, key: &str, line: usize) -> Result<u64, String> {
    data.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line}: missing or non-integer field {key:?}"))
}

/// Validate a JSONL flight dump produced by [`FlightRecorder::dump`]
/// (possibly with `health_event` lines appended by a
/// [`crate::HealthMonitor`] auto-dump). Checks the header, the
/// step-record schema (strictly increasing `t`, 5-element phase arrays),
/// section ordering, and record-count consistency. Returns a summary on
/// success; any structural problem is an `Err` with the offending line.
pub fn validate_flight_dump(text: &str) -> Result<FlightDumpSummary, String> {
    let mut summary = FlightDumpSummary::default();
    // Sections must appear in dump order: meta, steps, decisions, events.
    let mut section = 0usize;
    let mut last_t: Option<Time> = None;
    let mut saw_meta = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(raw).map_err(|e| format!("line {line}: {e}"))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {line}: no \"type\" field"))?;
        let data = v
            .get("data")
            .ok_or_else(|| format!("line {line}: no \"data\" field"))?;
        let rank = match kind {
            "flight_meta" => 0,
            "flight_step" => 1,
            "flight_decision" => 2,
            "health_event" => 3,
            other => return Err(format!("line {line}: unknown line type {other:?}")),
        };
        if rank < section {
            return Err(format!("line {line}: {kind} line out of section order"));
        }
        section = rank;
        match kind {
            "flight_meta" => {
                if saw_meta {
                    return Err(format!("line {line}: duplicate flight_meta"));
                }
                saw_meta = true;
                summary.k = req_u64(data, "k", line)?;
                summary.steps_seen = req_u64(data, "steps_seen", line)?;
                summary.first_t = req_u64(data, "first_t", line)?;
                summary.last_t = req_u64(data, "last_t", line)?;
                let records = req_u64(data, "records", line)?;
                if records > summary.k {
                    return Err(format!("line {line}: records {records} > k {}", summary.k));
                }
                if records > summary.steps_seen {
                    return Err(format!(
                        "line {line}: records {records} > steps_seen {}",
                        summary.steps_seen
                    ));
                }
            }
            "flight_step" => {
                if !saw_meta {
                    return Err(format!("line {line}: flight_step before flight_meta"));
                }
                let t = req_u64(data, "t", line)?;
                if let Some(prev) = last_t {
                    if t <= prev {
                        return Err(format!("line {line}: step t {t} not after {prev}"));
                    }
                }
                last_t = Some(t);
                for key in [
                    "created",
                    "delivered",
                    "arrived",
                    "scheduled",
                    "committed",
                    "aborted",
                    "departed",
                    "live_after",
                ] {
                    req_u64(data, key, line)?;
                }
                if !matches!(data.get("timed"), Some(Value::Bool(_))) {
                    return Err(format!("line {line}: missing boolean field \"timed\""));
                }
                for key in ["items", "nanos"] {
                    let arr = data
                        .get(key)
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("line {line}: missing array field {key:?}"))?;
                    if arr.len() != Phase::ALL.len() {
                        return Err(format!(
                            "line {line}: {key:?} has {} entries, expected {}",
                            arr.len(),
                            Phase::ALL.len()
                        ));
                    }
                    if arr.iter().any(|e| e.as_u64().is_none()) {
                        return Err(format!("line {line}: non-integer entry in {key:?}"));
                    }
                }
                summary.records += 1;
            }
            "flight_decision" => {
                req_u64(data, "t", line)?;
                if data.get("txn").is_none() || data.get("kind").is_none() {
                    return Err(format!("line {line}: decision missing txn/kind"));
                }
                summary.decisions += 1;
            }
            "health_event" => {
                req_u64(data, "t", line)?;
                if data.get("kind").is_none() {
                    return Err(format!("line {line}: health event missing kind"));
                }
                summary.health_events += 1;
            }
            _ => unreachable!("kind matched above"),
        }
    }
    if !saw_meta {
        return Err("dump has no flight_meta line (empty or truncated input)".to_string());
    }
    let expected = summary.k.min(summary.steps_seen) as usize;
    if summary.records != expected {
        return Err(format!(
            "dump holds {} flight_step lines, meta promises {expected}",
            summary.records
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_model::TxnId;

    fn fx(t: Time, arrived: usize, committed: usize, live: usize) -> StepEffects {
        let mut e = StepEffects {
            t,
            live_after: live,
            ..StepEffects::default()
        };
        for i in 0..arrived {
            e.arrived.push(TxnId(i as u64));
        }
        for i in 0..committed {
            e.committed.push(TxnId(i as u64));
        }
        e
    }

    #[test]
    fn ring_retains_last_k_steps_in_order() {
        let mut rec = FlightRecorder::new(4).with_timing_sample(0);
        for t in 0..10u64 {
            rec.on_step_end(&fx(t, 1, 0, t as usize));
        }
        assert_eq!(rec.capacity(), 4);
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.steps_seen(), 10);
        let ts: Vec<Time> = rec.records().map(|r| r.t).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
        let last = rec.records().last().expect("nonempty");
        assert_eq!(last.arrived, 1);
        assert_eq!(last.live_after, 9);
        // Items are derived from the effects: one generate-phase item.
        assert_eq!(last.phase_items[Phase::Generate.index()], 1);
        assert_eq!(last.phase_items[Phase::Schedule.index()], 0);
        assert!(!last.timed);
    }

    #[test]
    fn pending_phase_nanos_reset_each_step() {
        let mut rec = FlightRecorder::new(8);
        rec.on_phase(0, Phase::Receive, 5, Duration::from_nanos(7));
        rec.on_step_end(&fx(0, 0, 0, 0));
        rec.on_phase(1, Phase::Receive, 2, Duration::ZERO);
        rec.on_step_end(&fx(1, 0, 0, 0));
        let records: Vec<&FlightRecord> = rec.records().collect();
        assert_eq!(records[0].phase_nanos[0], 7);
        assert!(records[0].timed);
        assert_eq!(records[1].phase_nanos[0], 0);
        assert!(!records[1].timed);
    }

    #[test]
    fn timing_sample_controls_wants_timing_and_phases() {
        let rec = FlightRecorder::new(2).with_timing_sample(64);
        assert!(rec.wants_timing(0));
        assert!(!rec.wants_timing(1));
        assert!(rec.wants_timing(64));
        assert!(rec.wants_phases(0));
        assert!(!rec.wants_phases(1));
        let never = FlightRecorder::new(2).with_timing_sample(0);
        assert!(!never.wants_timing(0));
        assert!(!never.wants_phases(0));
    }

    #[test]
    fn dump_roundtrips_through_validator() {
        let handle = crate::decision_trace();
        for i in 0..5u64 {
            handle.lock().push(crate::Decision {
                t: i,
                txn: TxnId(i),
                exec_at: Some(i + 1),
                kind: crate::DecisionKind::FifoQueue { queue_position: 0 },
            });
        }
        let mut rec = FlightRecorder::new(3).with_decisions(Arc::clone(&handle), 2);
        for t in 0..7u64 {
            rec.on_step_end(&fx(t, 1, 1, 2));
        }
        let dump = rec.dump();
        let s = validate_flight_dump(&dump).expect("dump validates");
        assert_eq!(s.k, 3);
        assert_eq!(s.steps_seen, 7);
        assert_eq!(s.records, 3);
        assert_eq!(s.first_t, 4);
        assert_eq!(s.last_t, 6);
        assert_eq!(s.decisions, 2, "only the tail is dumped");
        assert_eq!(s.health_events, 0);
        // Deterministic: two dumps of the same state are byte-identical.
        assert_eq!(dump, rec.dump());
    }

    #[test]
    fn validator_rejects_structural_damage() {
        let mut rec = FlightRecorder::new(2);
        rec.on_step_end(&fx(0, 0, 0, 0));
        rec.on_step_end(&fx(1, 0, 0, 0));
        let good = rec.dump();
        assert!(validate_flight_dump(&good).is_ok());

        // Empty input.
        assert!(validate_flight_dump("").is_err());
        // Truncated mid-line.
        let cut = &good[..good.len() - 10];
        assert!(validate_flight_dump(cut).is_err());
        // Missing meta (drop the first line).
        let body: String = good.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(validate_flight_dump(&body).is_err());
        // Non-JSON garbage.
        assert!(validate_flight_dump("not json\n").is_err());
        // Out-of-order steps.
        let mut lines: Vec<&str> = good.lines().collect();
        lines.swap(1, 2);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(validate_flight_dump(&swapped).is_err());
    }

    #[test]
    fn ring_never_allocates_once_full() {
        let mut rec = FlightRecorder::new(16);
        for t in 0..16u64 {
            rec.on_step_end(&fx(t, 0, 0, 0));
        }
        let cap_before = rec.ring.capacity();
        for t in 16..10_000u64 {
            rec.on_step_end(&fx(t, 2, 2, 3));
        }
        assert_eq!(rec.ring.capacity(), cap_before);
        assert_eq!(rec.len(), 16);
        assert_eq!(rec.steps_seen(), 10_000);
    }
}
