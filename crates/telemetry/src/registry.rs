//! Lock-cheap metrics: counters, gauges and log2-bucketed histograms.
//!
//! Handles returned by the [`MetricsRegistry`] are `Arc`-shared atomics:
//! registration and snapshotting take the registry lock, but every update
//! on a handle is a single atomic operation, so instrumented hot paths
//! never contend on the registry itself. All metrics are cumulative over
//! the registry's lifetime; [`MetricsRegistry::snapshot`] freezes them
//! into a serde-serializable [`MetricsSnapshot`].

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (e.g. current live-set size).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (peak tracking).
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i - 1]`; 64 covers the whole `u64` range.
const BUCKETS: usize = 65;

/// Log2-bucketed histogram of `u64` samples.
///
/// Bucketing is exponential, which suits the long-tailed quantities this
/// workspace measures (queue waits, hop counts, live-set sizes): relative
/// resolution is constant across 19 orders of magnitude at 65 fixed
/// buckets, and recording is one atomic add plus min/max updates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of `v`: 0 for 0, else `1 + floor(log2 v)`.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freeze into a serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let (lo, hi) = if i == 0 {
                (0, 0)
            } else {
                (
                    1u64 << (i - 1),
                    (1u64 << (i - 1)).wrapping_mul(2).wrapping_sub(1),
                )
            };
            buckets.push(HistogramBucket { lo, hi, count: c });
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty histogram bucket.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Smallest value the bucket holds.
    pub lo: u64,
    /// Largest value the bucket holds (inclusive).
    pub hi: u64,
    /// Samples recorded in `[lo, hi]`.
    pub count: u64,
}

/// Frozen histogram state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty buckets in ascending value order.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named metrics, registered on first use.
///
/// The registry is cheap to share (`Arc<MetricsRegistry>`); hot paths
/// should hold on to the `Arc<Counter>` / `Arc<Histogram>` handles rather
/// than re-looking them up by name.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Freeze every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Serializable dump of a whole registry at one moment.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Pretty JSON rendering (the sidecar file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let r = MetricsRegistry::new();
        let c = r.counter("commits");
        c.inc();
        c.add(4);
        // Re-registration returns the same handle.
        assert_eq!(r.counter("commits").get(), 5);
        let g = r.gauge("live");
        g.set(7);
        g.add(-3);
        g.record_max(2);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let h = Histogram::default();
        for v in [0, 1, 2, 3, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 906);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 900);
        // Buckets: {0}, {1}, {2,3}, {512..1023}.
        assert_eq!(s.buckets.len(), 4);
        assert_eq!(
            s.buckets[0],
            HistogramBucket {
                lo: 0,
                hi: 0,
                count: 1
            }
        );
        assert_eq!(
            s.buckets[2],
            HistogramBucket {
                lo: 2,
                hi: 3,
                count: 2
            }
        );
        assert_eq!(
            s.buckets[3],
            HistogramBucket {
                lo: 512,
                hi: 1023,
                count: 1
            }
        );
        assert!((s.mean() - 181.2).abs() < 1e-9);
    }

    #[test]
    fn bucket_index_boundaries() {
        // Zero gets its own bucket; otherwise bucket `1 + floor(log2 v)`.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // Every power of two opens a new bucket; its predecessor closes the
        // previous one.
        for shift in 1..64u32 {
            let p = 1u64 << shift;
            assert_eq!(bucket_index(p), shift as usize + 1, "at 2^{shift}");
            assert_eq!(bucket_index(p - 1), shift as usize, "at 2^{shift} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        // The largest index fits the fixed bucket array.
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn concurrent_recording_counts_exactly() {
        use rayon::prelude::*;

        // Hammer one histogram from the real thread pool: every sample must
        // land (count, sum and per-bucket tallies are all atomic adds, so
        // nothing may be lost to a race).
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 10_000;
        let h = Histogram::default();
        rayon::with_num_threads(8, || {
            (0..WRITERS).into_par_iter().for_each(|w| {
                for i in 0..PER_WRITER {
                    h.record(w * PER_WRITER + i);
                }
            });
        });
        let s = h.snapshot();
        assert_eq!(s.count, WRITERS * PER_WRITER);
        let n = WRITERS * PER_WRITER;
        assert_eq!(s.sum, n * (n - 1) / 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, n - 1);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), n);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        r.gauge("b").set(-2);
        r.histogram("c").record(17);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counters["a"], 3);
        assert_eq!(back.gauges["b"], -2);
        assert_eq!(back.histograms["c"].count, 1);
    }
}
