//! # dtm-offline
//!
//! Offline *batch* scheduling substrate for distributed transactional
//! memory, playing the role of the algorithms of Busch et al., *"Fast
//! scheduling in distributed transactional memory"* (SPAA 2017) — cited as
//! \[4\] by the IPDPS 2020 paper this workspace reproduces — plus the
//! baselines the paper discusses (TSP-tour scheduling \[30\], generic list
//! scheduling) and certified makespan **lower bounds** used to report
//! conservative competitive-ratio estimates.
//!
//! The online bucket scheduler (Algorithm 2 of the paper) is *parametric*
//! in an offline batch scheduler `𝒜` with approximation ratio `b_𝒜`; any
//! implementor of [`BatchScheduler`] can be plugged in. The paper's two
//! "basic modifications" (Section IV-A) are honored structurally:
//!
//! 1. *scheduling around already-scheduled transactions*: every scheduler
//!    receives a [`BatchContext`] carrying the fixed schedule and projects
//!    object availability after it ([`object_release`]);
//! 2. *the suffix property*: all schedulers here are earliest-feasible
//!    list-type schedules, whose suffixes are themselves feasible
//!    earliest-feasible schedules from the suffix's object positions.
//!
//! Schedulers:
//! * [`ListScheduler`] — generic earliest-feasible list scheduling for
//!   arbitrary graphs (also the FIFO online baseline's engine);
//! * [`CliqueScheduler`] — conflict-graph coloring for cliques / uniform
//!   small-diameter graphs (O(k·l_max) makespan);
//! * [`LineScheduler`] — coordinate sweep for line graphs;
//! * [`ClusterScheduler`] — two-phase intra-clique coloring + cross-clique
//!   randomized list scheduling for cluster graphs;
//! * [`StarScheduler`] — randomized-restart ray-grouped scheduling for
//!   star graphs;
//! * [`TspScheduler`] — the Zhang-et-al.-style per-object nearest-neighbor
//!   tour baseline;
//! * [`ExactScheduler`] — exhaustive optimum for small instances, used to
//!   measure the true `b_𝒜` of every heuristic (experiment E13).
//!
//! # Example
//!
//! ```
//! use dtm_graph::{topology, NodeId};
//! use dtm_model::{ObjectId, Transaction, TxnId};
//! use dtm_offline::{validate_batch_schedule, BatchContext, BatchScheduler, LineScheduler};
//!
//! let net = topology::line(16);
//! let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
//! let pending = vec![
//!     Transaction::new(TxnId(0), NodeId(12), [ObjectId(0)], 0),
//!     Transaction::new(TxnId(1), NodeId(3), [ObjectId(0)], 0),
//! ];
//! let schedule = LineScheduler.schedule(&net, &pending, &ctx);
//! // The sweep serves node 3 first, then node 12.
//! assert!(schedule.get(TxnId(1)) < schedule.get(TxnId(0)));
//! validate_batch_schedule(&net, &pending, &ctx, &schedule).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clique;
pub mod cluster;
pub mod exact;
pub mod line;
pub mod list;
pub mod lower_bound;
pub mod ratio;
pub mod star;
pub mod traits;
pub mod tsp;

pub use clique::CliqueScheduler;
pub use cluster::ClusterScheduler;
pub use exact::ExactScheduler;
pub use line::LineScheduler;
pub use list::{ListOrder, ListScheduler};
pub use lower_bound::{batch_lower_bound, object_lower_bound, LowerBoundParts};
pub use ratio::{competitive_ratio, RatioReport};
pub use star::StarScheduler;
pub use traits::{object_release, validate_batch_schedule, BatchContext, BatchScheduler};
pub use tsp::TspScheduler;
