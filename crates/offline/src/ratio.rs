//! Conservative competitive-ratio estimation for online runs.
//!
//! The paper (Section II) defines, for a schedule `S` at time `t` with live
//! transactions `T_t`, the ratio `r_S(t) = max_{T in T_t} (t_T - t) / t*`
//! where `t*` is the optimal time to execute all of `T_t` given current
//! object positions, and `r_S = sup_t r_S(t)`.
//!
//! `t*` is NP-hard, so we divide by [`batch_lower_bound`] evaluated on the
//! live set with object positions reconstructed from the run's event log —
//! a provable lower bound on `t*`. The resulting ratio **over-estimates**
//! the true competitive ratio, which makes every "measured ratio tracks
//! the theorem" conclusion conservative.
//!
//! Sampling: `r_S(t)` is evaluated at every time step where new
//! transactions were generated (the suprema of `(t_T - t)` over a fixed
//! live set are attained right after arrivals).

use crate::lower_bound::batch_lower_bound;
use crate::traits::BatchContext;
use dtm_graph::{Network, NodeId};
use dtm_model::{ObjectId, Time, Transaction, TxnId};
use dtm_sim::{Event, RunResult};
use std::collections::BTreeMap;

/// Competitive-ratio estimate of a run.
#[derive(Clone, Debug, Default)]
pub struct RatioReport {
    /// `sup_t r_S(t)` over the sampled times.
    pub max_ratio: f64,
    /// Per-sample `(t, r_S(t), lower_bound, worst_latency)`.
    pub samples: Vec<(Time, f64, Time, Time)>,
}

/// Estimate the competitive ratio of `result` on `network`.
///
/// Requires the run to have been recorded with events enabled and to have
/// no violations.
pub fn competitive_ratio(network: &Network, result: &RunResult) -> RatioReport {
    assert!(
        result.ok(),
        "competitive ratio requires a clean run; violations: {:?}",
        result.violations
    );
    // Sample times: generation steps.
    let mut sample_times: Vec<Time> = result.generated.values().copied().collect();
    sample_times.sort_unstable();
    sample_times.dedup();

    // Forward replay of object positions. Position at time t = state after
    // processing all events with time <= t (arrivals at t land before the
    // live set is evaluated, matching the engine's step order).
    let mut positions: BTreeMap<ObjectId, (NodeId, Time)> = BTreeMap::new();
    let mut event_idx = 0usize;

    // Live set management: transactions sorted by generation time.
    let mut txns_by_gen: Vec<&Transaction> = result.txns.values().collect();
    txns_by_gen.sort_by_key(|t| (t.generated_at, t.id));

    let commit_of = |id: TxnId| -> Time {
        result
            .commits
            .get(&id)
            .copied()
            .expect("clean run commits everything") // dtm-lint: allow(C1) -- caller contract: ratios are computed on violation-free runs where every txn commits
    };

    let mut report = RatioReport::default();
    for &t in &sample_times {
        // Advance the replay to time t inclusive.
        while event_idx < result.events.len() && result.events[event_idx].time() <= t {
            match result.events[event_idx] {
                Event::ObjectCreated { object, node, .. } => {
                    positions.insert(object, (node, 0));
                }
                Event::Departed {
                    object, to, arrive, ..
                } => {
                    positions.insert(object, (to, arrive));
                }
                Event::Arrived { object, node, t } => {
                    positions.insert(object, (node, t));
                }
                _ => {}
            }
            event_idx += 1;
        }
        // Live set at t.
        let live: Vec<Transaction> = txns_by_gen
            .iter()
            .filter(|x| x.generated_at <= t && commit_of(x.id) >= t)
            .map(|x| (*x).clone())
            .collect();
        if live.is_empty() {
            continue;
        }
        let worst_latency = live
            .iter()
            .map(|x| commit_of(x.id).saturating_sub(t))
            .max()
            .unwrap_or(0);
        let ctx = BatchContext {
            now: t,
            object_avail: positions
                .iter()
                .map(|(&o, &(node, ready))| (o, (node, ready.max(t))))
                .collect(),
            fixed: Vec::new(),
        };
        let lb = batch_lower_bound(network, &live, &ctx).combined();
        let ratio = worst_latency as f64 / lb as f64;
        report.samples.push((t, ratio, lb, worst_latency));
        if ratio > report.max_ratio {
            report.max_ratio = ratio;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;
    use dtm_model::{Instance, ObjectInfo, Schedule, TraceSource};
    use dtm_sim::{run_policy, EngineConfig, SchedulingPolicy, SystemView};

    struct Fixed(BTreeMap<TxnId, Time>);
    impl SchedulingPolicy for Fixed {
        fn step(&mut self, _: &SystemView<'_>, arrivals: &[TxnId]) -> Schedule {
            arrivals
                .iter()
                .filter_map(|id| self.0.get(id).map(|&t| (*id, t)))
                .collect()
        }
        fn name(&self) -> String {
            "fixed".into()
        }
    }

    #[test]
    fn perfect_schedule_has_low_ratio() {
        let net = topology::line(8);
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![Transaction::new(TxnId(0), NodeId(7), [ObjectId(0)], 0)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 7)].into()),
            EngineConfig::default(),
        );
        res.expect_ok();
        let report = competitive_ratio(&net, &res);
        // Latency 7, lower bound 7: ratio exactly 1.
        assert_eq!(report.max_ratio, 1.0);
        assert_eq!(report.samples.len(), 1);
    }

    #[test]
    fn padded_schedule_has_higher_ratio() {
        let net = topology::line(8);
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![Transaction::new(TxnId(0), NodeId(7), [ObjectId(0)], 0)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 21)].into()), // 3x slower than necessary
            EngineConfig::default(),
        );
        res.expect_ok();
        let report = competitive_ratio(&net, &res);
        assert_eq!(report.max_ratio, 3.0);
    }

    #[test]
    #[should_panic(expected = "clean run")]
    fn rejects_dirty_runs() {
        let net = topology::line(4);
        let inst = Instance::new(
            vec![ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![Transaction::new(TxnId(0), NodeId(3), [ObjectId(0)], 0)],
        );
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            Fixed([(TxnId(0), 1)].into()), // infeasible
            EngineConfig::default(),
        );
        let _ = competitive_ratio(&net, &res);
    }
}
