//! Two-phase batch scheduler for cluster graphs (α cliques of β nodes,
//! bridge edges of weight γ >= β).
//!
//! Phase 1 handles *local* transactions — those whose objects all reside in
//! their own clique — with per-clique conflict coloring (distances inside a
//! clique are 1). Phase 2 schedules the remaining cross-clique
//! transactions with randomized-restart list scheduling on top of phase 1,
//! mirroring the randomized cluster algorithm of SPAA'17 \[4\]
//! (Section IV-D notes those algorithms are randomized and are re-run on
//! bad events; restarts play that role here).

use crate::list::list_schedule_in_order;
use crate::traits::{object_release, BatchContext, BatchScheduler};
use dtm_graph::{Network, Structured};
use dtm_model::{Schedule, Time, Transaction};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Two-phase cluster-graph scheduler.
#[derive(Clone, Debug)]
pub struct ClusterScheduler {
    /// Randomized restarts for the cross-clique phase (best kept).
    pub restarts: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterScheduler {
    fn default() -> Self {
        ClusterScheduler {
            restarts: 4,
            seed: 0,
        }
    }
}

impl ClusterScheduler {
    fn clique_of(structured: &Structured, node: dtm_graph::NodeId) -> u32 {
        match structured {
            Structured::Cluster { clique_size, .. } => node.0 / clique_size,
            _ => unreachable!("guarded by schedule()"),
        }
    }
}

impl BatchScheduler for ClusterScheduler {
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule {
        let structured = network
            .structured()
            .filter(|s| matches!(s, Structured::Cluster { .. }))
            .cloned()
            .unwrap_or_else(|| {
                panic!(
                    "ClusterScheduler requires a cluster topology, got {}",
                    network.name()
                )
            });
        let releases = object_release(network, ctx);

        // Split pending into local (objects all in own clique) and cross.
        let mut local: BTreeMap<u32, Vec<&Transaction>> = BTreeMap::new();
        let mut cross: Vec<&Transaction> = Vec::new();
        for t in pending {
            let home_clique = Self::clique_of(&structured, t.home);
            let is_local = t.objects().all(|o| {
                releases
                    .get(&o)
                    .is_some_and(|&(node, _)| Self::clique_of(&structured, node) == home_clique)
            });
            if is_local {
                local.entry(home_clique).or_default().push(t);
            } else {
                cross.push(t);
            }
        }

        // Phase 1: per-clique earliest-feasible scheduling in conflict-
        // aware order (hot objects first so chains start early). Cliques
        // are independent — no shared objects by construction of `local` —
        // so the same timeline works for all of them in parallel.
        let mut phase1 = Schedule::new();
        for txns in local.values() {
            let mut order = txns.clone();
            order.sort_by_key(|t| (std::cmp::Reverse(t.k()), t.id));
            let s = list_schedule_in_order(network, &order, ctx);
            phase1.merge(&s);
        }

        if cross.is_empty() {
            return phase1;
        }

        // Phase 2: cross-clique transactions on top of phase 1 as fixed
        // context; randomized restarts keep the best order. Orders are
        // grouped by clique so object bridge crossings batch up.
        let mut ctx2 = ctx.clone();
        for txns in local.values() {
            for t in txns {
                ctx2.fixed
                    // dtm-lint: allow(C1) -- BatchScheduler contract: schedule() assigns every pending transaction
                    .push(((**t).clone(), phase1.get(t.id).expect("scheduled")));
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut best: Option<Schedule>;
        let mut best_end: Time;
        // Plain arrival order as a guaranteed candidate (never worse than
        // the FIFO baseline on the cross-clique phase).
        {
            let mut order = cross.clone();
            order.sort_by_key(|t| (t.generated_at, t.id));
            let s = list_schedule_in_order(network, &order, &ctx2);
            best_end = s.makespan_end().unwrap_or(ctx.now);
            best = Some(s);
        }
        for _ in 0..self.restarts.max(1) {
            // Random clique order, random order within cliques.
            let mut cliques: Vec<u32> = cross
                .iter()
                .map(|t| Self::clique_of(&structured, t.home))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            cliques.shuffle(&mut rng);
            let rank: BTreeMap<u32, usize> =
                cliques.iter().enumerate().map(|(i, &c)| (c, i)).collect();
            let mut order = cross.clone();
            order.shuffle(&mut rng);
            order.sort_by_key(|t| rank[&Self::clique_of(&structured, t.home)]);
            let s = list_schedule_in_order(network, &order, &ctx2);
            let end = s.makespan_end().unwrap_or(ctx.now);
            if end < best_end {
                best_end = end;
                best = Some(s);
            }
        }
        let mut out = phase1;
        out.merge(&best.expect("at least one restart")); // dtm-lint: allow(C1) -- `best` is seeded with the arrival-order candidate before the restart loop
        out
    }

    fn name(&self) -> String {
        format!("cluster(restarts={})", self.restarts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_batch_schedule;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{ObjectId, TxnId};
    use proptest::prelude::*;
    use rand::Rng;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    /// cluster(3, 4, 5): nodes 0..12, bridges 0, 4, 8.
    fn net3x4() -> Network {
        topology::cluster(3, 4, 5)
    }

    #[test]
    fn local_txns_run_in_parallel_across_cliques() {
        let net = net3x4();
        let ctx = BatchContext::fresh([
            (ObjectId(0), NodeId(1)),
            (ObjectId(1), NodeId(5)),
            (ObjectId(2), NodeId(9)),
        ]);
        let pending = vec![txn(0, 2, &[0]), txn(1, 6, &[1]), txn(2, 10, &[2])];
        let sched = ClusterScheduler::default().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // Purely local: everything done by one intra-clique hop.
        assert!(sched.makespan_end().unwrap() <= 1);
    }

    #[test]
    fn cross_clique_pays_bridge() {
        let net = net3x4();
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(1))]);
        let pending = vec![txn(0, 6, &[0])];
        let sched = ClusterScheduler::default().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // 1 (to bridge) + 5 (bridge) + 1 (into clique) = 7.
        assert_eq!(sched.makespan_end(), Some(7));
    }

    #[test]
    fn mixed_local_and_cross() {
        let net = net3x4();
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(1)), (ObjectId(1), NodeId(5))]);
        let pending = vec![
            txn(0, 2, &[0]), // local in clique 0
            txn(1, 6, &[0]), // cross: needs o0 from clique 0
            txn(2, 7, &[1]), // local in clique 1
        ];
        let sched = ClusterScheduler::default().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // The cross txn runs after the local holder released the object.
        assert!(sched.get(TxnId(1)).unwrap() > sched.get(TxnId(0)).unwrap());
    }

    #[test]
    fn deterministic_per_seed() {
        let net = net3x4();
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(1)), (ObjectId(1), NodeId(9))]);
        let pending = vec![txn(0, 6, &[0, 1]), txn(1, 10, &[0]), txn(2, 2, &[1])];
        let a = ClusterScheduler::default().schedule(&net, &pending, &ctx);
        let b = ClusterScheduler::default().schedule(&net, &pending, &ctx);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn always_feasible_on_clusters(
            seed in 0u64..100,
            cliques in 2u32..5,
            size in 1u32..5,
            w in 1u32..6,
            k in 1usize..4,
        ) {
            let gamma = size as u64 + 1;
            let net = topology::cluster(cliques, size, gamma);
            let n = cliques * size;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let objs: Vec<(ObjectId, NodeId)> = (0..w)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n))))
                .collect();
            let ctx = BatchContext::fresh(objs);
            let pending: Vec<Transaction> = (0..n.min(12))
                .map(|i| {
                    let set: Vec<ObjectId> =
                        (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
                    Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
                })
                .collect();
            let sched = ClusterScheduler { restarts: 2, seed }.schedule(&net, &pending, &ctx);
            prop_assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_ok());
        }
    }
}
