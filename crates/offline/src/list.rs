//! Generic earliest-feasible list scheduling.
//!
//! The workhorse: given any processing order, each transaction is assigned
//! the earliest time at which all its objects can have reached its home,
//! folding object positions forward. Always feasible on arbitrary graphs;
//! quality depends on the order, which the per-topology schedulers tune.

use crate::traits::{handoff_gap, object_release, BatchContext, BatchScheduler};
use dtm_graph::Network;
use dtm_model::{ObjectId, Schedule, Time, Transaction};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// Processing order for [`ListScheduler`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListOrder {
    /// By `(generated_at, id)` — FIFO; this makes the list scheduler the
    /// natural online baseline.
    Arrival,
    /// Seeded random permutation.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// By home node id (the line sweep uses this).
    ByHome,
}

/// Earliest-feasible list scheduler over a configurable order.
#[derive(Clone, Debug)]
pub struct ListScheduler {
    /// Processing order.
    pub order: ListOrder,
}

impl ListScheduler {
    /// FIFO list scheduler.
    pub fn fifo() -> Self {
        ListScheduler {
            order: ListOrder::Arrival,
        }
    }
}

/// Schedule `order`ed transactions at their earliest feasible times given
/// `ctx`. The core primitive shared by all list-type schedulers.
///
/// # Panics
/// Panics if a transaction requests an object absent from
/// `ctx.object_avail`.
pub fn list_schedule_in_order(
    network: &Network,
    order: &[&Transaction],
    ctx: &BatchContext,
) -> Schedule {
    let mut avail = object_release(network, ctx);
    // Objects that already had a transactional user (handoffs from them pay
    // the >= 1 serialization gap even at distance 0).
    let mut used: BTreeSet<ObjectId> = ctx.fixed.iter().flat_map(|(t, _)| t.objects()).collect();
    let mut schedule = Schedule::new();
    for t in order {
        let mut exec: Time = ctx.now.max(t.generated_at);
        for o in t.objects() {
            let &(node, ready) = avail
                .get(&o)
                .unwrap_or_else(|| panic!("{} requests unknown object {o}", t.id));
            let gap = if used.contains(&o) {
                handoff_gap(network, node, t.home)
            } else {
                network.distance(node, t.home)
            };
            exec = exec.max(ready + gap);
        }
        schedule.set(t.id, exec);
        for o in t.objects() {
            avail.insert(o, (t.home, exec));
            used.insert(o);
        }
    }
    schedule
}

impl BatchScheduler for ListScheduler {
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule {
        let mut order: Vec<&Transaction> = pending.iter().collect();
        match &self.order {
            ListOrder::Arrival => order.sort_by_key(|t| (t.generated_at, t.id)),
            ListOrder::ByHome => order.sort_by_key(|t| (t.home, t.id)),
            ListOrder::Random { seed } => {
                order.sort_by_key(|t| t.id);
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
            }
        }
        list_schedule_in_order(network, &order, ctx)
    }

    fn name(&self) -> String {
        match &self.order {
            ListOrder::Arrival => "list(fifo)".into(),
            ListOrder::ByHome => "list(by-home)".into(),
            ListOrder::Random { seed } => format!("list(random,seed={seed})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_batch_schedule;
    use dtm_graph::{topology, NodeId};
    use dtm_model::TxnId;
    use proptest::prelude::*;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn fifo_schedules_chain() {
        let net = topology::line(6);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending = vec![txn(0, 2, &[0]), txn(1, 5, &[0]), txn(2, 0, &[0])];
        let sched = ListScheduler::fifo().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // FIFO: T0 at 2 (distance 2), T1 at 2+3=5, T2 at 5+5=10.
        assert_eq!(sched.get(TxnId(0)), Some(2));
        assert_eq!(sched.get(TxnId(1)), Some(5));
        assert_eq!(sched.get(TxnId(2)), Some(10));
    }

    #[test]
    fn multi_object_waits_for_slowest() {
        let net = topology::line(8);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0)), (ObjectId(1), NodeId(7))]);
        let pending = vec![txn(0, 4, &[0, 1])];
        let sched = ListScheduler::fifo().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        assert_eq!(sched.get(TxnId(0)), Some(4)); // max(4, 3) from the two
    }

    #[test]
    fn respects_fixed_context() {
        let net = topology::line(8);
        let mut ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        ctx.now = 10;
        ctx.fixed = vec![(txn(99, 4, &[0]), 14)];
        let pending = vec![txn(0, 6, &[0])];
        let sched = ListScheduler::fifo().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // Object free at n4 from 14; distance 2 -> 16.
        assert_eq!(sched.get(TxnId(0)), Some(16));
    }

    #[test]
    fn same_home_chain_serializes() {
        let net = topology::clique(4);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(1))]);
        let pending = vec![txn(0, 1, &[0]), txn(1, 1, &[0]), txn(2, 1, &[0])];
        let sched = ListScheduler::fifo().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        assert_eq!(sched.get(TxnId(0)), Some(0));
        assert_eq!(sched.get(TxnId(1)), Some(1));
        assert_eq!(sched.get(TxnId(2)), Some(2));
    }

    #[test]
    fn makespan_probe_matches_schedule() {
        let net = topology::line(6);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending = vec![txn(0, 2, &[0]), txn(1, 5, &[0])];
        let mut s = ListScheduler::fifo();
        let m = s.makespan(&net, &pending, &ctx);
        assert_eq!(m, 5);
    }

    proptest! {
        /// Any order over any random workload yields a feasible schedule.
        #[test]
        fn always_feasible(
            seed in 0u64..200,
            n_txns in 1usize..24,
            n_objs in 1u32..8,
            k in 1usize..4,
            order_seed in 0u64..3,
        ) {
            use rand::Rng;
            let net = topology::grid(&[4, 4]);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let objs: Vec<(ObjectId, NodeId)> = (0..n_objs)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..16))))
                .collect();
            let ctx = BatchContext::fresh(objs.clone());
            let pending: Vec<Transaction> = (0..n_txns)
                .map(|i| {
                    let mut set: Vec<ObjectId> = Vec::new();
                    for _ in 0..k {
                        set.push(ObjectId(rng.gen_range(0..n_objs)));
                    }
                    Transaction::new(
                        TxnId(i as u64),
                        NodeId(rng.gen_range(0..16)),
                        set,
                        0,
                    )
                })
                .collect();
            let mut s = ListScheduler { order: ListOrder::Random { seed: order_seed } };
            let sched = s.schedule(&net, &pending, &ctx);
            prop_assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_ok());
        }
    }
}
