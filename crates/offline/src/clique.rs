//! Coloring-based batch scheduler for cliques.
//!
//! On a complete unit-weight graph every pairwise distance is 1, so a valid
//! conflict-graph coloring with colors `1, 2, 3, ...` translates directly
//! into execution times `base + color`: consecutive users of an object are
//! at least one step apart, which is exactly the transfer time. The number
//! of colors is at most one more than the maximum conflict degree
//! `<= k * l_max`, giving the `O(k * l_max)` makespan that underlies the
//! paper's Theorem 3 analysis.

use crate::traits::{object_release, BatchContext, BatchScheduler};
use dtm_graph::Network;
use dtm_model::{Schedule, Time, Transaction};
use std::collections::{BTreeMap, BTreeSet};

/// Conflict-graph-coloring scheduler for diameter-1 networks.
#[derive(Clone, Debug, Default)]
pub struct CliqueScheduler;

impl BatchScheduler for CliqueScheduler {
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule {
        assert!(
            network.diameter() <= 1,
            "CliqueScheduler requires a diameter-1 network, got {} (diameter {})",
            network.name(),
            network.diameter()
        );
        if pending.is_empty() {
            return Schedule::new();
        }
        let releases = object_release(network, ctx);
        // Base time: all relevant objects must be released before the
        // color ladder starts. (On a clique the release node is irrelevant:
        // every node is one hop away and colors start at 1.)
        let mut base: Time = ctx.now;
        for t in pending {
            base = base.max(t.generated_at);
            for o in t.objects() {
                if let Some(&(_, ready)) = releases.get(&o) {
                    base = base.max(ready);
                }
            }
        }

        // Build the conflict graph among pending transactions.
        let mut users: BTreeMap<_, Vec<usize>> = BTreeMap::new();
        for (i, t) in pending.iter().enumerate() {
            for o in t.objects() {
                users.entry(o).or_default().push(i);
            }
        }
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); pending.len()];
        for idxs in users.values() {
            for (a, &i) in idxs.iter().enumerate() {
                for &j in &idxs[a + 1..] {
                    if pending[i].shares_objects(&pending[j]) {
                        adj[i].insert(j);
                        adj[j].insert(i);
                    }
                }
            }
        }

        // Greedy coloring, highest conflict degree first (ties by id).
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(adj[i].len()), pending[i].id));
        let mut color: BTreeMap<usize, Time> = BTreeMap::new();
        for &i in &order {
            let taken: BTreeSet<Time> = adj[i]
                .iter()
                .filter_map(|j| color.get(j).copied())
                .collect();
            let mut c: Time = 1;
            while taken.contains(&c) {
                c += 1;
            }
            color.insert(i, c);
        }

        pending
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, base + color[&i]))
            .collect()
    }

    fn name(&self) -> String {
        "clique-coloring".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_batch_schedule;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{ObjectId, TxnId};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn non_conflicting_txns_share_steps() {
        let net = topology::clique(6);
        let ctx = BatchContext::fresh([
            (ObjectId(0), NodeId(0)),
            (ObjectId(1), NodeId(1)),
            (ObjectId(2), NodeId(2)),
        ]);
        let pending = vec![txn(0, 3, &[0]), txn(1, 4, &[1]), txn(2, 5, &[2])];
        let sched = CliqueScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // All independent: everyone gets color 1 -> time 1.
        assert_eq!(sched.makespan_end(), Some(1));
    }

    #[test]
    fn hot_object_serializes() {
        let net = topology::clique(6);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending: Vec<Transaction> = (0..5).map(|i| txn(i, i as u32 + 1, &[0])).collect();
        let sched = CliqueScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // l_max = 5 -> exactly colors 1..=5.
        assert_eq!(sched.makespan_end(), Some(5));
    }

    #[test]
    fn makespan_bounded_by_k_lmax() {
        let net = topology::clique(16);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let objs: Vec<(ObjectId, NodeId)> = (0..8)
            .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..16))))
            .collect();
        let ctx = BatchContext::fresh(objs);
        let k = 3;
        let pending: Vec<Transaction> = (0..16)
            .map(|i| {
                let set: Vec<ObjectId> = (0..k).map(|_| ObjectId(rng.gen_range(0..8))).collect();
                Transaction::new(TxnId(i), NodeId(i as u32), set, 0)
            })
            .collect();
        let mut users: std::collections::BTreeMap<ObjectId, usize> = Default::default();
        for t in &pending {
            for o in t.objects() {
                *users.entry(o).or_insert(0) += 1;
            }
        }
        let l_max = *users.values().max().unwrap() as Time;
        let k_max = pending.iter().map(|t| t.k()).max().unwrap() as Time;
        let sched = CliqueScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        assert!(sched.makespan_end().unwrap() <= k_max * l_max + 1);
    }

    #[test]
    #[should_panic(expected = "diameter-1")]
    fn rejects_non_clique() {
        let net = topology::line(4);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let _ = CliqueScheduler.schedule(&net, &[txn(0, 1, &[0])], &ctx);
    }

    #[test]
    fn respects_release_times() {
        let net = topology::clique(4);
        let mut ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        ctx.now = 5;
        ctx.fixed = vec![(txn(9, 2, &[0]), 9)];
        let pending = vec![txn(0, 1, &[0])];
        let sched = CliqueScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        assert_eq!(sched.get(TxnId(0)), Some(10)); // release 9 + color 1
    }

    proptest! {
        #[test]
        fn always_feasible_on_cliques(
            seed in 0u64..200,
            n in 2u32..12,
            w in 1u32..6,
            k in 1usize..4,
        ) {
            let net = topology::clique(n);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let objs: Vec<(ObjectId, NodeId)> = (0..w)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n))))
                .collect();
            let ctx = BatchContext::fresh(objs);
            let pending: Vec<Transaction> = (0..n)
                .map(|i| {
                    let set: Vec<ObjectId> =
                        (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
                    Transaction::new(TxnId(i as u64), NodeId(i), set, 0)
                })
                .collect();
            let sched = CliqueScheduler.schedule(&net, &pending, &ctx);
            prop_assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_ok());
        }
    }
}
