//! Certified lower bounds on the optimal makespan.
//!
//! Computing OPT is NP-hard (the paper cites a reduction from vertex
//! coloring, hard even to approximate within sub-linear factors), so every
//! reported competitive ratio in this reproduction divides by a quantity
//! **provably <= OPT**. Ratios are therefore conservative over-estimates:
//! if the measured ratio tracks a theorem's bound, the theorem holds a
//! fortiori.
//!
//! For a set of transactions with object availability `(node, ready)`:
//!
//! * **object travel**: an object must visit the home of each requester;
//!   the edges it traverses form a connected subgraph spanning its start
//!   and all requester homes, so its total travel is at least
//!   `max(ecc, MST/2)` where `ecc` is the distance to the farthest home
//!   and `MST` is the metric minimum spanning tree over the terminals;
//! * **object serialization**: requesters of one object commit at pairwise
//!   distinct steps (exclusive access), adding `count - 1`;
//! * **assembly**: a transaction cannot execute before its farthest object
//!   reaches it.

use crate::traits::BatchContext;
use dtm_graph::{Network, NodeId, Weight};
use dtm_model::{ObjectId, Time, Transaction};
use std::collections::BTreeMap;

/// The individual components of a lower bound (for reporting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowerBoundParts {
    /// Max over objects of travel + serialization.
    pub object_bound: Time,
    /// Max over transactions of assembly time.
    pub assembly_bound: Time,
}

impl LowerBoundParts {
    /// The combined lower bound (at least 1 when there is any work, so it
    /// is always safe as a ratio denominator).
    pub fn combined(&self) -> Time {
        self.object_bound.max(self.assembly_bound).max(1)
    }
}

/// Metric MST weight over `terminals` (Prim, `O(t^2)` distance queries).
fn metric_mst(network: &Network, terminals: &[NodeId]) -> Weight {
    if terminals.len() <= 1 {
        return 0;
    }
    let mut in_tree = vec![false; terminals.len()];
    let mut best = vec![Weight::MAX; terminals.len()];
    in_tree[0] = true;
    for (i, &t) in terminals.iter().enumerate().skip(1) {
        best[i] = network.distance(terminals[0], t);
    }
    let mut total = 0;
    for _ in 1..terminals.len() {
        let (next, _) = best
            .iter()
            .enumerate()
            .filter(|&(i, _)| !in_tree[i])
            .min_by_key(|&(_, &w)| w)
            .expect("some node outside tree"); // dtm-lint: allow(C1) -- Prim loop runs len-1 times, so a node outside the tree always remains
        total += best[next];
        in_tree[next] = true;
        for (i, &t) in terminals.iter().enumerate() {
            if !in_tree[i] {
                best[i] = best[i].min(network.distance(terminals[next], t));
            }
        }
    }
    total
}

/// Lower bound contributed by a single object: earliest possible completion
/// (relative to `now`) of all commits that need it.
pub fn object_lower_bound(
    network: &Network,
    now: Time,
    avail: (NodeId, Time),
    requester_homes: &[NodeId],
) -> Time {
    if requester_homes.is_empty() {
        return 0;
    }
    let (start, ready) = avail;
    let lead = ready.saturating_sub(now);
    let ecc = requester_homes
        .iter()
        .map(|&h| network.distance(start, h))
        .max()
        .unwrap_or(0);
    let mut terminals: Vec<NodeId> = Vec::with_capacity(requester_homes.len() + 1);
    terminals.push(start);
    terminals.extend_from_slice(requester_homes);
    terminals.sort_unstable();
    terminals.dedup();
    let mst = metric_mst(network, &terminals);
    // Serialization: distinct commit steps per requester.
    let serial = (requester_homes.len() as Time).saturating_sub(1);
    lead + ecc.max(mst / 2).max(serial)
}

/// Lower bound on the time (relative to `ctx.now`) to execute all of
/// `txns`, given object availability in `ctx`. Ignores the fixed schedule
/// beyond its effect on availability, hence certainly `<= OPT`.
pub fn batch_lower_bound(
    network: &Network,
    txns: &[Transaction],
    ctx: &BatchContext,
) -> LowerBoundParts {
    let mut homes: BTreeMap<ObjectId, Vec<NodeId>> = BTreeMap::new();
    for t in txns {
        for o in t.objects() {
            homes.entry(o).or_default().push(t.home);
        }
    }
    let mut object_bound: Time = 0;
    for (o, hs) in &homes {
        if let Some(&avail) = ctx.object_avail.get(o) {
            object_bound = object_bound.max(object_lower_bound(network, ctx.now, avail, hs));
        }
    }
    let mut assembly_bound: Time = 0;
    for t in txns {
        for o in t.objects() {
            if let Some(&(node, ready)) = ctx.object_avail.get(&o) {
                let need = ready.saturating_sub(ctx.now) + network.distance(node, t.home);
                assembly_bound = assembly_bound.max(need);
            }
        }
    }
    LowerBoundParts {
        object_bound,
        assembly_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::traits::BatchScheduler;
    use dtm_graph::topology;
    use dtm_model::TxnId;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn mst_of_line_terminals() {
        let net = topology::line(16);
        assert_eq!(metric_mst(&net, &[NodeId(0), NodeId(5), NodeId(10)]), 10);
        assert_eq!(metric_mst(&net, &[NodeId(3)]), 0);
        assert_eq!(metric_mst(&net, &[]), 0);
    }

    #[test]
    fn object_bound_eccentricity() {
        let net = topology::line(16);
        let lb = object_lower_bound(&net, 0, (NodeId(0), 0), &[NodeId(10), NodeId(4)]);
        assert_eq!(lb, 10);
    }

    #[test]
    fn object_bound_serialization() {
        let net = topology::clique(8);
        // 5 requesters, all distance 1: serialization (4) dominates ecc (1).
        let homes: Vec<NodeId> = (1..6).map(NodeId).collect();
        let lb = object_lower_bound(&net, 0, (NodeId(0), 0), &homes);
        assert_eq!(lb, 4);
    }

    #[test]
    fn object_bound_respects_ready_time() {
        let net = topology::line(8);
        let lb = object_lower_bound(&net, 10, (NodeId(0), 14), &[NodeId(3)]);
        assert_eq!(lb, 4 + 3);
    }

    #[test]
    fn assembly_bound() {
        let net = topology::line(16);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0)), (ObjectId(1), NodeId(15))]);
        let txns = vec![txn(0, 1, &[0, 1])];
        let parts = batch_lower_bound(&net, &txns, &ctx);
        assert_eq!(parts.assembly_bound, 14);
        assert!(parts.combined() >= 14);
    }

    #[test]
    fn empty_bound_is_one() {
        let net = topology::line(4);
        let ctx = BatchContext::fresh([]);
        let parts = batch_lower_bound(&net, &[], &ctx);
        assert_eq!(parts.combined(), 1);
    }

    proptest! {
        /// Soundness: any feasible schedule's makespan is >= the bound.
        #[test]
        fn never_exceeds_feasible_schedules(
            seed in 0u64..300,
            n in 2u32..24,
            w in 1u32..6,
            k in 1usize..4,
            topo in 0u8..3,
        ) {
            let net = match topo {
                0 => topology::line(n),
                1 => topology::clique(n),
                _ => topology::random(n.max(2), 3, 3, seed),
            };
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x77);
            let objs: Vec<(ObjectId, NodeId)> = (0..w)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n))))
                .collect();
            let ctx = BatchContext::fresh(objs);
            let pending: Vec<Transaction> = (0..n.min(12))
                .map(|i| {
                    let set: Vec<ObjectId> =
                        (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
                    Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
                })
                .collect();
            let parts = batch_lower_bound(&net, &pending, &ctx);
            // The list schedule is feasible; its makespan must dominate the
            // bound (unless the bound is the floor value 1 and the schedule
            // is fully local/instant).
            let sched = ListScheduler::fifo().schedule(&net, &pending, &ctx);
            let end = sched.makespan_end().unwrap_or(0);
            let lb = parts.object_bound.max(parts.assembly_bound);
            prop_assert!(lb <= end, "lb {lb} > feasible makespan {end}");
        }
    }
}
