//! Randomized batch scheduler for star graphs (central node, α rays of β
//! nodes).
//!
//! All inter-ray traffic funnels through the center, so the order in which
//! rays are served dominates makespan. Mirroring the randomized star
//! algorithm of SPAA'17 \[4\], the scheduler draws several random ray
//! permutations (transactions grouped by ray, outermost first within a
//! ray) and keeps the best earliest-feasible schedule.

use crate::list::list_schedule_in_order;
use crate::traits::{BatchContext, BatchScheduler};
use dtm_graph::{Network, NodeId, Structured};
use dtm_model::{Schedule, Time, Transaction};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Randomized-restart star-graph scheduler.
#[derive(Clone, Debug)]
pub struct StarScheduler {
    /// Number of random ray orders to try (best kept).
    pub restarts: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarScheduler {
    fn default() -> Self {
        StarScheduler {
            restarts: 4,
            seed: 0,
        }
    }
}

impl StarScheduler {
    /// Ray index of a node: center maps to `u32::MAX` (its own group).
    fn ray_of(structured: &Structured, node: NodeId) -> u32 {
        match structured {
            Structured::Star { ray_len, .. } => {
                if node.0 == 0 {
                    u32::MAX
                } else {
                    (node.0 - 1) / ray_len
                }
            }
            _ => unreachable!("guarded by schedule()"),
        }
    }
}

impl BatchScheduler for StarScheduler {
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule {
        let structured = network
            .structured()
            .filter(|s| matches!(s, Structured::Star { .. }))
            .cloned()
            .unwrap_or_else(|| {
                panic!(
                    "StarScheduler requires a star topology, got {}",
                    network.name()
                )
            });
        if pending.is_empty() {
            return Schedule::new();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut best: Option<Schedule>;
        let mut best_end: Time;
        // Always evaluate plain arrival order too, so the randomized
        // scheduler dominates the FIFO baseline by construction.
        {
            let mut order: Vec<&Transaction> = pending.iter().collect();
            order.sort_by_key(|t| (t.generated_at, t.id));
            let s = list_schedule_in_order(network, &order, ctx);
            best_end = s.makespan_end().unwrap_or(ctx.now);
            best = Some(s);
        }
        for _ in 0..self.restarts.max(1) {
            let mut rays: Vec<u32> = pending
                .iter()
                .map(|t| Self::ray_of(&structured, t.home))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            rays.shuffle(&mut rng);
            let rank: BTreeMap<u32, usize> =
                rays.iter().enumerate().map(|(i, &r)| (r, i)).collect();
            let mut order: Vec<&Transaction> = pending.iter().collect();
            order.shuffle(&mut rng);
            // Group by ray rank; within a ray serve inner nodes first so
            // objects entering the ray pay each edge once on the way out.
            order.sort_by_key(|t| (rank[&Self::ray_of(&structured, t.home)], t.home));
            let s = list_schedule_in_order(network, &order, ctx);
            let end = s.makespan_end().unwrap_or(ctx.now);
            if end < best_end {
                best_end = end;
                best = Some(s);
            }
        }
        best.expect("at least one restart") // dtm-lint: allow(C1) -- `best` is seeded with the arrival-order candidate before the restart loop
    }

    fn name(&self) -> String {
        format!("star(restarts={})", self.restarts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::traits::validate_batch_schedule;
    use dtm_graph::topology;
    use dtm_model::{ObjectId, TxnId};
    use proptest::prelude::*;
    use rand::Rng;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn serves_rays_in_batches() {
        // star(3, 3): center 0; rays {1,2,3}, {4,5,6}, {7,8,9}.
        let net = topology::star(3, 3);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        // One requester per ray tip plus inner nodes: grouped service beats
        // ray ping-pong. Hot single object must visit all.
        let pending = vec![
            txn(0, 3, &[0]),
            txn(1, 6, &[0]),
            txn(2, 9, &[0]),
            txn(3, 1, &[0]),
            txn(4, 4, &[0]),
            txn(5, 7, &[0]),
        ];
        let sched = StarScheduler::default().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        let star_end = sched.makespan_end().unwrap();
        // Grouped: per ray enter (1) + out to tip (2) + back (3 on exit);
        // a ping-pong FIFO over tips costs ~6 per pair. Just require the
        // grouped schedule is no worse than plain FIFO.
        let fifo = ListScheduler::fifo().schedule(&net, &pending, &ctx);
        assert!(star_end <= fifo.makespan_end().unwrap());
    }

    #[test]
    fn center_transactions_supported() {
        let net = topology::star(2, 2);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(2))]);
        let pending = vec![txn(0, 0, &[0]), txn(1, 4, &[0])];
        let sched = StarScheduler::default().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let net = topology::star(3, 2);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(1)), (ObjectId(1), NodeId(5))]);
        let pending = vec![txn(0, 2, &[0, 1]), txn(1, 6, &[0]), txn(2, 3, &[1])];
        let a = StarScheduler::default().schedule(&net, &pending, &ctx);
        let b = StarScheduler::default().schedule(&net, &pending, &ctx);
        assert_eq!(a, b);
        let c = StarScheduler {
            restarts: 4,
            seed: 9,
        }
        .schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &c).unwrap();
    }

    proptest! {
        #[test]
        fn always_feasible_on_stars(
            seed in 0u64..100,
            rays in 1u32..5,
            len in 1u32..5,
            w in 1u32..6,
            k in 1usize..4,
        ) {
            let net = topology::star(rays, len);
            let n = net.n() as u32;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let objs: Vec<(ObjectId, NodeId)> = (0..w)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n))))
                .collect();
            let ctx = BatchContext::fresh(objs);
            let pending: Vec<Transaction> = (0..n.min(12))
                .map(|i| {
                    let set: Vec<ObjectId> =
                        (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
                    Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
                })
                .collect();
            let sched = StarScheduler { restarts: 2, seed }.schedule(&net, &pending, &ctx);
            prop_assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_ok());
        }
    }
}
