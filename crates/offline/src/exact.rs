//! Exact optimal batch scheduling for small instances.
//!
//! Finding the optimal makespan is NP-hard in general (the paper cites a
//! reduction from vertex coloring), but small instances can be solved
//! exactly: **every feasible schedule is dominated by the earliest-feasible
//! list schedule of some priority order** (process transactions by
//! ascending execution time; each object is then served in the same order
//! and every execution time can only move earlier), so minimizing over all
//! `n!` permutations yields the true optimum.
//!
//! This gives the reproduction two things the paper could only reason
//! about abstractly:
//!
//! * the **true approximation ratio `b_𝒜`** of each heuristic batch
//!   scheduler (the parameter of Theorem 4), measured in experiment E13;
//! * a tightness check for the certified lower bounds of
//!   [`crate::lower_bound`] (`LB <= OPT` always; E13 reports `OPT / LB`).

use crate::list::list_schedule_in_order;
use crate::traits::{BatchContext, BatchScheduler};
use dtm_graph::Network;
use dtm_model::{Schedule, Time, Transaction};

/// Exhaustive optimal scheduler. Cost `O(n! * n * k)`; refuses instances
/// with more than [`ExactScheduler::MAX_TXNS`] transactions.
#[derive(Clone, Debug, Default)]
pub struct ExactScheduler;

impl ExactScheduler {
    /// Hard cap on instance size (9! = 362 880 permutations).
    pub const MAX_TXNS: usize = 9;
}

/// Heap's algorithm over indices, calling `f` for each permutation.
fn for_each_permutation(n: usize, mut f: impl FnMut(&[usize])) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut c = vec![0usize; n];
    f(&idx);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                idx.swap(0, i);
            } else {
                idx.swap(c[i], i);
            }
            f(&idx);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

impl BatchScheduler for ExactScheduler {
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule {
        assert!(
            pending.len() <= Self::MAX_TXNS,
            "ExactScheduler is exponential; got {} transactions (max {})",
            pending.len(),
            Self::MAX_TXNS
        );
        if pending.is_empty() {
            return Schedule::new();
        }
        let mut best: Option<Schedule> = None;
        let mut best_end = Time::MAX;
        for_each_permutation(pending.len(), |perm| {
            let order: Vec<&Transaction> = perm.iter().map(|&i| &pending[i]).collect();
            let s = list_schedule_in_order(network, &order, ctx);
            let end = s.makespan_end().expect("nonempty"); // dtm-lint: allow(C1) -- pending is nonempty (early return above), so its schedule has a makespan
            if end < best_end {
                best_end = end;
                best = Some(s);
            }
        });
        best.expect("at least one permutation") // dtm-lint: allow(C1) -- for_each_permutation always invokes the closure at least once
    }

    fn name(&self) -> String {
        "exact".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::batch_lower_bound;
    use crate::traits::validate_batch_schedule;
    use crate::{LineScheduler, ListScheduler, TspScheduler};
    use dtm_graph::{topology, NodeId};
    use dtm_model::{ObjectId, TxnId};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn permutation_count() {
        let mut count = 0;
        for_each_permutation(4, |_| count += 1);
        assert_eq!(count, 24);
        let mut seen = std::collections::BTreeSet::new();
        for_each_permutation(3, |p| {
            seen.insert(p.to_vec());
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn beats_or_ties_fifo_on_adversarial_line() {
        let net = topology::line(16);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        // FIFO order ping-pongs; the optimum sweeps.
        let pending = vec![
            txn(0, 15, &[0]),
            txn(1, 1, &[0]),
            txn(2, 14, &[0]),
            txn(3, 2, &[0]),
        ];
        let opt = ExactScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &opt).unwrap();
        let fifo = ListScheduler::fifo().schedule(&net, &pending, &ctx);
        assert!(opt.makespan_end().unwrap() < fifo.makespan_end().unwrap());
        // The monotone sweep is optimal here: 1, 2, 14, 15.
        assert_eq!(opt.makespan_end(), Some(15));
    }

    #[test]
    fn single_txn_is_trivially_optimal() {
        let net = topology::line(8);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending = vec![txn(0, 5, &[0])];
        let s = ExactScheduler.schedule(&net, &pending, &ctx);
        assert_eq!(s.makespan_end(), Some(5));
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn rejects_large_instances() {
        let net = topology::line(16);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending: Vec<Transaction> = (0..12).map(|i| txn(i, i as u32, &[0])).collect();
        let _ = ExactScheduler.schedule(&net, &pending, &ctx);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(60))]

        /// Sandwich: LB <= OPT <= every heuristic, on random small
        /// instances across topologies.
        #[test]
        fn opt_sandwiched_between_lb_and_heuristics(
            seed in 0u64..400,
            n_txns in 1usize..6,
            w in 1u32..4,
            k in 1usize..3,
            topo in 0u8..3,
        ) {
            let net = match topo {
                0 => topology::line(10),
                1 => topology::clique(8),
                _ => topology::grid(&[3, 3]),
            };
            let n = net.n() as u32;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let objs: Vec<(ObjectId, NodeId)> = (0..w)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n))))
                .collect();
            let ctx = BatchContext::fresh(objs);
            let pending: Vec<Transaction> = (0..n_txns)
                .map(|i| {
                    let set: Vec<ObjectId> =
                        (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
                    Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
                })
                .collect();
            let opt_sched = ExactScheduler.schedule(&net, &pending, &ctx);
            prop_assert!(validate_batch_schedule(&net, &pending, &ctx, &opt_sched).is_ok());
            let opt = opt_sched.makespan_end().unwrap_or(0);
            // LB <= OPT.
            let lb = batch_lower_bound(&net, &pending, &ctx);
            prop_assert!(
                lb.object_bound.max(lb.assembly_bound) <= opt,
                "LB {} > OPT {opt}", lb.object_bound.max(lb.assembly_bound)
            );
            // OPT <= heuristics.
            let fifo = ListScheduler::fifo()
                .schedule(&net, &pending, &ctx)
                .makespan_end()
                .unwrap_or(0);
            prop_assert!(opt <= fifo, "OPT {opt} > fifo {fifo}");
            let tsp = TspScheduler
                .schedule(&net, &pending, &ctx)
                .makespan_end()
                .unwrap_or(0);
            prop_assert!(opt <= tsp);
            if topo == 0 {
                let line = LineScheduler
                    .schedule(&net, &pending, &ctx)
                    .makespan_end()
                    .unwrap_or(0);
                prop_assert!(opt <= line);
            }
        }
    }
}
