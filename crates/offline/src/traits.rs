//! The [`BatchScheduler`] abstraction, scheduling context, and the
//! independent feasibility validator for batch schedules.

use dtm_graph::{Network, NodeId, Weight};
use dtm_model::{ObjectId, Schedule, Time, Transaction, TxnId};
use std::collections::BTreeMap;

/// Everything a batch scheduler may assume about the world at `now`:
/// where each object is (or will be) available, and which transactions
/// already have immutable execution times (the paper's `T_t^s`).
#[derive(Clone, Debug, Default)]
pub struct BatchContext {
    /// Current time.
    pub now: Time,
    /// For each object: `(node, ready_time)` — the earliest time and place
    /// from which it can start moving (in-transit objects project to their
    /// next hop at its arrival time, matching `H'_t`).
    pub object_avail: BTreeMap<ObjectId, (NodeId, Time)>,
    /// Already-scheduled, uncommitted transactions with their fixed
    /// execution times. New schedules must not disturb these.
    pub fixed: Vec<(Transaction, Time)>,
}

impl BatchContext {
    /// A fresh context at time 0 with objects at their given positions and
    /// no fixed transactions.
    pub fn fresh(object_positions: impl IntoIterator<Item = (ObjectId, NodeId)>) -> Self {
        BatchContext {
            now: 0,
            object_avail: object_positions
                .into_iter()
                .map(|(o, v)| (o, (v, 0)))
                .collect(),
            fixed: Vec::new(),
        }
    }
}

/// Project object availability *after* the fixed transactions execute:
/// fold each object's fixed users in execution order (the paper's first
/// basic modification — new transactions are appended after the already
/// scheduled ones).
pub fn object_release(network: &Network, ctx: &BatchContext) -> BTreeMap<ObjectId, (NodeId, Time)> {
    let mut avail = ctx.object_avail.clone();
    let mut fixed: Vec<&(Transaction, Time)> = ctx.fixed.iter().collect();
    fixed.sort_by_key(|(t, time)| (*time, t.id));
    for (txn, exec) in fixed {
        for o in txn.objects() {
            let entry = avail.entry(o).or_insert((txn.home, *exec));
            let travel = network.distance(entry.0, txn.home);
            // If the fixed schedule is feasible, exec >= ready + travel;
            // take max defensively so release projections never go back in
            // time.
            let ready = (entry.1 + travel).max(*exec);
            *entry = (txn.home, ready);
        }
    }
    avail
}

/// An offline batch scheduling algorithm `𝒜`.
///
/// Contract: the returned schedule must
/// * cover exactly the `pending` transactions,
/// * assign times `>= ctx.now`,
/// * be *feasible* together with `ctx.fixed` under the data-flow model
///   ([`validate_batch_schedule`] is the oracle), and
/// * leave `ctx.fixed` untouched (times are simply not part of the output).
pub trait BatchScheduler {
    /// Compute execution times for `pending`.
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule;

    /// `F_𝒜(X)`: the time to execute all of `pending` (relative to
    /// `ctx.now`) under this scheduler, given the fixed context. Used by
    /// the bucket algorithm's insertion probe.
    fn makespan(&mut self, network: &Network, pending: &[Transaction], ctx: &BatchContext) -> Time {
        let s = self.schedule(network, pending, ctx);
        s.makespan_end().map_or(0, |end| end - ctx.now)
    }

    /// Scheduler name for reports.
    fn name(&self) -> String;
}

/// The minimum time gap between two consecutive users of an object.
///
/// Distinct homes pay the shortest-path distance; a handoff between two
/// transactions at the *same* node still needs one step of serialization
/// (exclusive access, enforced by the execution engine).
pub fn handoff_gap(network: &Network, from: NodeId, to: NodeId) -> Weight {
    network.distance(from, to).max(1)
}

/// Independently verify that `schedule` (for `pending`) is feasible given
/// `ctx`: every object can physically reach each of its users in time,
/// in ascending execution order, starting from its availability point.
///
/// Returns the per-object order of users on success.
pub fn validate_batch_schedule(
    network: &Network,
    pending: &[Transaction],
    ctx: &BatchContext,
    schedule: &Schedule,
) -> Result<BTreeMap<ObjectId, Vec<TxnId>>, String> {
    // Coverage.
    for t in pending {
        let Some(time) = schedule.get(t.id) else {
            return Err(format!("{} not scheduled", t.id));
        };
        if time < ctx.now {
            return Err(format!("{} scheduled at {time} < now {}", t.id, ctx.now));
        }
        if time < t.generated_at {
            return Err(format!("{} scheduled before generation", t.id));
        }
    }
    if schedule.len() != pending.len() {
        return Err(format!(
            "schedule covers {} txns, expected {}",
            schedule.len(),
            pending.len()
        ));
    }

    // Combined timeline: fixed + pending, per object, by execution time.
    struct User {
        txn: TxnId,
        home: NodeId,
        exec: Time,
    }
    let mut per_object: BTreeMap<ObjectId, Vec<User>> = BTreeMap::new();
    for (txn, exec) in ctx
        .fixed
        .iter()
        .map(|(t, e)| (t, *e))
        // dtm-lint: allow(C1) -- list_schedule assigned every pending transaction just above
        .chain(pending.iter().map(|t| (t, schedule.get(t.id).unwrap())))
    {
        for o in txn.objects() {
            per_object.entry(o).or_default().push(User {
                txn: txn.id,
                home: txn.home,
                exec,
            });
        }
    }

    let mut orders = BTreeMap::new();
    for (o, mut users) in per_object {
        users.sort_by_key(|u| (u.exec, u.txn));
        // Consecutive users at the same time sharing an object: invalid.
        for pair in users.windows(2) {
            if pair[0].exec == pair[1].exec {
                return Err(format!(
                    "{} and {} both execute at {} sharing {o}",
                    pair[0].txn, pair[1].txn, pair[0].exec
                ));
            }
        }
        let (mut node, mut ready) = ctx
            .object_avail
            .get(&o)
            .copied()
            .ok_or_else(|| format!("object {o} has no availability info"))?;
        let mut first = true;
        for u in &users {
            let gap = if first {
                network.distance(node, u.home)
            } else {
                handoff_gap(network, node, u.home)
            };
            if u.exec < ready + gap {
                return Err(format!(
                    "{} at {} cannot receive {o} from {node} (ready {ready}, \
                     distance {gap})",
                    u.txn, u.exec
                ));
            }
            node = u.home;
            ready = u.exec;
            first = false;
        }
        orders.insert(o, users.iter().map(|u| u.txn).collect());
    }
    Ok(orders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn object_release_folds_fixed() {
        let net = topology::line(6);
        let mut ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        ctx.fixed = vec![(txn(0, 3, &[0]), 3), (txn(1, 5, &[0]), 5)];
        let rel = object_release(&net, &ctx);
        // After T0 at n3 (t=3), the hop to n5 needs 2 steps but T1 is fixed
        // at 5: release is (n5, 5).
        assert_eq!(rel[&ObjectId(0)], (NodeId(5), 5));
    }

    #[test]
    fn object_release_defensive_max() {
        let net = topology::line(6);
        let mut ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        // Infeasible fixed time (1 < distance 3): projection must not go
        // backwards.
        ctx.fixed = vec![(txn(0, 3, &[0]), 1)];
        let rel = object_release(&net, &ctx);
        assert_eq!(rel[&ObjectId(0)], (NodeId(3), 3));
    }

    #[test]
    fn validator_accepts_feasible() {
        let net = topology::line(4);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending = vec![txn(0, 2, &[0]), txn(1, 3, &[0])];
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 3)].into_iter().collect();
        let orders = validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        assert_eq!(orders[&ObjectId(0)], vec![TxnId(0), TxnId(1)]);
    }

    #[test]
    fn validator_rejects_too_tight() {
        let net = topology::line(4);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending = vec![txn(0, 2, &[0]), txn(1, 3, &[0])];
        // T1 at node 3 cannot get the object one step after T0 at node 2...
        let sched: Schedule = [(TxnId(0), 2), (TxnId(1), 2)].into_iter().collect();
        assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_err());
    }

    #[test]
    fn validator_rejects_same_time_same_object() {
        let net = topology::line(4);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(1))]);
        // Same home, same object, same step: exclusivity violated.
        let pending = vec![txn(0, 1, &[0]), txn(1, 1, &[0])];
        let sched: Schedule = [(TxnId(0), 0), (TxnId(1), 0)].into_iter().collect();
        let err = validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap_err();
        assert!(err.contains("sharing"));
    }

    #[test]
    fn validator_enforces_same_home_serialization_gap() {
        let net = topology::line(4);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(1))]);
        let pending = vec![txn(0, 1, &[0]), txn(1, 1, &[0])];
        // One step apart at the same home: fine.
        let sched: Schedule = [(TxnId(0), 0), (TxnId(1), 1)].into_iter().collect();
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
    }

    #[test]
    fn validator_rejects_missing_txn() {
        let net = topology::line(4);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending = vec![txn(0, 2, &[0])];
        let sched = Schedule::new();
        assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_err());
    }

    #[test]
    fn validator_respects_fixed_context() {
        let net = topology::line(8);
        let mut ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        // Fixed txn holds the object at node 5 until t=5.
        ctx.fixed = vec![(txn(9, 5, &[0]), 5)];
        let pending = vec![txn(0, 7, &[0])];
        // From n5 at t=5, distance 2: earliest feasible is 7.
        let bad: Schedule = [(TxnId(0), 6)].into_iter().collect();
        assert!(validate_batch_schedule(&net, &pending, &ctx, &bad).is_err());
        let good: Schedule = [(TxnId(0), 7)].into_iter().collect();
        validate_batch_schedule(&net, &pending, &ctx, &good).unwrap();
    }
}
