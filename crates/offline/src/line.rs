//! Coordinate-sweep batch scheduler for line graphs.
//!
//! Processes transactions in home-coordinate order so objects flow
//! monotonically along the line (each object travels at most its origin
//! offset plus the span of its requesters — the structure behind the
//! asymptotically optimal line schedule of SPAA'17 \[4\]). Both sweep
//! directions are evaluated and the better one kept.

use crate::list::list_schedule_in_order;
use crate::traits::{BatchContext, BatchScheduler};
use dtm_graph::Network;
use dtm_model::{Schedule, Transaction};

/// Sweep scheduler for line graphs (usable on any graph where node-id
/// order is a meaningful 1-D embedding, e.g. rings).
#[derive(Clone, Debug, Default)]
pub struct LineScheduler;

impl BatchScheduler for LineScheduler {
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule {
        let mut asc: Vec<&Transaction> = pending.iter().collect();
        asc.sort_by_key(|t| (t.home, t.id));
        let s_asc = list_schedule_in_order(network, &asc, ctx);
        let mut desc: Vec<&Transaction> = pending.iter().collect();
        desc.sort_by_key(|t| (std::cmp::Reverse(t.home), t.id));
        let s_desc = list_schedule_in_order(network, &desc, ctx);
        // Arrival order as a guard candidate: the sweep then never loses
        // to the FIFO baseline.
        let mut arr: Vec<&Transaction> = pending.iter().collect();
        arr.sort_by_key(|t| (t.generated_at, t.id));
        let s_arr = list_schedule_in_order(network, &arr, ctx);
        let end = |s: &Schedule| s.makespan_end().unwrap_or(ctx.now);
        [s_asc, s_desc, s_arr]
            .into_iter()
            .min_by_key(end)
            .expect("three candidates") // dtm-lint: allow(C1) -- literal three-candidate array is never empty
    }

    fn name(&self) -> String {
        "line-sweep".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::traits::validate_batch_schedule;
    use dtm_graph::{topology, NodeId};
    use dtm_model::{ObjectId, TxnId};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn sweep_is_monotone_for_single_object() {
        let net = topology::line(16);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        // Requesters scattered; sweep visits them in coordinate order, so
        // the object travels exactly to the farthest requester: makespan =
        // distance to the last one plus same-home serialization slack.
        let pending = vec![
            txn(0, 12, &[0]),
            txn(1, 3, &[0]),
            txn(2, 7, &[0]),
            txn(3, 5, &[0]),
        ];
        let sched = LineScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        assert_eq!(sched.makespan_end(), Some(12));
    }

    #[test]
    fn beats_or_ties_adversarial_fifo() {
        let net = topology::line(32);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        // FIFO order ping-pongs the object across the line.
        let homes = [31u32, 1, 30, 2, 29, 3, 28, 4];
        let pending: Vec<Transaction> = homes
            .iter()
            .enumerate()
            .map(|(i, &h)| txn(i as u64, h, &[0]))
            .collect();
        let sweep = LineScheduler.schedule(&net, &pending, &ctx);
        let fifo = ListScheduler::fifo().schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sweep).unwrap();
        let sweep_end = sweep.makespan_end().unwrap();
        let fifo_end = fifo.makespan_end().unwrap();
        assert!(
            sweep_end <= fifo_end / 3,
            "sweep {sweep_end} should crush ping-pong fifo {fifo_end}"
        );
    }

    #[test]
    fn picks_better_direction() {
        let net = topology::line(16);
        // Object at the far right: descending sweep is natural.
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(15))]);
        let pending = vec![txn(0, 14, &[0]), txn(1, 10, &[0]), txn(2, 2, &[0])];
        let sched = LineScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        assert_eq!(sched.makespan_end(), Some(13)); // 15->14->10->2
    }

    proptest! {
        #[test]
        fn always_feasible_on_lines(
            seed in 0u64..200,
            n in 2u32..40,
            w in 1u32..6,
            k in 1usize..4,
        ) {
            let net = topology::line(n);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let objs: Vec<(ObjectId, NodeId)> = (0..w)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n))))
                .collect();
            let ctx = BatchContext::fresh(objs);
            let pending: Vec<Transaction> = (0..n.min(16))
                .map(|i| {
                    let set: Vec<ObjectId> =
                        (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
                    Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
                })
                .collect();
            let sched = LineScheduler.schedule(&net, &pending, &ctx);
            prop_assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_ok());
        }
    }
}
