//! TSP-tour baseline scheduler (the approach of Zhang, Ravindran and
//! Palmieri, SIROCCO 2014 — reference \[30\] of the paper).
//!
//! Per object, a nearest-neighbor traveling-salesman tour over the homes of
//! its requesters fixes a service order; transactions are then prioritized
//! by their average tour position and list-scheduled. The paper cites the
//! SPAA'17 lower bound to argue this can be far from optimal on general
//! graphs — experiment E12 measures exactly that gap.

use crate::list::list_schedule_in_order;
use crate::traits::{object_release, BatchContext, BatchScheduler};
use dtm_graph::{Network, NodeId};
use dtm_model::{ObjectId, Schedule, Transaction, TxnId};
use std::collections::BTreeMap;

/// Nearest-neighbor TSP-tour baseline.
#[derive(Clone, Debug, Default)]
pub struct TspScheduler;

/// Nearest-neighbor tour over `stops` starting from `start`; returns visit
/// ranks. Deterministic (ties by node id, then txn id).
fn nn_tour(network: &Network, start: NodeId, stops: &[(TxnId, NodeId)]) -> BTreeMap<TxnId, usize> {
    let mut remaining: Vec<(TxnId, NodeId)> = stops.to_vec();
    remaining.sort_by_key(|&(id, _)| id);
    let mut at = start;
    let mut rank = BTreeMap::new();
    let mut next_rank = 0usize;
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &(id, node))| (network.distance(at, node), node, id))
            .expect("nonempty"); // dtm-lint: allow(C1) -- guarded by !remaining.is_empty()
        let (id, node) = remaining.remove(pos);
        rank.insert(id, next_rank);
        next_rank += 1;
        at = node;
    }
    rank
}

impl BatchScheduler for TspScheduler {
    fn schedule(
        &mut self,
        network: &Network,
        pending: &[Transaction],
        ctx: &BatchContext,
    ) -> Schedule {
        let releases = object_release(network, ctx);
        // Per object: NN tour over requesters from the object's position.
        let mut requesters: BTreeMap<ObjectId, Vec<(TxnId, NodeId)>> = BTreeMap::new();
        for t in pending {
            for o in t.objects() {
                requesters.entry(o).or_default().push((t.id, t.home));
            }
        }
        let mut tour_rank: BTreeMap<(ObjectId, TxnId), usize> = BTreeMap::new();
        for (o, stops) in &requesters {
            let start = releases.get(o).map(|&(v, _)| v).unwrap_or(stops[0].1);
            for (txn, r) in nn_tour(network, start, stops) {
                tour_rank.insert((*o, txn), r);
            }
        }
        // Priority: average tour position (scaled sum to stay integral).
        let mut order: Vec<&Transaction> = pending.iter().collect();
        order.sort_by_key(|t| {
            let (sum, cnt) = t.objects().fold((0usize, 0usize), |(s, c), o| {
                (s + tour_rank.get(&(o, t.id)).copied().unwrap_or(0), c + 1)
            });
            let avg_scaled = (sum * 1000).checked_div(cnt).unwrap_or(0);
            (avg_scaled, t.id)
        });
        list_schedule_in_order(network, &order, ctx)
    }

    fn name(&self) -> String {
        "tsp-tour".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_batch_schedule;
    use dtm_graph::topology;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn txn(id: u64, home: u32, objs: &[u32]) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            0,
        )
    }

    #[test]
    fn nn_tour_visits_nearest_first() {
        let net = topology::line(16);
        let stops = vec![
            (TxnId(0), NodeId(10)),
            (TxnId(1), NodeId(2)),
            (TxnId(2), NodeId(5)),
        ];
        let rank = nn_tour(&net, NodeId(0), &stops);
        assert_eq!(rank[&TxnId(1)], 0); // node 2 nearest to 0
        assert_eq!(rank[&TxnId(2)], 1); // then 5
        assert_eq!(rank[&TxnId(0)], 2); // then 10
    }

    #[test]
    fn single_object_follows_tour() {
        let net = topology::line(16);
        let ctx = BatchContext::fresh([(ObjectId(0), NodeId(0))]);
        let pending = vec![txn(0, 10, &[0]), txn(1, 2, &[0]), txn(2, 5, &[0])];
        let sched = TspScheduler.schedule(&net, &pending, &ctx);
        validate_batch_schedule(&net, &pending, &ctx, &sched).unwrap();
        // Tour order 2, 5, 10 -> monotone sweep, makespan 10.
        assert_eq!(sched.makespan_end(), Some(10));
        assert!(sched.get(TxnId(1)) < sched.get(TxnId(2)));
        assert!(sched.get(TxnId(2)) < sched.get(TxnId(0)));
    }

    proptest! {
        #[test]
        fn always_feasible(
            seed in 0u64..150,
            n in 4u32..30,
            w in 1u32..6,
            k in 1usize..4,
        ) {
            let net = topology::random(n, 3, 3, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
            let objs: Vec<(ObjectId, NodeId)> = (0..w)
                .map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n))))
                .collect();
            let ctx = BatchContext::fresh(objs);
            let pending: Vec<Transaction> = (0..n.min(14))
                .map(|i| {
                    let set: Vec<ObjectId> =
                        (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
                    Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
                })
                .collect();
            let sched = TspScheduler.schedule(&net, &pending, &ctx);
            prop_assert!(validate_batch_schedule(&net, &pending, &ctx, &sched).is_ok());
        }
    }
}
