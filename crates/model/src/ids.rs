//! Identifier newtypes and the discrete time type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Discrete synchronous time step (Section II: "all actions occur at
/// discrete time steps").
pub type Time = u64;

/// Identifier of a shared mobile object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of a transaction. Unique across an entire (possibly
/// unbounded online) execution, hence 64 bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_display() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(TxnId(9) > TxnId(3));
        assert_eq!(format!("{}", ObjectId(4)), "o4");
        assert_eq!(format!("{:?}", TxnId(7)), "T7");
        assert_eq!(ObjectId(5).index(), 5);
    }
}
