//! Seeded random workload generators.
//!
//! The paper's scheduling problems are parameterized by `w` objects, up to
//! one live transaction per node, and up to `k` objects per transaction
//! (Sections III-C and IV-D). Generators here produce both batch instances
//! (all transactions at time 0) and online arrival streams, with several
//! object-popularity distributions to exercise contention regimes.

use crate::ids::{ObjectId, Time, TxnId};
use crate::instance::{Instance, ObjectInfo};
use crate::txn::Transaction;
use dtm_graph::{Network, NodeId, Weight};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How a transaction picks the objects it requests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObjectChoice {
    /// Uniformly random distinct objects.
    Uniform,
    /// Zipf-distributed popularity with the given exponent (`s > 0`);
    /// object 0 is the most popular. Models skewed contention.
    Zipf {
        /// Zipf exponent (1.0 = classic).
        exponent: f64,
    },
    /// With probability `hot_prob` pick among the first `hot_objects`
    /// objects, otherwise among the rest. An adversarial contention knob.
    Hotspot {
        /// Number of hot objects.
        hot_objects: u32,
        /// Probability of touching the hot set per pick.
        hot_prob: f64,
    },
    /// Prefer objects whose origin lies within `radius` of the requesting
    /// transaction's home (locality-heavy workloads, e.g. NoC traffic);
    /// falls back to uniform when too few local objects exist.
    Neighborhood {
        /// Locality radius in graph distance.
        radius: Weight,
    },
}

/// When transactions arrive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FiniteArrivals {
    /// All transactions at time 0, one per node (the offline batch setting
    /// of SPAA'17 / Section IV-D).
    Batch,
    /// Each node independently generates a transaction with probability
    /// `rate` at every step of `0..horizon` (Bernoulli approximation of
    /// per-node Poisson arrivals).
    Bernoulli {
        /// Per-node per-step arrival probability.
        rate: f64,
        /// Number of time steps to generate arrivals for.
        horizon: Time,
    },
    /// `per_burst` transactions at random homes every `period` steps, for
    /// `bursts` bursts (stress-tests bucket activation alignment).
    Bursts {
        /// Steps between bursts.
        period: Time,
        /// Transactions per burst.
        per_burst: u32,
        /// Number of bursts.
        bursts: u32,
    },
}

/// Full workload specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of shared objects (`w`).
    pub num_objects: u32,
    /// Objects per transaction (`k`), clamped to `num_objects`.
    pub k: usize,
    /// Object popularity distribution.
    pub object_choice: ObjectChoice,
    /// Arrival process.
    pub arrival: FiniteArrivals,
}

impl WorkloadSpec {
    /// A uniform batch spec: `w` objects, `k` per transaction.
    pub fn batch_uniform(num_objects: u32, k: usize) -> Self {
        WorkloadSpec {
            num_objects,
            k,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Batch,
        }
    }

    /// Sample a distinct object set of size `min(k, w)` for a transaction
    /// at `home` according to the popularity distribution.
    pub fn sample_object_set(
        &self,
        rng: &mut ChaCha8Rng,
        objects: &[ObjectInfo],
        home: NodeId,
        network: &Network,
    ) -> Vec<ObjectId> {
        let w = objects.len();
        let k = self.k.min(w);
        if k == 0 {
            return Vec::new();
        }
        let mut picked: Vec<ObjectId> = Vec::with_capacity(k);
        let mut attempts = 0usize;
        let max_attempts = 64 * k + 64;
        while picked.len() < k && attempts < max_attempts {
            attempts += 1;
            let candidate = self.sample_one(rng, objects, home, network);
            if !picked.contains(&candidate) {
                picked.push(candidate);
            }
        }
        // Rejection took too long (tiny hot sets): fill with uniform
        // distinct leftovers so the transaction still has k objects.
        if picked.len() < k {
            let mut rest: Vec<ObjectId> = objects
                .iter()
                .map(|o| o.id)
                .filter(|id| !picked.contains(id))
                .collect();
            rest.shuffle(rng);
            picked.extend(rest.into_iter().take(k - picked.len()));
        }
        picked.sort_unstable();
        picked
    }

    fn sample_one(
        &self,
        rng: &mut ChaCha8Rng,
        objects: &[ObjectInfo],
        home: NodeId,
        network: &Network,
    ) -> ObjectId {
        let w = objects.len();
        match &self.object_choice {
            ObjectChoice::Uniform => objects[rng.gen_range(0..w)].id,
            ObjectChoice::Zipf { exponent } => {
                // Inverse-CDF over unnormalized weights 1/(r+1)^s.
                let total: f64 = (0..w).map(|r| 1.0 / ((r + 1) as f64).powf(*exponent)).sum();
                let mut x = rng.gen_range(0.0..total);
                for (r, obj) in objects.iter().enumerate() {
                    let wgt = 1.0 / ((r + 1) as f64).powf(*exponent);
                    if x < wgt {
                        return obj.id;
                    }
                    x -= wgt;
                }
                objects[w - 1].id
            }
            ObjectChoice::Hotspot {
                hot_objects,
                hot_prob,
            } => {
                let hot = (*hot_objects as usize).min(w).max(1);
                if rng.gen_bool((*hot_prob).clamp(0.0, 1.0)) || hot == w {
                    objects[rng.gen_range(0..hot)].id
                } else {
                    objects[rng.gen_range(hot..w)].id
                }
            }
            ObjectChoice::Neighborhood { radius } => {
                let local: Vec<ObjectId> = objects
                    .iter()
                    .filter(|o| network.distance(o.origin, home) <= *radius)
                    .map(|o| o.id)
                    .collect();
                if local.is_empty() {
                    objects[rng.gen_range(0..w)].id
                } else {
                    local[rng.gen_range(0..local.len())]
                }
            }
        }
    }
}

/// Seeded generator turning a [`WorkloadSpec`] into an [`Instance`].
#[derive(Debug)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: ChaCha8Rng,
    next_txn: u64,
}

impl WorkloadGenerator {
    /// Create a generator; identical `(spec, seed)` yields identical
    /// workloads.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        WorkloadGenerator {
            spec,
            rng: ChaCha8Rng::seed_from_u64(seed),
            next_txn: 0,
        }
    }

    /// The spec this generator uses.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Place the spec's objects uniformly at random on the network, all
    /// created at time 0.
    pub fn place_objects(&mut self, network: &Network) -> Vec<ObjectInfo> {
        let n = network.n() as u32;
        (0..self.spec.num_objects)
            .map(|i| ObjectInfo {
                id: ObjectId(i),
                origin: NodeId(self.rng.gen_range(0..n)),
                created_at: 0,
            })
            .collect()
    }

    /// Generate one transaction at `home`, time `t`, drawing an object set
    /// from the spec's distribution.
    pub fn gen_txn(
        &mut self,
        home: NodeId,
        t: Time,
        objects: &[ObjectInfo],
        network: &Network,
    ) -> Transaction {
        let objs = self
            .spec
            .sample_object_set(&mut self.rng, objects, home, network);
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        Transaction::new(id, home, objs, t)
    }

    /// Generate a full instance according to the spec's arrival process.
    pub fn generate(&mut self, network: &Network) -> Instance {
        let objects = self.place_objects(network);
        let n = network.n();
        let mut txns = Vec::new();
        match self.spec.arrival.clone() {
            FiniteArrivals::Batch => {
                for v in 0..n {
                    let t = self.gen_txn(NodeId::from_index(v), 0, &objects, network);
                    txns.push(t);
                }
            }
            FiniteArrivals::Bernoulli { rate, horizon } => {
                let rate = rate.clamp(0.0, 1.0);
                for step in 0..horizon {
                    for v in 0..n {
                        if self.rng.gen_bool(rate) {
                            txns.push(self.gen_txn(NodeId::from_index(v), step, &objects, network));
                        }
                    }
                }
            }
            FiniteArrivals::Bursts {
                period,
                per_burst,
                bursts,
            } => {
                for b in 0..bursts {
                    let t = b as Time * period.max(1);
                    for _ in 0..per_burst {
                        let home = NodeId(self.rng.gen_range(0..n as u32));
                        txns.push(self.gen_txn(home, t, &objects, network));
                    }
                }
            }
        }
        Instance::new(objects, txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;

    fn gen(spec: WorkloadSpec, seed: u64) -> (Instance, Network) {
        let net = topology::grid(&[4, 4]);
        let mut g = WorkloadGenerator::new(spec, seed);
        let inst = g.generate(&net);
        inst.validate(&net).unwrap();
        (inst, net)
    }

    #[test]
    fn batch_one_txn_per_node() {
        let (inst, net) = gen(WorkloadSpec::batch_uniform(8, 3), 1);
        assert_eq!(inst.num_txns(), net.n());
        assert!(inst.is_batch());
        assert!(inst.txns.iter().all(|t| t.k() == 3));
        // All homes distinct.
        let mut homes: Vec<_> = inst.txns.iter().map(|t| t.home).collect();
        homes.sort();
        homes.dedup();
        assert_eq!(homes.len(), net.n());
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = gen(WorkloadSpec::batch_uniform(8, 2), 42);
        let (b, _) = gen(WorkloadSpec::batch_uniform(8, 2), 42);
        let (c, _) = gen(WorkloadSpec::batch_uniform(8, 2), 43);
        assert_eq!(a.txns, b.txns);
        assert_ne!(a.txns, c.txns);
    }

    #[test]
    fn k_clamped_to_num_objects() {
        let (inst, _) = gen(WorkloadSpec::batch_uniform(2, 5), 7);
        assert!(inst.txns.iter().all(|t| t.k() == 2));
    }

    #[test]
    fn zipf_skews_popularity() {
        let spec = WorkloadSpec {
            num_objects: 16,
            k: 1,
            object_choice: ObjectChoice::Zipf { exponent: 1.2 },
            arrival: FiniteArrivals::Batch,
        };
        let net = topology::clique(64);
        let mut g = WorkloadGenerator::new(spec, 5);
        let inst = g.generate(&net);
        let req = inst.requesters();
        let first = req.get(&ObjectId(0)).map_or(0, |v| v.len());
        let last = req.get(&ObjectId(15)).map_or(0, |v| v.len());
        assert!(
            first > last,
            "zipf should favor object 0 ({first} vs {last})"
        );
    }

    #[test]
    fn hotspot_concentrates() {
        let spec = WorkloadSpec {
            num_objects: 32,
            k: 2,
            object_choice: ObjectChoice::Hotspot {
                hot_objects: 2,
                hot_prob: 0.9,
            },
            arrival: FiniteArrivals::Batch,
        };
        let net = topology::clique(64);
        let mut g = WorkloadGenerator::new(spec, 6);
        let inst = g.generate(&net);
        let req = inst.requesters();
        let hot: usize = (0..2)
            .map(|i| req.get(&ObjectId(i)).map_or(0, |v| v.len()))
            .sum();
        let total: usize = req.values().map(|v| v.len()).sum();
        assert!(hot * 2 > total, "hot set should draw most requests");
    }

    #[test]
    fn neighborhood_prefers_local() {
        let spec = WorkloadSpec {
            num_objects: 32,
            k: 2,
            object_choice: ObjectChoice::Neighborhood { radius: 2 },
            arrival: FiniteArrivals::Batch,
        };
        let net = topology::line(32);
        let mut g = WorkloadGenerator::new(spec, 8);
        let inst = g.generate(&net);
        // Majority of accesses should be within radius 2 of home.
        let mut local = 0usize;
        let mut total = 0usize;
        for t in &inst.txns {
            for o in t.objects() {
                let origin = inst.object(o).unwrap().origin;
                total += 1;
                if net.distance(origin, t.home) <= 2 {
                    local += 1;
                }
            }
        }
        assert!(local * 2 >= total, "{local}/{total} local accesses");
    }

    #[test]
    fn bernoulli_arrivals_within_horizon() {
        let spec = WorkloadSpec {
            num_objects: 8,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli {
                rate: 0.3,
                horizon: 20,
            },
        };
        let (inst, _) = gen(spec, 3);
        assert!(!inst.txns.is_empty());
        assert!(inst.horizon() < 20);
        assert!(!inst.is_batch() || inst.txns.iter().all(|t| t.generated_at == 0));
    }

    #[test]
    fn bursts_arrive_periodically() {
        let spec = WorkloadSpec {
            num_objects: 8,
            k: 1,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bursts {
                period: 10,
                per_burst: 4,
                bursts: 3,
            },
        };
        let (inst, _) = gen(spec, 4);
        assert_eq!(inst.num_txns(), 12);
        let times: Vec<Time> = inst.txns.iter().map(|t| t.generated_at).collect();
        assert!(times.iter().all(|&t| t % 10 == 0 && t <= 20));
    }

    #[test]
    fn txn_ids_unique_across_calls() {
        let net = topology::line(8);
        let mut g = WorkloadGenerator::new(WorkloadSpec::batch_uniform(4, 1), 9);
        let a = g.generate(&net);
        let b = g.generate(&net);
        let mut ids: Vec<u64> = a.txns.iter().chain(b.txns.iter()).map(|t| t.id.0).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
