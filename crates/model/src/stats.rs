//! Workload characterization: the structural quantities the paper's
//! bounds are expressed in (`k`, `l_max`, conflict degrees) computed for
//! concrete instances, so experiment reports can state what regime a
//! workload is in.

use crate::instance::Instance;
use crate::txn::Transaction;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Structural statistics of a workload instance.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Transactions.
    pub txns: usize,
    /// Distinct objects actually requested.
    pub objects_used: usize,
    /// Max object-set size (`k`).
    pub k_max: usize,
    /// Mean object-set size.
    pub k_mean: f64,
    /// Max requesters of one object (`l_max`).
    pub l_max: usize,
    /// Edges of the conflict graph (object-sharing pairs).
    pub conflict_edges: usize,
    /// Max conflict degree of any transaction (`Δ` in `H_t` terms, over
    /// the whole instance).
    pub max_conflict_degree: usize,
    /// Mean conflict degree.
    pub mean_conflict_degree: f64,
    /// Gini coefficient of object popularity (0 = uniform, ->1 = one hot
    /// object takes all requests).
    pub popularity_gini: f64,
}

/// Gini coefficient of a non-negative sample.
fn gini(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Compute [`WorkloadStats`] for a set of transactions.
pub fn workload_stats(txns: &[Transaction]) -> WorkloadStats {
    if txns.is_empty() {
        return WorkloadStats::default();
    }
    let mut per_object: BTreeMap<crate::ids::ObjectId, Vec<usize>> = BTreeMap::new();
    for (i, t) in txns.iter().enumerate() {
        for o in t.objects() {
            per_object.entry(o).or_default().push(i);
        }
    }
    // Conflict degrees via shared objects (dedup pairs).
    let mut degree = vec![BTreeSet::new(); txns.len()];
    for users in per_object.values() {
        for (a, &i) in users.iter().enumerate() {
            for &j in &users[a + 1..] {
                degree[i].insert(j);
                degree[j].insert(i);
            }
        }
    }
    let conflict_edges = degree.iter().map(|d| d.len()).sum::<usize>() / 2;
    let max_deg = degree.iter().map(|d| d.len()).max().unwrap_or(0);
    let mean_deg = degree.iter().map(|d| d.len()).sum::<usize>() as f64 / txns.len() as f64;
    let k_sum: usize = txns.iter().map(|t| t.k()).sum();
    WorkloadStats {
        txns: txns.len(),
        objects_used: per_object.len(),
        k_max: txns.iter().map(|t| t.k()).max().unwrap_or(0),
        k_mean: k_sum as f64 / txns.len() as f64,
        l_max: per_object.values().map(|v| v.len()).max().unwrap_or(0),
        conflict_edges,
        max_conflict_degree: max_deg,
        mean_conflict_degree: mean_deg,
        popularity_gini: gini(per_object.values().map(|v| v.len() as f64).collect()),
    }
}

impl Instance {
    /// Structural statistics of this instance's transactions.
    pub fn stats(&self) -> WorkloadStats {
        workload_stats(&self.txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, TxnId};
    use dtm_graph::NodeId;

    fn txn(id: u64, objs: &[u32]) -> Transaction {
        Transaction::new(TxnId(id), NodeId(0), objs.iter().map(|&o| ObjectId(o)), 0)
    }

    #[test]
    fn empty_stats() {
        let s = workload_stats(&[]);
        assert_eq!(s.txns, 0);
        assert_eq!(s.popularity_gini, 0.0);
    }

    #[test]
    fn chain_of_conflicts() {
        // T0-T1 share o0, T1-T2 share o1: path conflict graph.
        let ts = vec![txn(0, &[0]), txn(1, &[0, 1]), txn(2, &[1])];
        let s = workload_stats(&ts);
        assert_eq!(s.txns, 3);
        assert_eq!(s.objects_used, 2);
        assert_eq!(s.k_max, 2);
        assert_eq!(s.l_max, 2);
        assert_eq!(s.conflict_edges, 2);
        assert_eq!(s.max_conflict_degree, 2); // T1 conflicts with both
        assert!((s.mean_conflict_degree - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hot_object_gini() {
        // One object requested by everyone, three touched once.
        let ts = vec![
            txn(0, &[0, 1]),
            txn(1, &[0, 2]),
            txn(2, &[0, 3]),
            txn(3, &[0]),
        ];
        let s = workload_stats(&ts);
        assert_eq!(s.l_max, 4);
        assert!(
            s.popularity_gini > 0.3,
            "skew detected: {}",
            s.popularity_gini
        );
        // Uniform workload has (near-)zero gini.
        let uniform = vec![txn(0, &[0]), txn(1, &[1]), txn(2, &[2])];
        assert!(workload_stats(&uniform).popularity_gini.abs() < 1e-9);
    }

    #[test]
    fn clique_conflicts() {
        // Everyone shares one object: complete conflict graph.
        let ts: Vec<Transaction> = (0..5).map(|i| txn(i, &[0])).collect();
        let s = workload_stats(&ts);
        assert_eq!(s.conflict_edges, 10);
        assert_eq!(s.max_conflict_degree, 4);
    }

    #[test]
    fn instance_stats_method() {
        let inst = Instance::new(
            vec![crate::instance::ObjectInfo {
                id: ObjectId(0),
                origin: NodeId(0),
                created_at: 0,
            }],
            vec![txn(0, &[0]), txn(1, &[0])],
        );
        assert_eq!(inst.stats().l_max, 2);
    }
}
