//! Transactions of the data-flow model.

use crate::ids::{ObjectId, Time, TxnId};
use dtm_graph::NodeId;
use serde::{Deserialize, Serialize};

/// How a transaction accesses an object.
///
/// The paper treats every shared access as conflicting ("two transactions
/// conflict if `O(T1) ∩ O(T2) ≠ ∅`"), i.e. exclusive/write accesses. Read
/// sharing is provided as a library extension: two reads of the same object
/// do not conflict. All paper experiments use [`AccessMode::Write`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// Shared read access (extension; non-conflicting with other reads).
    Read,
    /// Exclusive access (the paper's model).
    Write,
}

/// One object access of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectAccess {
    /// The accessed object.
    pub object: ObjectId,
    /// Access mode.
    pub mode: AccessMode,
}

/// A transaction `T`: an atomic block residing at node `home` that needs
/// the objects `O(T)` and executes instantly once all of them have arrived
/// (Section II — "all delays in our model are due to communication").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Globally unique id.
    pub id: TxnId,
    /// The node where the transaction resides and executes.
    pub home: NodeId,
    /// Accessed objects, sorted by object id, no duplicates.
    pub accesses: Vec<ObjectAccess>,
    /// The time step the transaction was generated.
    pub generated_at: Time,
}

impl Transaction {
    /// Build a write-mode (paper model) transaction. Objects are sorted and
    /// deduplicated.
    pub fn new(
        id: TxnId,
        home: NodeId,
        objects: impl IntoIterator<Item = ObjectId>,
        generated_at: Time,
    ) -> Self {
        let mut accesses: Vec<ObjectAccess> = objects
            .into_iter()
            .map(|object| ObjectAccess {
                object,
                mode: AccessMode::Write,
            })
            .collect();
        accesses.sort_unstable();
        accesses.dedup_by_key(|a| a.object);
        Transaction {
            id,
            home,
            accesses,
            generated_at,
        }
    }

    /// Build a transaction with explicit access modes. Duplicate objects are
    /// merged; if any duplicate access writes, the merged access writes.
    pub fn with_modes(
        id: TxnId,
        home: NodeId,
        accesses: impl IntoIterator<Item = (ObjectId, AccessMode)>,
        generated_at: Time,
    ) -> Self {
        let mut list: Vec<ObjectAccess> = accesses
            .into_iter()
            .map(|(object, mode)| ObjectAccess { object, mode })
            .collect();
        // Sort by object, Write before merge resolution via max(mode).
        list.sort_unstable_by_key(|a| (a.object, std::cmp::Reverse(a.mode)));
        list.dedup_by(|b, a| {
            if a.object == b.object {
                a.mode = a.mode.max(b.mode);
                true
            } else {
                false
            }
        });
        Transaction {
            id,
            home,
            accesses: list,
            generated_at,
        }
    }

    /// The object set `O(T)`, sorted.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.accesses.iter().map(|a| a.object)
    }

    /// Number of requested objects (`k` for this transaction).
    #[inline]
    pub fn k(&self) -> usize {
        self.accesses.len()
    }

    /// Access mode for `object`, if requested.
    pub fn mode_of(&self, object: ObjectId) -> Option<AccessMode> {
        self.accesses
            .binary_search_by_key(&object, |a| a.object)
            .ok()
            .map(|i| self.accesses[i].mode)
    }

    /// Does this transaction request `object`?
    pub fn uses(&self, object: ObjectId) -> bool {
        self.mode_of(object).is_some()
    }

    /// Object-set intersection test: `O(T1) ∩ O(T2) ≠ ∅`.
    ///
    /// This is the paper's conflict notion and the one **schedulers must
    /// use**: objects are single-copy and mobile, so even two read
    /// accesses of the same object serialize physically (the object can
    /// only be at one node per step). [`Transaction::conflicts_with`] is
    /// the read/write-aware refinement for analysis layers that model
    /// replication.
    pub fn shares_objects(&self, other: &Transaction) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.accesses.len() && j < other.accesses.len() {
            match self.accesses[i].object.cmp(&other.accesses[j].object) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Conflict test: the transactions share an object and at least one of
    /// the two accesses is a write. Under the paper's all-write model this
    /// reduces to `O(T1) ∩ O(T2) ≠ ∅`.
    pub fn conflicts_with(&self, other: &Transaction) -> bool {
        // Merge-scan over the two sorted access lists.
        let (mut i, mut j) = (0, 0);
        while i < self.accesses.len() && j < other.accesses.len() {
            let (a, b) = (&self.accesses[i], &other.accesses[j]);
            match a.object.cmp(&b.object) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a.mode == AccessMode::Write || b.mode == AccessMode::Write {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// The shared objects on which `self` and `other` conflict.
    pub fn conflict_objects(&self, other: &Transaction) -> Vec<ObjectId> {
        self.accesses
            .iter()
            .filter_map(|a| {
                other.mode_of(a.object).and_then(|m| {
                    (a.mode == AccessMode::Write || m == AccessMode::Write).then_some(a.object)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, objs: &[u32]) -> Transaction {
        Transaction::new(TxnId(id), NodeId(0), objs.iter().map(|&o| ObjectId(o)), 0)
    }

    #[test]
    fn new_sorts_and_dedups() {
        let tx = t(1, &[3, 1, 3, 2]);
        let objs: Vec<u32> = tx.objects().map(|o| o.0).collect();
        assert_eq!(objs, vec![1, 2, 3]);
        assert_eq!(tx.k(), 3);
    }

    #[test]
    fn conflict_on_shared_object() {
        let a = t(1, &[1, 2]);
        let b = t(2, &[2, 3]);
        let c = t(3, &[4]);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(!a.conflicts_with(&c));
        assert_eq!(a.conflict_objects(&b), vec![ObjectId(2)]);
    }

    #[test]
    fn read_read_does_not_conflict() {
        let a = Transaction::with_modes(TxnId(1), NodeId(0), [(ObjectId(1), AccessMode::Read)], 0);
        let b = Transaction::with_modes(TxnId(2), NodeId(1), [(ObjectId(1), AccessMode::Read)], 0);
        let w = Transaction::with_modes(TxnId(3), NodeId(2), [(ObjectId(1), AccessMode::Write)], 0);
        assert!(!a.conflicts_with(&b));
        assert!(a.conflicts_with(&w));
        assert!(w.conflicts_with(&b));
    }

    #[test]
    fn with_modes_merges_duplicates_preferring_write() {
        let tx = Transaction::with_modes(
            TxnId(1),
            NodeId(0),
            [
                (ObjectId(1), AccessMode::Read),
                (ObjectId(1), AccessMode::Write),
                (ObjectId(2), AccessMode::Read),
            ],
            0,
        );
        assert_eq!(tx.k(), 2);
        assert_eq!(tx.mode_of(ObjectId(1)), Some(AccessMode::Write));
        assert_eq!(tx.mode_of(ObjectId(2)), Some(AccessMode::Read));
        assert_eq!(tx.mode_of(ObjectId(9)), None);
    }

    #[test]
    fn uses_lookup() {
        let tx = t(1, &[5, 9]);
        assert!(tx.uses(ObjectId(5)));
        assert!(!tx.uses(ObjectId(6)));
    }

    #[test]
    fn empty_object_set_never_conflicts() {
        let a = t(1, &[]);
        let b = t(2, &[1, 2, 3]);
        assert!(!a.conflicts_with(&b));
        assert_eq!(a.k(), 0);
    }
}
