//! Execution schedules: assignments of commit times to transactions.

use crate::ids::{Time, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An execution schedule `S`: for each scheduled transaction, the time step
/// at which it executes (commits). Deterministic iteration order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    times: BTreeMap<TxnId, Time>,
}

impl Schedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Number of scheduled transactions.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Assign an execution time. Returns the previous time if `txn` was
    /// already scheduled (schedulers treat that as a bug; the simulator
    /// rejects re-scheduling).
    pub fn set(&mut self, txn: TxnId, time: Time) -> Option<Time> {
        self.times.insert(txn, time)
    }

    /// The scheduled execution time of `txn`.
    pub fn get(&self, txn: TxnId) -> Option<Time> {
        self.times.get(&txn).copied()
    }

    /// True if `txn` has been scheduled.
    pub fn contains(&self, txn: TxnId) -> bool {
        self.times.contains_key(&txn)
    }

    /// Remove a transaction from the schedule.
    pub fn remove(&mut self, txn: TxnId) -> Option<Time> {
        self.times.remove(&txn)
    }

    /// Iterate `(txn, time)` in transaction-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TxnId, Time)> + '_ {
        self.times.iter().map(|(&t, &x)| (t, x))
    }

    /// Iterate `(txn, time)` sorted by time (ties by txn id).
    pub fn by_time(&self) -> Vec<(TxnId, Time)> {
        let mut v: Vec<(TxnId, Time)> = self.iter().collect();
        v.sort_by_key(|&(id, t)| (t, id));
        v
    }

    /// Latest scheduled time (`None` when empty).
    pub fn makespan_end(&self) -> Option<Time> {
        self.times.values().copied().max()
    }

    /// Merge another schedule into this one.
    ///
    /// # Panics
    /// Panics if the schedules overlap with different times — merging must
    /// never silently change an already-announced execution time (the
    /// paper's algorithms never alter previously scheduled transactions).
    pub fn merge(&mut self, other: &Schedule) {
        for (txn, time) in other.iter() {
            match self.times.insert(txn, time) {
                None => {}
                Some(prev) if prev == time => {}
                Some(prev) => panic!(
                    "schedule merge conflict for {txn}: {prev} vs {time} — \
                     scheduled transactions must not be re-timed"
                ),
            }
        }
    }
}

impl FromIterator<(TxnId, Time)> for Schedule {
    fn from_iter<I: IntoIterator<Item = (TxnId, Time)>>(iter: I) -> Self {
        Schedule {
            times: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_contains() {
        let mut s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.set(TxnId(1), 5), None);
        assert_eq!(s.set(TxnId(1), 7), Some(5));
        assert_eq!(s.get(TxnId(1)), Some(7));
        assert!(s.contains(TxnId(1)));
        assert!(!s.contains(TxnId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn by_time_sorted() {
        let s: Schedule = [(TxnId(3), 9), (TxnId(1), 2), (TxnId(2), 2)]
            .into_iter()
            .collect();
        assert_eq!(
            s.by_time(),
            vec![(TxnId(1), 2), (TxnId(2), 2), (TxnId(3), 9)]
        );
        assert_eq!(s.makespan_end(), Some(9));
    }

    #[test]
    fn merge_disjoint() {
        let mut a: Schedule = [(TxnId(1), 1)].into_iter().collect();
        let b: Schedule = [(TxnId(2), 2)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn merge_identical_ok() {
        let mut a: Schedule = [(TxnId(1), 1)].into_iter().collect();
        let b: Schedule = [(TxnId(1), 1), (TxnId(2), 2)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "merge conflict")]
    fn merge_conflict_panics() {
        let mut a: Schedule = [(TxnId(1), 1)].into_iter().collect();
        let b: Schedule = [(TxnId(1), 3)].into_iter().collect();
        a.merge(&b);
    }

    #[test]
    fn remove_and_empty_makespan() {
        let mut s: Schedule = [(TxnId(1), 4)].into_iter().collect();
        assert_eq!(s.remove(TxnId(1)), Some(4));
        assert_eq!(s.makespan_end(), None);
    }
}
