//! Online workload sources: the interface by which the simulator pulls
//! transaction arrivals, including the closed-loop process of Section III-C
//! ("once a transaction completes execution, the node ... issues in the
//! next step a new transaction").

use crate::generator::WorkloadSpec;
use crate::ids::{Time, TxnId};
use crate::instance::{Instance, ObjectInfo};
use crate::txn::Transaction;
use dtm_graph::{Network, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};

/// A stream of transaction arrivals consumed by the simulator.
///
/// The simulator calls [`WorkloadSource::arrivals`] exactly once per time
/// step with strictly increasing `t`, and [`WorkloadSource::on_commit`]
/// whenever a transaction commits (closed-loop sources react by issuing a
/// successor).
pub trait WorkloadSource {
    /// Append the transactions generated at time `t` to `out` (their
    /// `generated_at` must be `t`). `out` is a caller-owned reusable
    /// buffer — implementations must *append*, never clear, and must not
    /// allocate when the step has no arrivals, so the simulator's
    /// steady-state tick stays allocation-free through quiet periods.
    fn arrivals_into(&mut self, t: Time, out: &mut Vec<Transaction>);

    /// Transactions generated at time `t`, as a fresh vector. Convenience
    /// wrapper over [`WorkloadSource::arrivals_into`] for tests and
    /// one-shot callers; the engine's hot loop uses the buffered form.
    fn arrivals(&mut self, t: Time) -> Vec<Transaction> {
        let mut out = Vec::new();
        self.arrivals_into(t, &mut out);
        out
    }

    /// Notification that `txn` committed at time `t`.
    fn on_commit(&mut self, txn: &Transaction, t: Time);

    /// True when no further arrivals will ever be produced (the run can end
    /// once all live transactions have committed).
    fn exhausted(&self) -> bool;

    /// The shared objects of this workload.
    fn objects(&self) -> &[ObjectInfo];
}

/// Replays a pre-generated [`Instance`] at its recorded generation times.
#[derive(Debug, Clone)]
pub struct TraceSource {
    objects: Vec<ObjectInfo>,
    /// Remaining arrivals in generation-time order, front-drained as the
    /// simulator's clock passes each step. The stable sort in
    /// [`TraceSource::new`] keeps same-step transactions in instance
    /// order, matching the per-time buckets this queue replaced.
    pending: VecDeque<Transaction>,
}

impl TraceSource {
    /// Replay `instance` as-is.
    pub fn new(instance: Instance) -> Self {
        let mut txns = instance.txns;
        txns.sort_by_key(|t| t.generated_at);
        TraceSource {
            objects: instance.objects,
            pending: txns.into(),
        }
    }

    /// Total number of transactions still pending.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

impl WorkloadSource for TraceSource {
    fn arrivals_into(&mut self, t: Time, out: &mut Vec<Transaction>) {
        // The trait's strictly-increasing-`t` contract means everything
        // generated before `t` has already been drained, so the batch for
        // `t` (if any) sits at the front.
        while self.pending.front().is_some_and(|x| x.generated_at == t) {
            if let Some(x) = self.pending.pop_front() {
                out.push(x);
            }
        }
    }

    fn on_commit(&mut self, _txn: &Transaction, _t: Time) {}

    fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }

    fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }
}

/// All transactions of an instance released at time 0 (offline batch).
#[derive(Debug, Clone)]
pub struct BatchSource(TraceSource);

impl BatchSource {
    /// Release every transaction of `instance` at time 0 regardless of its
    /// recorded generation time.
    pub fn new(mut instance: Instance) -> Self {
        for t in &mut instance.txns {
            t.generated_at = 0;
        }
        BatchSource(TraceSource::new(instance))
    }
}

impl WorkloadSource for BatchSource {
    fn arrivals_into(&mut self, t: Time, out: &mut Vec<Transaction>) {
        self.0.arrivals_into(t, out)
    }

    fn on_commit(&mut self, txn: &Transaction, t: Time) {
        self.0.on_commit(txn, t)
    }

    fn exhausted(&self) -> bool {
        self.0.exhausted()
    }

    fn objects(&self) -> &[ObjectInfo] {
        self.0.objects()
    }
}

/// Closed-loop source (Section III-C): every node has one outstanding
/// transaction; when it commits, the node issues a fresh one at the next
/// step, for `rounds` rounds per node.
pub struct ClosedLoopSource {
    network: Network,
    spec: WorkloadSpec,
    objects: Vec<ObjectInfo>,
    rng: ChaCha8Rng,
    next_txn: u64,
    /// Remaining re-issues per node (after the initial transaction).
    rounds_left: Vec<u32>,
    /// Nodes scheduled to issue at a given future time.
    queued: BTreeMap<Time, Vec<NodeId>>,
    /// Owning node of each in-flight transaction.
    owner: BTreeMap<TxnId, NodeId>,
}

impl ClosedLoopSource {
    /// Every node issues `rounds >= 1` transactions total, each drawing
    /// `spec.k` objects from `spec.object_choice`. Objects are placed
    /// uniformly at random (seeded).
    pub fn new(network: Network, spec: WorkloadSpec, rounds: u32, seed: u64) -> Self {
        assert!(rounds >= 1, "closed loop needs at least one round");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = network.n();
        let objects: Vec<ObjectInfo> = (0..spec.num_objects)
            .map(|i| ObjectInfo {
                id: crate::ids::ObjectId(i),
                origin: NodeId(rand::Rng::gen_range(&mut rng, 0..n as u32)),
                created_at: 0,
            })
            .collect();
        let mut queued: BTreeMap<Time, Vec<NodeId>> = BTreeMap::new();
        queued.insert(0, (0..n).map(NodeId::from_index).collect());
        ClosedLoopSource {
            network,
            spec,
            objects,
            rng,
            next_txn: 0,
            rounds_left: vec![rounds - 1; n],
            queued,
            owner: BTreeMap::new(),
        }
    }

    /// Total transactions this source will ever emit.
    pub fn total_txns(&self) -> usize {
        self.network.n() * (self.rounds_left.first().map_or(0, |&r| r as usize) + 1)
    }
}

impl WorkloadSource for ClosedLoopSource {
    fn arrivals_into(&mut self, t: Time, out: &mut Vec<Transaction>) {
        let Some(nodes) = self.queued.remove(&t) else {
            return;
        };
        for home in nodes {
            let objs =
                self.spec
                    .sample_object_set(&mut self.rng, &self.objects, home, &self.network);
            let id = TxnId(self.next_txn);
            self.next_txn += 1;
            self.owner.insert(id, home);
            out.push(Transaction::new(id, home, objs, t));
        }
    }

    fn on_commit(&mut self, txn: &Transaction, t: Time) {
        if let Some(home) = self.owner.remove(&txn.id) {
            let left = &mut self.rounds_left[home.index()];
            if *left > 0 {
                *left -= 1;
                self.queued.entry(t + 1).or_default().push(home);
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.queued.is_empty() && self.owner.is_empty()
    }

    fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadGenerator, WorkloadSpec};
    use dtm_graph::topology;

    #[test]
    fn trace_source_replays_times() {
        let net = topology::line(4);
        let spec = WorkloadSpec {
            arrival: crate::generator::FiniteArrivals::Bursts {
                period: 5,
                per_burst: 2,
                bursts: 2,
            },
            ..WorkloadSpec::batch_uniform(4, 1)
        };
        let inst = WorkloadGenerator::new(spec, 1).generate(&net);
        let mut src = TraceSource::new(inst.clone());
        assert_eq!(src.remaining(), 4);
        let mut seen = 0;
        for t in 0..=5 {
            let a = src.arrivals(t);
            for x in &a {
                assert_eq!(x.generated_at, t);
            }
            seen += a.len();
        }
        assert_eq!(seen, 4);
        assert!(src.exhausted());
    }

    #[test]
    fn batch_source_releases_everything_at_zero() {
        let net = topology::line(4);
        let spec = WorkloadSpec {
            arrival: crate::generator::FiniteArrivals::Bursts {
                period: 7,
                per_burst: 3,
                bursts: 2,
            },
            ..WorkloadSpec::batch_uniform(4, 1)
        };
        let inst = WorkloadGenerator::new(spec, 2).generate(&net);
        let mut src = BatchSource::new(inst);
        let a0 = src.arrivals(0);
        assert_eq!(a0.len(), 6);
        assert!(src.exhausted());
        assert!(a0.iter().all(|t| t.generated_at == 0));
    }

    #[test]
    fn closed_loop_reissues_after_commit() {
        let net = topology::clique(3);
        let spec = WorkloadSpec::batch_uniform(4, 1);
        let mut src = ClosedLoopSource::new(net, spec, 2, 3);
        assert_eq!(src.total_txns(), 6);
        let first = src.arrivals(0);
        assert_eq!(first.len(), 3);
        assert!(!src.exhausted());
        // Commit one transaction; its node must re-issue at t+1.
        src.on_commit(&first[0], 4);
        let re = src.arrivals(5);
        assert_eq!(re.len(), 1);
        assert_eq!(re[0].home, first[0].home);
        assert_eq!(re[0].generated_at, 5);
        // Second-round transaction commits: no further reissue.
        src.on_commit(&re[0], 9);
        assert!(src.arrivals(10).is_empty());
        // Other two still outstanding.
        assert!(!src.exhausted());
        src.on_commit(&first[1], 9);
        src.on_commit(&first[2], 9);
        let more = src.arrivals(10);
        assert_eq!(more.len(), 2);
        src.on_commit(&more[0], 12);
        src.on_commit(&more[1], 12);
        assert!(src.exhausted());
    }

    #[test]
    fn closed_loop_ids_unique() {
        let net = topology::clique(4);
        let spec = WorkloadSpec::batch_uniform(4, 2);
        let mut src = ClosedLoopSource::new(net, spec, 1, 7);
        let txns = src.arrivals(0);
        let mut ids: Vec<u64> = txns.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        for t in &txns {
            src.on_commit(t, 3);
        }
        assert!(src.exhausted());
    }
}
