//! Application-benchmark workload presets.
//!
//! The paper's conclusion asks for evaluation "against different
//! application benchmarks in a practical setting" — these presets model
//! the transactional access patterns of three classic TM benchmark
//! families on top of the data-flow model:
//!
//! * [`bank`] — money transfers: every transaction touches exactly two
//!   accounts (objects) drawn from a Zipf popularity distribution (the
//!   `Bank`/`TL2`-style microbenchmark);
//! * [`social_graph`] — social-network updates: a small hot set of
//!   celebrity objects absorbs most writes while the long tail is cold
//!   (hotspot distribution, k up to 3);
//! * [`inventory`] — warehouse order processing à la TPC-C: transactions
//!   touch one of few shared "district" objects plus local "stock"
//!   objects near their home node (neighborhood locality);
//! * [`edge_sensors`] — fog/IoT telemetry aggregation on large networks:
//!   many objects, strong neighborhood locality so traffic stays within
//!   the landmark oracle's cheap local radius. Sized for the 10⁵–10⁶-node
//!   substrates (geometric, power-law, fog-tree topologies).

use crate::generator::{FiniteArrivals, ObjectChoice, WorkloadSpec};
use crate::ids::Time;

/// Bank-transfer workload: `accounts` objects, two per transaction, Zipf
/// popularity (exponent 1.0), Bernoulli arrivals.
pub fn bank(accounts: u32, rate: f64, horizon: Time) -> WorkloadSpec {
    WorkloadSpec {
        num_objects: accounts.max(2),
        k: 2,
        object_choice: ObjectChoice::Zipf { exponent: 1.0 },
        arrival: FiniteArrivals::Bernoulli { rate, horizon },
    }
}

/// Social-graph workload: `objects` entities of which `hot` are
/// celebrities receiving 80 % of accesses; up to 3 objects per
/// transaction.
pub fn social_graph(objects: u32, hot: u32, rate: f64, horizon: Time) -> WorkloadSpec {
    WorkloadSpec {
        num_objects: objects.max(1),
        k: 3,
        object_choice: ObjectChoice::Hotspot {
            hot_objects: hot.clamp(1, objects.max(1)),
            hot_prob: 0.8,
        },
        arrival: FiniteArrivals::Bernoulli { rate, horizon },
    }
}

/// Inventory / order-processing workload: `stock` objects accessed with
/// locality radius `radius` (stock is sharded near its warehouse),
/// two objects per order.
pub fn inventory(stock: u32, radius: u64, rate: f64, horizon: Time) -> WorkloadSpec {
    WorkloadSpec {
        num_objects: stock.max(1),
        k: 2,
        object_choice: ObjectChoice::Neighborhood { radius },
        arrival: FiniteArrivals::Bernoulli { rate, horizon },
    }
}

/// Edge-telemetry workload for large networks: one object per `shard` of
/// nodes (so object count tracks network size without exploding memory),
/// single-object transactions with tight neighborhood locality — sensor
/// readings aggregate at a nearby fog node rather than crossing the
/// network. `radius` is in weighted distance; keep it near the topology's
/// typical edge weight so the workload exercises local routing.
pub fn edge_sensors(nodes: u32, shard: u32, radius: u64, rate: f64, horizon: Time) -> WorkloadSpec {
    WorkloadSpec {
        num_objects: (nodes / shard.max(1)).max(1),
        k: 1,
        object_choice: ObjectChoice::Neighborhood { radius },
        arrival: FiniteArrivals::Bernoulli { rate, horizon },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use dtm_graph::topology;

    #[test]
    fn bank_touches_two_accounts() {
        let net = topology::clique(16);
        let inst = WorkloadGenerator::new(bank(64, 0.3, 20), 1).generate(&net);
        assert!(!inst.txns.is_empty());
        assert!(inst.txns.iter().all(|t| t.k() == 2));
        // Zipf skew: account 0 should be clearly hotter than account 63.
        let s = inst.stats();
        assert!(s.popularity_gini > 0.2, "gini {}", s.popularity_gini);
    }

    #[test]
    fn social_graph_concentrates_on_celebrities() {
        let net = topology::grid(&[5, 5]);
        let inst = WorkloadGenerator::new(social_graph(100, 3, 0.3, 20), 2).generate(&net);
        let req = inst.requesters();
        let hot: usize = (0..3)
            .map(|i| req.get(&crate::ids::ObjectId(i)).map_or(0, |v| v.len()))
            .sum();
        let total: usize = req.values().map(|v| v.len()).sum();
        assert!(hot * 2 > total, "celebrities got {hot}/{total}");
    }

    #[test]
    fn inventory_is_local() {
        let net = topology::grid(&[6, 6]);
        let inst = WorkloadGenerator::new(inventory(72, 2, 0.2, 25), 3).generate(&net);
        let mut local = 0usize;
        let mut total = 0usize;
        for t in &inst.txns {
            for o in t.objects() {
                total += 1;
                if net.distance(inst.object(o).unwrap().origin, t.home) <= 2 {
                    local += 1;
                }
            }
        }
        assert!(local * 2 >= total, "{local}/{total} local");
    }

    #[test]
    fn edge_sensors_shards_objects_and_stays_local() {
        let net = topology::geometric(400, 3, 21);
        let spec = edge_sensors(400, 20, 6, 0.2, 25);
        assert_eq!(spec.num_objects, 20);
        let inst = WorkloadGenerator::new(spec, 4).generate(&net);
        assert!(inst.txns.iter().all(|t| t.k() == 1));
        // Most accesses stay within the locality radius (the generator
        // falls back to a uniform pick only when no object is local).
        let mut local = 0usize;
        let mut total = 0usize;
        for t in &inst.txns {
            for o in t.objects() {
                total += 1;
                if net.distance(inst.object(o).unwrap().origin, t.home) <= 6 {
                    local += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(local * 3 >= total, "{local}/{total} local");
    }

    #[test]
    fn degenerate_parameters_clamped() {
        let s = social_graph(0, 9, 0.1, 5);
        assert_eq!(s.num_objects, 1);
        let b = bank(1, 0.1, 5);
        assert_eq!(b.num_objects, 2);
    }
}
