//! # dtm-model
//!
//! Transactions, mobile objects, workload instances and generators for the
//! data-flow model of distributed transactional memory (Section II of
//! Busch et al., *"Dynamic Scheduling in Distributed Transactional
//! Memory"*, IPDPS 2020).
//!
//! In the data-flow model each transaction resides at a node of the
//! communication graph and requests a set of shared objects; objects are
//! mobile and move to the transactions that need them. A transaction
//! executes (commits) at the step it has assembled all its objects.
//!
//! This crate defines:
//! * [`Transaction`], [`ObjectInfo`] and the id types;
//! * [`Instance`] — a workload: object placements plus a set of
//!   transactions with generation times (a *batch* instance has all
//!   generation times equal to zero, the setting of Busch et al. SPAA'17);
//! * [`Schedule`] — an assignment of execution times to transactions;
//! * [`generator`] — seeded random workload generators (uniform, Zipf,
//!   hotspot, neighborhood locality) and arrival processes (batch, Poisson,
//!   periodic bursts);
//! * [`source`] — the [`source::WorkloadSource`] trait by which the
//!   simulator pulls online arrivals, including the closed-loop source of
//!   Section III-C (a node issues a fresh transaction right after its
//!   previous one commits);
//! * [`arrival`] — open-system arrival processes (seeded Poisson,
//!   bursty on/off, adversarial fixed-rate ρ): deterministic, unbounded
//!   streams behind [`arrival::OpenLoopSource`] for steady-state
//!   stability experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod generator;
pub mod ids;
pub mod instance;
pub mod presets;
pub mod schedule;
pub mod source;
pub mod stats;
pub mod txn;

pub use arrival::{ArrivalProcess, OpenLoopSource};
pub use generator::{FiniteArrivals, ObjectChoice, WorkloadGenerator, WorkloadSpec};
pub use ids::{ObjectId, Time, TxnId};
pub use instance::{Instance, InstanceError, ObjectInfo};
pub use schedule::Schedule;
pub use source::{BatchSource, ClosedLoopSource, TraceSource, WorkloadSource};
pub use stats::{workload_stats, WorkloadStats};
pub use txn::{AccessMode, ObjectAccess, Transaction};
