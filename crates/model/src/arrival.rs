//! Open-system arrival processes: deterministic, unbounded transaction
//! streams for steady-state (stability) experiments.
//!
//! Closed-batch runs replay a finite [`crate::Instance`] and drain it to
//! empty; the processes here never run dry. An [`ArrivalProcess`] decides
//! *how many* transactions arrive at each step and *where* (their home
//! nodes); [`OpenLoopSource`] turns that decision into fully-formed
//! transactions by drawing object sets from a [`WorkloadSpec`]'s
//! popularity distribution, exactly like [`crate::ClosedLoopSource`]
//! does for the closed loop.
//!
//! All three processes are seeded and deterministic: the same
//! `(process, spec, seed)` triple produces the same transaction stream
//! forever, on every platform. None of them allocates on a step that
//! produces no arrivals — the steady-state tick path stays
//! allocation-free through quiet periods (pinned by the
//! `alloc_steady_state` integration test).

use crate::generator::WorkloadSpec;
use crate::ids::{ObjectId, Time, TxnId};
use crate::instance::ObjectInfo;
use crate::txn::Transaction;
use dtm_graph::{Network, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// An unbounded, deterministic arrival process: given the step number it
/// yields the home nodes of the transactions injected at that step.
///
/// Rates are *system-wide expected transactions per step* (the injection
/// rate ρ of the stability literature), independent of the network size,
/// so a ρ-sweep compares policies at equal offered load across
/// topologies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at expected rate `rate` per step: each node
    /// independently injects with probability `rate / n` (Bernoulli
    /// thinning of a Poisson stream; exact Poisson in the n → ∞ limit).
    Poisson {
        /// Expected arrivals per step, system-wide (ρ).
        rate: f64,
    },
    /// Bursty on/off modulation: behaves like [`ArrivalProcess::Poisson`]
    /// at `rate` during each `on`-window, then injects nothing for the
    /// following `off`-window. The *average* rate is
    /// `rate * on / (on + off)`.
    OnOff {
        /// Expected arrivals per step while the source is on.
        rate: f64,
        /// Length of each on-window in steps (≥ 1).
        on: Time,
        /// Length of each off-window in steps.
        off: Time,
    },
    /// Adversarial fixed-rate injection: *exactly*
    /// `⌊(t+1)·rate⌋ − ⌊t·rate⌋` transactions per step (a token bucket —
    /// no randomness in the count), homes assigned round-robin so every
    /// node is loaded equally. The worst case for policies that rely on
    /// arrival gaps to drain backlog.
    Adversarial {
        /// Exact long-run arrivals per step (ρ).
        rate: f64,
    },
}

impl ArrivalProcess {
    /// Append the home nodes of the transactions arriving at step `t` to
    /// `out` (not cleared; appended in deterministic node order). Must be
    /// called with strictly increasing `t` for round-robin state to make
    /// sense; the randomized variants are stateless in `t` given `rng`'s
    /// call sequence.
    ///
    /// Performs no allocation when the step has no arrivals (beyond what
    /// `out` already owns).
    pub fn homes_at(
        &mut self,
        t: Time,
        network_n: usize,
        rng: &mut ChaCha8Rng,
        out: &mut Vec<NodeId>,
    ) {
        match self {
            ArrivalProcess::Poisson { rate } => {
                bernoulli_thin(*rate, network_n, rng, out);
            }
            ArrivalProcess::OnOff { rate, on, off } => {
                let period = (*on + *off).max(1);
                if t % period < *on {
                    bernoulli_thin(*rate, network_n, rng, out);
                }
                // Off-window: no draws at all — the rng sequence depends
                // only on the deterministic on/off pattern, never on
                // anything a policy did.
            }
            ArrivalProcess::Adversarial { rate } => {
                let r = rate.max(0.0);
                let due = ((t + 1) as f64 * r).floor() as u64 - (t as f64 * r).floor() as u64;
                for i in 0..due {
                    out.push(NodeId(((t + i) % network_n as u64) as u32));
                }
            }
        }
    }

    /// Long-run expected arrivals per step (the ρ this process offers).
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::OnOff { rate, on, off } => {
                rate * (*on as f64) / ((*on + *off).max(1) as f64)
            }
            ArrivalProcess::Adversarial { rate } => *rate,
        }
    }

    /// Short name for tables (`poisson` / `onoff` / `adversarial`).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::OnOff { .. } => "onoff",
            ArrivalProcess::Adversarial { .. } => "adversarial",
        }
    }
}

/// Per-node Bernoulli thinning at system rate `rate`: node `v` injects
/// with probability `rate / n`, drawn in ascending node order.
fn bernoulli_thin(rate: f64, n: usize, rng: &mut ChaCha8Rng, out: &mut Vec<NodeId>) {
    let p = (rate / n.max(1) as f64).clamp(0.0, 1.0);
    if p == 0.0 {
        return;
    }
    for v in 0..n {
        if rng.gen_bool(p) {
            out.push(NodeId::from_index(v));
        }
    }
}

/// Open-loop workload source: an [`ArrivalProcess`] injecting
/// transactions forever, with object sets drawn from a
/// [`WorkloadSpec`]'s popularity distribution (the spec's own finite
/// `arrival` field is ignored, as in [`crate::ClosedLoopSource`]).
///
/// [`crate::WorkloadSource::exhausted`] is always `false`: an open run
/// never drains, it is stopped by the driver (`run_for` /
/// [`crate::WorkloadSource`] consumers with a step budget).
#[derive(Clone, Debug)]
pub struct OpenLoopSource {
    network: Network,
    spec: WorkloadSpec,
    process: ArrivalProcess,
    objects: Vec<ObjectInfo>,
    rng: ChaCha8Rng,
    next_txn: u64,
    /// Reusable per-step home buffer (empty between calls).
    homes: Vec<NodeId>,
    emitted: u64,
}

impl OpenLoopSource {
    /// Build an open-loop source over `network`. Objects are placed
    /// uniformly at random (seeded), all created at time 0; arrivals and
    /// object-set draws share the same seeded rng, so the full stream is
    /// a pure function of `(network, spec, process, seed)`.
    pub fn new(network: Network, spec: WorkloadSpec, process: ArrivalProcess, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = network.n() as u32;
        let objects: Vec<ObjectInfo> = (0..spec.num_objects)
            .map(|i| ObjectInfo {
                id: ObjectId(i),
                origin: NodeId(rng.gen_range(0..n)),
                created_at: 0,
            })
            .collect();
        OpenLoopSource {
            network,
            spec,
            process,
            objects,
            rng,
            next_txn: 0,
            homes: Vec::new(),
            emitted: 0,
        }
    }

    /// The arrival process driving this source.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// Transactions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl crate::source::WorkloadSource for OpenLoopSource {
    fn arrivals_into(&mut self, t: Time, out: &mut Vec<Transaction>) {
        let mut homes = std::mem::take(&mut self.homes);
        homes.clear();
        self.process
            .homes_at(t, self.network.n(), &mut self.rng, &mut homes);
        for &home in &homes {
            let objs =
                self.spec
                    .sample_object_set(&mut self.rng, &self.objects, home, &self.network);
            let id = TxnId(self.next_txn);
            self.next_txn += 1;
            self.emitted += 1;
            out.push(Transaction::new(id, home, objs, t));
        }
        homes.clear();
        self.homes = homes;
    }

    fn on_commit(&mut self, _txn: &Transaction, _t: Time) {}

    fn exhausted(&self) -> bool {
        false
    }

    fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::WorkloadSource;
    use dtm_graph::topology;

    fn drain(src: &mut OpenLoopSource, steps: Time) -> Vec<Transaction> {
        let mut all = Vec::new();
        for t in 0..steps {
            src.arrivals_into(t, &mut all);
        }
        all
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let mk = |seed| {
            OpenLoopSource::new(
                topology::grid(&[4, 4]),
                WorkloadSpec::batch_uniform(8, 2),
                ArrivalProcess::Poisson { rate: 0.5 },
                seed,
            )
        };
        let a = drain(&mut mk(7), 200);
        let b = drain(&mut mk(7), 200);
        let c = drain(&mut mk(8), 200);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        // Rate sanity: expectation 0.5/step over 200 steps = 100.
        assert!(a.len() > 50 && a.len() < 180, "got {}", a.len());
    }

    #[test]
    fn poisson_never_exhausts_and_ids_are_sequential() {
        let mut src = OpenLoopSource::new(
            topology::line(6),
            WorkloadSpec::batch_uniform(4, 1),
            ArrivalProcess::Poisson { rate: 1.0 },
            3,
        );
        let txns = drain(&mut src, 100);
        assert!(!src.exhausted());
        assert_eq!(src.emitted(), txns.len() as u64);
        for (i, txn) in txns.iter().enumerate() {
            assert_eq!(txn.id.0, i as u64);
        }
    }

    #[test]
    fn onoff_is_silent_in_off_windows() {
        let mut src = OpenLoopSource::new(
            topology::clique(8),
            WorkloadSpec::batch_uniform(4, 1),
            ArrivalProcess::OnOff {
                rate: 4.0,
                on: 3,
                off: 5,
            },
            11,
        );
        let mut per_step = Vec::new();
        for t in 0..80 {
            let mut out = Vec::new();
            src.arrivals_into(t, &mut out);
            per_step.push(out.len());
        }
        for (t, &count) in per_step.iter().enumerate() {
            if (t as Time) % 8 >= 3 {
                assert_eq!(count, 0, "off-window step {t} produced arrivals");
            }
        }
        assert!(per_step.iter().sum::<usize>() > 0);
    }

    #[test]
    fn adversarial_rate_is_exact_and_round_robin() {
        let mut src = OpenLoopSource::new(
            topology::line(5),
            WorkloadSpec::batch_uniform(4, 1),
            ArrivalProcess::Adversarial { rate: 0.75 },
            1,
        );
        let txns = drain(&mut src, 400);
        // Exactly ⌊400·0.75⌋ = 300 transactions.
        assert_eq!(txns.len(), 300);
        // Every node gets load (round-robin homes).
        for v in 0..5u32 {
            assert!(txns.iter().any(|t| t.home == NodeId(v)));
        }
    }

    #[test]
    fn mean_rate_reports_long_run_average() {
        assert_eq!(ArrivalProcess::Poisson { rate: 0.4 }.mean_rate(), 0.4);
        assert_eq!(
            ArrivalProcess::OnOff {
                rate: 1.0,
                on: 1,
                off: 3
            }
            .mean_rate(),
            0.25
        );
        assert_eq!(ArrivalProcess::Adversarial { rate: 0.9 }.mean_rate(), 0.9);
    }

    #[test]
    fn generated_at_matches_step() {
        let mut src = OpenLoopSource::new(
            topology::clique(4),
            WorkloadSpec::batch_uniform(4, 2),
            ArrivalProcess::Adversarial { rate: 1.0 },
            5,
        );
        for t in 0..20 {
            let mut out = Vec::new();
            src.arrivals_into(t, &mut out);
            assert!(out.iter().all(|x| x.generated_at == t));
        }
    }
}
