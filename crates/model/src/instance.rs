//! Workload instances: object placements plus transactions.

use crate::ids::{ObjectId, Time, TxnId};
use crate::txn::Transaction;
use dtm_graph::{Network, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A shared object: where and when it was created (Section II: "an object
/// is created at some time step at some node").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// The object id.
    pub id: ObjectId,
    /// Node at which the object initially resides.
    pub origin: NodeId,
    /// Creation time (0 for all paper workloads).
    pub created_at: Time,
}

/// Validation failures for an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// A transaction home or object origin is outside the graph.
    NodeOutOfRange(NodeId),
    /// A transaction references an unknown object.
    UnknownObject(TxnId, ObjectId),
    /// Duplicate transaction id.
    DuplicateTxn(TxnId),
    /// Duplicate object id.
    DuplicateObject(ObjectId),
    /// A transaction requests an object created after its generation time.
    ObjectNotYetCreated(TxnId, ObjectId),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
            InstanceError::UnknownObject(t, o) => write!(f, "{t} requests unknown object {o}"),
            InstanceError::DuplicateTxn(t) => write!(f, "duplicate transaction id {t}"),
            InstanceError::DuplicateObject(o) => write!(f, "duplicate object id {o}"),
            InstanceError::ObjectNotYetCreated(t, o) => {
                write!(f, "{t} requests {o} before it is created")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A workload instance: the objects, their initial placements, and the
/// transactions with their generation times.
///
/// A *batch* instance (the SPAA'17 offline setting, Section IV-D: `w`
/// objects, at most one transaction per node, up to `k` objects per
/// transaction) has all generation times zero; the online setting allows
/// arbitrary generation times. [`Instance::is_batch`] distinguishes them.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Instance {
    /// The shared objects.
    pub objects: Vec<ObjectInfo>,
    /// The transactions, in generation order (ties by id).
    pub txns: Vec<Transaction>,
}

impl Instance {
    /// Build and normalize an instance: transactions are sorted by
    /// `(generated_at, id)` and objects by id.
    pub fn new(objects: Vec<ObjectInfo>, mut txns: Vec<Transaction>) -> Self {
        let mut objects = objects;
        objects.sort_unstable_by_key(|o| o.id);
        txns.sort_unstable_by_key(|t| (t.generated_at, t.id));
        Instance { objects, txns }
    }

    /// Number of objects (`w` in the paper).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of transactions.
    pub fn num_txns(&self) -> usize {
        self.txns.len()
    }

    /// Maximum object-set size over all transactions (`k`).
    pub fn k_max(&self) -> usize {
        self.txns.iter().map(|t| t.k()).max().unwrap_or(0)
    }

    /// True if every transaction is generated at time 0 (offline batch).
    pub fn is_batch(&self) -> bool {
        self.txns.iter().all(|t| t.generated_at == 0)
    }

    /// Look up a transaction by id (linear in the worst case, but ids are
    /// normally dense and sorted; uses binary search on generation order
    /// falling back to scan).
    pub fn txn(&self, id: TxnId) -> Option<&Transaction> {
        self.txns.iter().find(|t| t.id == id)
    }

    /// Look up an object's info.
    pub fn object(&self, id: ObjectId) -> Option<&ObjectInfo> {
        self.objects
            .binary_search_by_key(&id, |o| o.id)
            .ok()
            .map(|i| &self.objects[i])
    }

    /// Per-object list of requesting transactions (in `(generated_at, id)`
    /// order). Key set = objects actually requested.
    pub fn requesters(&self) -> BTreeMap<ObjectId, Vec<TxnId>> {
        let mut map: BTreeMap<ObjectId, Vec<TxnId>> = BTreeMap::new();
        for t in &self.txns {
            for o in t.objects() {
                map.entry(o).or_default().push(t.id);
            }
        }
        map
    }

    /// `l_max`: the maximum number of transactions requesting any single
    /// object — a fundamental lower-bound ingredient (Theorem 3's analysis).
    pub fn l_max(&self) -> usize {
        let mut counts: BTreeMap<ObjectId, usize> = BTreeMap::new();
        for t in &self.txns {
            for o in t.objects() {
                *counts.entry(o).or_insert(0) += 1;
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Validate against a network: nodes in range, object references known,
    /// ids unique, creation times consistent.
    pub fn validate(&self, network: &Network) -> Result<(), InstanceError> {
        let n = network.n();
        let mut obj_ids = BTreeSet::new();
        for o in &self.objects {
            if o.origin.index() >= n {
                return Err(InstanceError::NodeOutOfRange(o.origin));
            }
            if !obj_ids.insert(o.id) {
                return Err(InstanceError::DuplicateObject(o.id));
            }
        }
        let mut txn_ids = BTreeSet::new();
        for t in &self.txns {
            if t.home.index() >= n {
                return Err(InstanceError::NodeOutOfRange(t.home));
            }
            if !txn_ids.insert(t.id) {
                return Err(InstanceError::DuplicateTxn(t.id));
            }
            for o in t.objects() {
                match self.object(o) {
                    None => return Err(InstanceError::UnknownObject(t.id, o)),
                    Some(info) if info.created_at > t.generated_at => {
                        return Err(InstanceError::ObjectNotYetCreated(t.id, o))
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    /// Restrict to the transactions generated at exactly time `t`
    /// (`T_t^g` in the paper's notation).
    pub fn generated_at(&self, t: Time) -> impl Iterator<Item = &Transaction> {
        self.txns.iter().filter(move |x| x.generated_at == t)
    }

    /// Latest generation time in the instance.
    pub fn horizon(&self) -> Time {
        self.txns.iter().map(|t| t.generated_at).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::topology;

    fn obj(id: u32, origin: u32) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(id),
            origin: NodeId(origin),
            created_at: 0,
        }
    }

    fn txn(id: u64, home: u32, objs: &[u32], t: Time) -> Transaction {
        Transaction::new(
            TxnId(id),
            NodeId(home),
            objs.iter().map(|&o| ObjectId(o)),
            t,
        )
    }

    fn sample() -> Instance {
        Instance::new(
            vec![obj(0, 0), obj(1, 1), obj(2, 2)],
            vec![
                txn(0, 0, &[0, 1], 0),
                txn(1, 1, &[1], 0),
                txn(2, 2, &[2, 0], 3),
            ],
        )
    }

    #[test]
    fn stats() {
        let inst = sample();
        assert_eq!(inst.num_objects(), 3);
        assert_eq!(inst.num_txns(), 3);
        assert_eq!(inst.k_max(), 2);
        assert_eq!(inst.l_max(), 2); // objects 0 and 1 each requested twice
        assert!(!inst.is_batch());
        assert_eq!(inst.horizon(), 3);
    }

    #[test]
    fn sorted_by_generation() {
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(5, 0, &[0], 7), txn(1, 1, &[0], 2), txn(9, 2, &[0], 2)],
        );
        let ids: Vec<u64> = inst.txns.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 9, 5]);
    }

    #[test]
    fn validates_against_network() {
        let net = topology::line(4);
        sample().validate(&net).unwrap();
    }

    #[test]
    fn rejects_unknown_object() {
        let net = topology::line(4);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 0, &[0, 7], 0)]);
        assert_eq!(
            inst.validate(&net),
            Err(InstanceError::UnknownObject(TxnId(0), ObjectId(7)))
        );
    }

    #[test]
    fn rejects_out_of_range_home() {
        let net = topology::line(2);
        let inst = Instance::new(vec![obj(0, 0)], vec![txn(0, 9, &[0], 0)]);
        assert_eq!(
            inst.validate(&net),
            Err(InstanceError::NodeOutOfRange(NodeId(9)))
        );
    }

    #[test]
    fn rejects_duplicate_ids() {
        let net = topology::line(4);
        let inst = Instance::new(vec![obj(0, 0), obj(0, 1)], vec![]);
        assert_eq!(
            inst.validate(&net),
            Err(InstanceError::DuplicateObject(ObjectId(0)))
        );
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(3, 0, &[0], 0), txn(3, 1, &[0], 0)],
        );
        assert_eq!(
            inst.validate(&net),
            Err(InstanceError::DuplicateTxn(TxnId(3)))
        );
    }

    #[test]
    fn rejects_premature_request() {
        let net = topology::line(4);
        let late_obj = ObjectInfo {
            id: ObjectId(0),
            origin: NodeId(0),
            created_at: 10,
        };
        let inst = Instance::new(vec![late_obj], vec![txn(0, 0, &[0], 5)]);
        assert_eq!(
            inst.validate(&net),
            Err(InstanceError::ObjectNotYetCreated(TxnId(0), ObjectId(0)))
        );
    }

    #[test]
    fn requesters_in_generation_order() {
        let inst = sample();
        let req = inst.requesters();
        assert_eq!(req[&ObjectId(0)], vec![TxnId(0), TxnId(2)]);
        assert_eq!(req[&ObjectId(1)], vec![TxnId(0), TxnId(1)]);
    }

    #[test]
    fn batch_detection() {
        let inst = Instance::new(
            vec![obj(0, 0)],
            vec![txn(0, 0, &[0], 0), txn(1, 1, &[0], 0)],
        );
        assert!(inst.is_batch());
    }

    #[test]
    fn serde_roundtrip() {
        let inst = sample();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_txns(), inst.num_txns());
        assert_eq!(back.txns, inst.txns);
    }
}
