//! `lint.toml` — path-scoped policy for the analyzer.
//!
//! A deliberately tiny TOML subset (no vendored `toml` crate exists and
//! none may be added): `[section]` and `[[section]]` headers, string
//! values, and arrays of strings. That is all the policy file needs.
//!
//! ```toml
//! [scan]
//! include = ["crates", "tests", "examples"]
//! exclude = ["crates/lint/tests/corpus"]
//!
//! [[allow]]
//! rule = "D2"
//! path = "crates/sim/src/engine.rs"
//! reason = "phase timing feeds observers only"
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line number in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One value: a string or an array of strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `key = "string"`
    Str(String),
    /// `key = ["a", "b"]`
    List(Vec<String>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::List(_) => None,
        }
    }

    fn as_list(&self) -> Option<&[String]> {
        match self {
            Value::Str(_) => None,
            Value::List(v) => Some(v),
        }
    }
}

/// One `[[allow]]` entry: waive `rule` findings under a path prefix.
#[derive(Clone, Debug)]
pub struct PathAllow {
    /// Rule name (`"D1"`..`"W2"`), or `"*"` for all rules.
    pub rule: String,
    /// Path prefix, relative to the workspace root, `/`-separated.
    pub path: String,
    /// Mandatory written justification.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header in `lint.toml` (0 when the
    /// entry was constructed programmatically) — reported by W2 when the
    /// entry waives nothing across a whole run.
    pub line: u32,
}

/// Parsed configuration with workspace defaults filled in.
#[derive(Clone, Debug)]
pub struct Config {
    /// Directories to scan, relative to the root.
    pub include: Vec<String>,
    /// Path prefixes to skip (fixture corpora, generated code).
    pub exclude: Vec<String>,
    /// Crate dirs whose code must be deterministic (rules D1/D2).
    pub deterministic: Vec<String>,
    /// Crate dirs allowed to read wall clocks (rule D2 exemption).
    pub timing_ok: Vec<String>,
    /// Crate dirs where `unwrap`/`expect` are forbidden (rule C1).
    pub library: Vec<String>,
    /// Paths whose structs face the open-system boundedness audit
    /// (rule B1): growable fields must name a prune site.
    pub bounded: Vec<String>,
    /// The clippy invocation CI must use (`[clippy] flags`). Not
    /// interpreted by the scanner; `tests/clippy_drift.rs` pins it
    /// against `.github/workflows/ci.yml`.
    pub clippy_flags: Vec<String>,
    /// Path-scoped waivers.
    pub allows: Vec<PathAllow>,
}

impl Default for Config {
    fn default() -> Self {
        let det = [
            "crates/model",
            "crates/graph",
            "crates/core",
            "crates/sim",
            "crates/offline",
        ];
        Config {
            include: vec!["crates".into(), "tests".into(), "examples".into()],
            exclude: Vec::new(),
            deterministic: det.iter().map(|s| s.to_string()).collect(),
            timing_ok: vec![
                "crates/telemetry".into(),
                "crates/bench".into(),
                "crates/lint".into(),
            ],
            library: det.iter().map(|s| s.to_string()).collect(),
            bounded: vec!["crates/core".into(), "crates/sim/src/kernel.rs".into()],
            clippy_flags: ["--workspace", "--all-targets", "--", "-D", "warnings"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            allows: Vec::new(),
        }
    }
}

/// Raw parse result: scalar sections and array-of-table sections.
#[derive(Debug, Default)]
struct RawToml {
    /// `[section]` -> key -> value.
    sections: BTreeMap<String, BTreeMap<String, Value>>,
    /// `[[section]]` occurrences in order, with the header's 1-based line.
    tables: Vec<(String, usize, BTreeMap<String, Value>)>,
}

fn parse_string(s: &str, line: usize) -> Result<(String, &str), ConfigError> {
    let rest = s.trim_start();
    let Some(body) = rest.strip_prefix('"') else {
        return Err(ConfigError {
            line,
            message: format!("expected a quoted string at `{rest}`"),
        });
    };
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &body[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => out.push(other),
                None => break,
            },
            other => out.push(other),
        }
    }
    Err(ConfigError {
        line,
        message: "unterminated string".into(),
    })
}

fn parse_value(s: &str, line: usize) -> Result<Value, ConfigError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| ConfigError {
            line,
            message: "unterminated array (arrays must be single-line)".into(),
        })?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let (item, after) = parse_string(rest, line)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() {
                return Err(ConfigError {
                    line,
                    message: format!("expected `,` between array items, found `{rest}`"),
                });
            }
        }
        return Ok(Value::List(items));
    }
    let (val, after) = parse_string(s, line)?;
    if !after.trim().is_empty() {
        return Err(ConfigError {
            line,
            message: format!("trailing input after string value: `{}`", after.trim()),
        });
    }
    Ok(Value::Str(val))
}

/// Strip a `#` comment that is outside any string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_raw(src: &str) -> Result<RawToml, ConfigError> {
    let mut raw = RawToml::default();
    // Where the next `key = value` lands: a scalar section name, or the
    // index of the currently-open `[[table]]`.
    enum Target {
        None,
        Section(String),
        Table(usize),
    }
    let mut target = Target::None;
    for (idx, full) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(full).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[") {
            let name = h.strip_suffix("]]").ok_or_else(|| ConfigError {
                line: lineno,
                message: "malformed `[[table]]` header".into(),
            })?;
            raw.tables
                .push((name.trim().to_string(), lineno, BTreeMap::new()));
            target = Target::Table(raw.tables.len() - 1);
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            let name = h.strip_suffix(']').ok_or_else(|| ConfigError {
                line: lineno,
                message: "malformed `[section]` header".into(),
            })?;
            let name = name.trim().to_string();
            raw.sections.entry(name.clone()).or_default();
            target = Target::Section(name);
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = value`, found `{line}`"),
            });
        };
        let key = key.trim().to_string();
        let value = parse_value(val, lineno)?;
        match &target {
            Target::None => {
                return Err(ConfigError {
                    line: lineno,
                    message: "key outside any [section]".into(),
                })
            }
            Target::Section(name) => {
                raw.sections
                    .get_mut(name)
                    .map(|m| m.insert(key, value))
                    .ok_or_else(|| ConfigError {
                        line: lineno,
                        message: "internal: section vanished".into(),
                    })?;
            }
            Target::Table(i) => {
                raw.tables
                    .get_mut(*i)
                    .map(|(_, _, m)| m.insert(key, value))
                    .ok_or_else(|| ConfigError {
                        line: lineno,
                        message: "internal: table vanished".into(),
                    })?;
            }
        }
    }
    Ok(raw)
}

impl Config {
    /// Parse `lint.toml` source. Unknown sections and keys are permitted
    /// (forward compatibility); known keys replace the built-in defaults.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let raw = parse_raw(src)?;
        let mut cfg = Config::default();
        let list = |sec: &str, key: &str| -> Option<Vec<String>> {
            raw.sections
                .get(sec)
                .and_then(|m| m.get(key))
                .and_then(|v| v.as_list())
                .map(|v| v.to_vec())
        };
        if let Some(v) = list("scan", "include") {
            cfg.include = v;
        }
        if let Some(v) = list("scan", "exclude") {
            cfg.exclude = v;
        }
        if let Some(v) = list("rules", "deterministic") {
            cfg.deterministic = v;
        }
        if let Some(v) = list("rules", "timing_ok") {
            cfg.timing_ok = v;
        }
        if let Some(v) = list("rules", "library") {
            cfg.library = v;
        }
        if let Some(v) = list("rules", "bounded") {
            cfg.bounded = v;
        }
        if let Some(v) = list("clippy", "flags") {
            cfg.clippy_flags = v;
        }
        for (i, (name, header_line, map)) in raw.tables.iter().enumerate() {
            if name != "allow" {
                continue;
            }
            let get = |key: &str| -> Result<String, ConfigError> {
                map.get(key)
                    .and_then(|v| v.as_str())
                    .map(|s| s.to_string())
                    .ok_or_else(|| ConfigError {
                        line: 0,
                        message: format!("[[allow]] entry #{} is missing `{key}`", i + 1),
                    })
            };
            let allow = PathAllow {
                rule: get("rule")?,
                path: get("path")?,
                reason: get("reason")?,
                line: *header_line as u32,
            };
            if allow.reason.trim().is_empty() {
                return Err(ConfigError {
                    line: 0,
                    message: format!(
                        "[[allow]] for {} at {} has an empty reason — every waiver must say why",
                        allow.rule, allow.path
                    ),
                });
            }
            cfg.allows.push(allow);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_file() {
        let cfg = Config::default();
        assert!(cfg.deterministic.contains(&"crates/sim".to_string()));
        assert!(cfg.timing_ok.contains(&"crates/bench".to_string()));
    }

    #[test]
    fn parses_sections_tables_and_comments() {
        let src = r##"
# top comment
[scan]
include = ["crates", "tests"] # trailing comment
exclude = ["crates/lint/tests/corpus"]

[rules]
deterministic = ["crates/model"]

[[allow]]
rule = "D2"
path = "crates/sim/src/engine.rs"
reason = "timing feeds observers only; a # inside a string stays"

[clippy]
flags = ["-D", "warnings"]
"##;
        let cfg = Config::parse(src).expect("parses");
        assert_eq!(cfg.include, ["crates", "tests"]);
        assert_eq!(cfg.exclude, ["crates/lint/tests/corpus"]);
        assert_eq!(cfg.deterministic, ["crates/model"]);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].rule, "D2");
        assert!(cfg.allows[0].reason.contains("# inside a string"));
        assert_eq!(cfg.allows[0].line, 10, "header line of the [[allow]]");
        assert_eq!(cfg.clippy_flags, ["-D", "warnings"]);
    }

    #[test]
    fn bounded_and_clippy_defaults() {
        let cfg = Config::default();
        assert!(cfg.bounded.contains(&"crates/core".to_string()));
        assert!(cfg
            .bounded
            .contains(&"crates/sim/src/kernel.rs".to_string()));
        assert_eq!(
            cfg.clippy_flags,
            ["--workspace", "--all-targets", "--", "-D", "warnings"]
        );
        let parsed = Config::parse("[rules]\nbounded = [\"crates/x\"]\n").expect("parses");
        assert_eq!(parsed.bounded, ["crates/x"]);
    }

    #[test]
    fn rejects_allow_without_reason() {
        let src = "[[allow]]\nrule = \"C1\"\npath = \"x\"\nreason = \"  \"\n";
        assert!(Config::parse(src).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[scan\ninclude = []").is_err());
        assert!(Config::parse("key = \"v\"").is_err());
        assert!(Config::parse("[s]\nkey \"v\"").is_err());
        assert!(Config::parse("[s]\nkey = [\"a\" \"b\"]").is_err());
    }
}
