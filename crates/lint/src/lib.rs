//! `dtm-lint`: a determinism & concurrency-hygiene static analyzer for
//! the dtm workspace.
//!
//! The workspace's load-bearing claim is that schedules, tables and
//! traces are byte-identical across runs, thread counts and policies
//! (DESIGN.md, "Determinism rules"). Golden traces and `--jobs` parity
//! diffs enforce that *dynamically*; this crate enforces the static
//! side: it lexes every `.rs` file under `crates/`, `tests/` and
//! `examples/` (its own small lexer plus a brace-matched item parser —
//! no `syn`, no new vendored deps) and proves the absence of the known
//! hazard classes:
//!
//! * **D1** unordered-map iteration in deterministic crates,
//! * **D2** wall-clock reads outside timing crates,
//! * **D3** unseeded randomness,
//! * **D4** thread-identity-dependent logic,
//! * **D5** floating point in deterministic crates,
//! * **H1** allocation inside `hot-path`-marked functions,
//! * **B1** unannotated growable fields in bounded-tier structs,
//! * **C1** `unwrap()`/`expect()` in library crates,
//! * **C2** missing `#![forbid(unsafe_code)]` on crate roots,
//! * **W1** waivers/markers without a written reason,
//! * **W2** stale waivers and markers that match zero findings.
//!
//! The parser ([`parser`]) gives rules *scopes*: H1 applies inside the
//! bodies of marked functions, B1 walks struct fields, and every
//! finding names its innermost enclosing item.
//!
//! Hazard sites are waivable inline —
//! `// dtm-lint: allow(<rule>) -- <reason>` on the offending line or on
//! a comment line directly above — or path-scoped via `[[allow]]`
//! entries in the repo's `lint.toml`. Every waiver must carry a reason,
//! and `[[allow]]` entries that waive nothing across a whole run are W2
//! findings themselves; CI runs `cargo run -p dtm-lint -- --github` and
//! fails on any unwaived finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod walk;

pub use config::{Config, ConfigError};
pub use report::LintReport;
pub use rules::{Finding, Rule};

use std::fmt;
use std::path::Path;

/// A failed lint *run* (I/O or config problems — not findings; findings
/// live in the [`LintReport`]).
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `lint.toml` did not parse.
    Config(ConfigError),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{path}: {source}"),
            LintError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<ConfigError> for LintError {
    fn from(e: ConfigError) -> Self {
        LintError::Config(e)
    }
}

/// Load `lint.toml` from `root` (built-in defaults if absent).
pub fn load_config(root: &Path) -> Result<Config, LintError> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let src = std::fs::read_to_string(&path).map_err(|source| LintError::Io {
        path: path.display().to_string(),
        source,
    })?;
    Ok(Config::parse(&src)?)
}

/// Lint the tree under `root` with `cfg`. Returns the full report;
/// callers decide what exit status [`LintReport::unwaived_count`] maps
/// to.
///
/// `[[allow]]` usage is aggregated across every scanned file: an entry
/// that waived nothing anywhere becomes a W2 finding attributed to
/// `lint.toml` itself (at the entry's header line). Those findings can
/// only be silenced by fixing or removing the entry — an `[[allow]]`
/// for W2 on `lint.toml` would itself be stale.
pub fn run(root: &Path, cfg: &Config) -> Result<LintReport, LintError> {
    let files = walk::rust_files(root, cfg).map_err(|source| LintError::Io {
        path: root.display().to_string(),
        source,
    })?;
    let mut findings = Vec::new();
    let mut allow_used = vec![false; cfg.allows.len()];
    for rel in &files {
        let full = root.join(rel);
        let src = std::fs::read_to_string(&full).map_err(|source| LintError::Io {
            path: full.display().to_string(),
            source,
        })?;
        findings.extend(rules::scan_file_tracking(rel, &src, cfg, &mut allow_used));
    }
    for (a, _) in cfg.allows.iter().zip(&allow_used).filter(|(_, u)| !**u) {
        findings.push(Finding {
            path: "lint.toml".into(),
            line: a.line,
            rule: Rule::W2,
            snippet: format!(
                "stale [[allow]] (waived no finding): rule {} under {}",
                a.rule, a.path
            ),
            scope: None,
            waived: None,
        });
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(LintReport {
        root: root.display().to_string(),
        files_scanned: files.len(),
        findings,
    })
}
