//! The rule set and the per-file scanner.
//!
//! Rules are scoped by crate tier (see `lint.toml` / [`crate::config::Config`]):
//!
//! | rule | scope | hazard |
//! |------|-------|--------|
//! | D1 | deterministic crates | `HashMap`/`HashSet` — iteration order can leak into schedules |
//! | D2 | everything except `timing_ok` crates | `Instant`/`SystemTime` wall-clock reads |
//! | D3 | everywhere | unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`) |
//! | D4 | everywhere | thread-identity logic (`thread::current`, `RAYON_NUM_THREADS` reads, `available_parallelism`) |
//! | C1 | library crates, outside `#[cfg(test)]` | `.unwrap()` / `.expect(...)` |
//! | C2 | crate roots | missing `#![forbid(unsafe_code)]`, or an `allow(unsafe_code)` masking it |
//! | W1 | everywhere | a `dtm-lint: allow(...)` waiver without a written reason |
//!
//! Findings are waivable inline (`// dtm-lint: allow(<rule>) -- <reason>`
//! on the offending line or alone on the line above) or path-scoped via
//! `[[allow]]` in `lint.toml`. W1 is not waivable: a waiver must say why.

use crate::config::Config;
use crate::lexer::{lex, Comment, Token, TokenKind};

/// The rule identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered-map iteration hazard in deterministic crates.
    D1,
    /// Wall-clock read outside timing crates.
    D2,
    /// Unseeded randomness.
    D3,
    /// Thread-identity-dependent logic.
    D4,
    /// `unwrap`/`expect` in library code.
    C1,
    /// Missing or masked `#![forbid(unsafe_code)]`.
    C2,
    /// Waiver without a reason.
    W1,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 7] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::C1,
        Rule::C2,
        Rule::W1,
    ];

    /// Stable rule name used in reports, waivers and `lint.toml`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::W1 => "W1",
        }
    }

    /// One-line description for `--list-rules` and reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "HashMap/HashSet in a deterministic crate: iteration order can leak into schedules; use BTreeMap/BTreeSet or waive with proof order cannot escape",
            Rule::D2 => "Instant/SystemTime read outside telemetry/bench: wall clocks must never influence scheduling",
            Rule::D3 => "unseeded RNG (thread_rng/from_entropy/OsRng): all randomness must flow from an explicit seed",
            Rule::D4 => "thread-identity logic (thread::current, RAYON_NUM_THREADS read, available_parallelism): output must not depend on pool width or worker identity",
            Rule::C1 => "unwrap()/expect() in a library crate: fix, return a typed error, or waive with justification",
            Rule::C2 => "crate root must carry #![forbid(unsafe_code)], unmasked by any allow(unsafe_code)",
            Rule::W1 => "dtm-lint waiver without a written reason (`-- <why>` is mandatory)",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == s)
    }
}

/// One finding, pre- or post-waiver.
#[derive(Clone, Debug)]
pub struct Finding {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending source line (trimmed) or a synthesized message.
    pub snippet: String,
    /// `Some(reason)` if an inline or path-scoped waiver covers this.
    pub waived: Option<String>,
}

/// An inline waiver parsed from a comment.
#[derive(Debug)]
struct Waiver {
    /// Line the waiver comment starts on.
    line: u32,
    /// Line the waiver covers: its own line, or the next code line for a
    /// comment that stands alone.
    covers: u32,
    /// Waived rules.
    rules: Vec<Rule>,
    /// Justification after `--` (empty string triggers W1).
    reason: String,
}

/// Parse a waiver (`dtm-lint: allow` + rule list + optional `--` reason)
/// out of a comment body. Returns `None` for comments that don't form a
/// well-formed waiver — including prose that merely *describes* the
/// waiver grammar. A typo'd rule name therefore simply fails to waive,
/// and the underlying finding still surfaces the problem.
fn parse_waiver(c: &Comment) -> Option<(Vec<Rule>, String)> {
    let idx = c.text.find("dtm-lint:")?;
    let rest = c.text[idx + "dtm-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let mut rules = Vec::new();
    for part in rest[..close].split(',') {
        rules.push(Rule::from_name(part.trim())?);
    }
    let after = rest[close + 1..].trim();
    let reason = after
        .strip_prefix("--")
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some((rules, reason))
}

/// Token-index ranges covered by `#[cfg(test)]` items (typically
/// `mod tests { ... }`); C1 does not apply inside them.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((is_test_attr, after_attr)) = scan_attr(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = after_attr;
            continue;
        }
        // Skip any further attributes (`#[cfg(test)] #[allow(..)] mod ..`).
        let mut j = after_attr;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match scan_attr(tokens, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // The item runs to its closing brace, or to `;` for brace-less
        // items (`#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut end = j;
        while let Some(t) = tokens.get(end) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            end += 1;
        }
        regions.push((attr_start, end.min(tokens.len().saturating_sub(1))));
        i = end + 1;
    }
    regions
}

/// Scan a `#[...]` / `#![...]` attribute starting at token `i` (which must
/// be `#`). Returns (contains `cfg` and `test` idents, index past `]`).
fn scan_attr(tokens: &[Token], i: usize) -> Option<(bool, usize)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((saw_cfg && saw_test, j + 1));
            }
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    None
}

/// Does any `#[...]`/`#![...]` attribute in the stream contain both idents?
fn has_attr_with(tokens: &[Token], a: &str, b: &str) -> Option<u32> {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            if let Some((_, end)) = scan_attr(tokens, i) {
                let body = &tokens[i..end];
                if body.iter().any(|t| t.is_ident(a)) && body.iter().any(|t| t.is_ident(b)) {
                    return Some(tokens[i].line);
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    None
}

/// How each rule family applies to one file (derived from its path).
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// D1 applies (deterministic crate).
    pub deterministic: bool,
    /// D2 exempt (telemetry/bench/lint timing code).
    pub timing_ok: bool,
    /// C1 applies (library crate).
    pub library: bool,
    /// C2 applies (this is a crate root, `crates/<name>/src/lib.rs`).
    pub crate_root: bool,
}

impl FileClass {
    /// Classify a root-relative, `/`-separated path.
    pub fn of(path: &str, cfg: &Config) -> FileClass {
        let in_any = |prefixes: &[String]| {
            prefixes
                .iter()
                .any(|p| path == p || path.starts_with(&format!("{}/", p.trim_end_matches('/'))))
        };
        let mut parts = path.split('/');
        let crate_root = parts.next() == Some("crates")
            && parts.next().is_some()
            && parts.next() == Some("src")
            && parts.next() == Some("lib.rs")
            && parts.next().is_none();
        FileClass {
            deterministic: in_any(&cfg.deterministic),
            timing_ok: in_any(&cfg.timing_ok),
            library: in_any(&cfg.library),
            crate_root,
        }
    }
}

/// Scan one file's source, returning findings with waivers applied.
pub fn scan_file(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let class = FileClass::of(path, cfg);
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let mut findings: Vec<Finding> = Vec::new();
    let mut fire = |rule: Rule, line: u32, snip: String| {
        findings.push(Finding {
            path: path.to_string(),
            line,
            rule,
            snippet: snip,
            waived: None,
        });
    };

    // --- Waivers (and W1 for malformed/reason-less ones). ---
    let mut waivers: Vec<Waiver> = Vec::new();
    for c in &lexed.comments {
        match parse_waiver(c) {
            None => {}
            Some((rules, reason)) => {
                if reason.is_empty() {
                    fire(
                        Rule::W1,
                        c.line,
                        format!("waiver without reason: {}", snippet(c.line)),
                    );
                }
                // A comment standing alone on its line covers the next
                // line that carries any token; a trailing comment covers
                // its own line.
                let own_line_has_code = tokens.iter().any(|t| t.line == c.line);
                let covers = if own_line_has_code {
                    c.line
                } else {
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                waivers.push(Waiver {
                    line: c.line,
                    covers,
                    rules,
                    reason,
                });
            }
        }
    }

    // --- Token rules. ---
    let regions = test_regions(tokens);
    let in_test = |idx: usize| regions.iter().any(|&(s, e)| idx >= s && idx <= e);

    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Ident => {
                let name = t.text.as_str();
                if class.deterministic && (name == "HashMap" || name == "HashSet") {
                    fire(Rule::D1, t.line, snippet(t.line));
                }
                if !class.timing_ok && (name == "Instant" || name == "SystemTime") {
                    fire(Rule::D2, t.line, snippet(t.line));
                }
                if matches!(name, "thread_rng" | "from_entropy" | "OsRng" | "getrandom") {
                    fire(Rule::D3, t.line, snippet(t.line));
                }
                if name == "available_parallelism" {
                    fire(Rule::D4, t.line, snippet(t.line));
                }
                if name == "current"
                    && i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].is_ident("thread")
                {
                    fire(Rule::D4, t.line, snippet(t.line));
                }
                if class.library
                    && !in_test(i)
                    && (name == "unwrap" || name == "expect")
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    fire(Rule::C1, t.line, snippet(t.line));
                }
            }
            // Exact match only: `env::var(<this literal>)` is the
            // hazard; prose mentioning the variable (like this rule's
            // own catalog entry) is not. Spelled via concat! so the
            // linter's source holds no exact literal to self-flag.
            TokenKind::Str if t.text == concat!("RAYON_NUM_", "THREADS") => {
                fire(Rule::D4, t.line, snippet(t.line));
            }
            _ => {}
        }
    }

    // --- C2: crate roots must forbid unsafe code; nothing may mask it. ---
    if class.crate_root && has_attr_with(tokens, "forbid", "unsafe_code").is_none() {
        fire(
            Rule::C2,
            1,
            "crate root is missing #![forbid(unsafe_code)]".into(),
        );
    }
    if let Some(line) = has_attr_with(tokens, "allow", "unsafe_code") {
        fire(Rule::C2, line, snippet(line));
    }

    // --- Apply waivers: inline first, then lint.toml path scopes. ---
    for f in &mut findings {
        if f.rule == Rule::W1 {
            continue; // a waiver can't waive its own missing reason
        }
        if let Some(w) = waivers
            .iter()
            .find(|w| (w.covers == f.line || w.line == f.line) && w.rules.contains(&f.rule))
        {
            if !w.reason.is_empty() {
                f.waived = Some(w.reason.clone());
                continue;
            }
        }
        if let Some(a) = cfg.allows.iter().find(|a| {
            (a.rule == f.rule.name() || a.rule == "*")
                && (f.path == a.path
                    || f.path
                        .starts_with(&format!("{}/", a.path.trim_end_matches('/'))))
        }) {
            f.waived = Some(format!("lint.toml: {}", a.reason));
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(path, src, &cfg())
    }

    fn unwaived(fs: &[Finding]) -> Vec<(&'static str, u32)> {
        fs.iter()
            .filter(|f| f.waived.is_none())
            .map(|f| (f.rule.name(), f.line))
            .collect()
    }

    #[test]
    fn d1_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(unwaived(&scan("crates/sim/src/x.rs", src)), [("D1", 1)]);
        assert!(unwaived(&scan("crates/telemetry/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d2_respects_timing_crates() {
        let src = "let t = Instant::now();\n";
        assert_eq!(unwaived(&scan("crates/core/src/x.rs", src)), [("D2", 1)]);
        assert_eq!(unwaived(&scan("tests/foo.rs", src)), [("D2", 1)]);
        assert!(unwaived(&scan("crates/bench/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d3_and_d4_fire_everywhere() {
        assert_eq!(
            unwaived(&scan("examples/x.rs", "let r = thread_rng();\n")),
            [("D3", 1)]
        );
        assert_eq!(
            unwaived(&scan(
                "crates/bench/src/x.rs",
                "let id = thread::current().id();\n"
            )),
            [("D4", 1)]
        );
        assert_eq!(
            unwaived(&scan("tests/x.rs", "std::env::var(\"RAYON_NUM_THREADS\")")),
            [("D4", 1)]
        );
    }

    #[test]
    fn c1_skips_test_modules_and_non_library_crates() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); y.expect(\"z\"); }\n}\n";
        assert_eq!(unwaived(&scan("crates/model/src/x.rs", src)), [("C1", 1)]);
        assert!(unwaived(&scan("crates/bench/src/x.rs", src)).is_empty());
    }

    #[test]
    fn c1_ignores_lookalikes() {
        // unwrap_or, expect_ok, a method *definition*, and idents in strings.
        let src = "fn expect_ok() {}\nlet a = x.unwrap_or(0);\nlet b = \"call .unwrap() here\";\nfn unwrap() {}\n";
        assert!(unwaived(&scan("crates/model/src/x.rs", src)).is_empty());
    }

    #[test]
    fn inline_waiver_covers_same_and_next_line() {
        let trailing = "use std::collections::HashMap; // dtm-lint: allow(D1) -- key-lookup only\n";
        assert!(unwaived(&scan("crates/sim/src/x.rs", trailing)).is_empty());
        let above = "// dtm-lint: allow(D1) -- key-lookup only\nuse std::collections::HashMap;\n";
        assert!(unwaived(&scan("crates/sim/src/x.rs", above)).is_empty());
        // ...but not two lines down.
        let far = "// dtm-lint: allow(D1) -- nope\nlet x = 1;\nuse std::collections::HashMap;\n";
        assert_eq!(unwaived(&scan("crates/sim/src/x.rs", far)), [("D1", 3)]);
    }

    #[test]
    fn waiver_without_reason_is_w1_and_does_not_waive() {
        let src = "use std::collections::HashMap; // dtm-lint: allow(D1)\n";
        let fs = scan("crates/sim/src/x.rs", src);
        assert_eq!(unwaived(&fs), [("D1", 1), ("W1", 1)]);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src = "use std::collections::HashMap; // dtm-lint: allow(C1) -- wrong rule\n";
        assert_eq!(unwaived(&scan("crates/sim/src/x.rs", src)), [("D1", 1)]);
    }

    #[test]
    fn config_path_allow_applies() {
        let mut cfg = Config::default();
        cfg.allows.push(crate::config::PathAllow {
            rule: "D2".into(),
            path: "crates/sim/src/engine.rs".into(),
            reason: "observer timing".into(),
        });
        let src = "let t = Instant::now();\n";
        let fs = scan_file("crates/sim/src/engine.rs", src, &cfg);
        assert!(fs.iter().all(|f| f.waived.is_some()));
        let fs = scan_file("crates/sim/src/state.rs", src, &cfg);
        assert_eq!(unwaived(&fs), [("D2", 1)]);
    }

    #[test]
    fn c2_missing_forbid_and_masking_allow() {
        let fs = scan("crates/model/src/lib.rs", "pub mod x;\n");
        assert_eq!(unwaived(&fs), [("C2", 1)]);
        let ok = scan(
            "crates/model/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n",
        );
        assert!(unwaived(&ok).is_empty());
        let masked = scan(
            "crates/model/src/lib.rs",
            "#![forbid(unsafe_code)]\n#[allow(unsafe_code)]\nmod bad {}\n",
        );
        assert_eq!(unwaived(&masked), [("C2", 2)]);
        // Non-root files don't need the attribute.
        assert!(unwaived(&scan("crates/model/src/other.rs", "pub fn f() {}\n")).is_empty());
    }

    #[test]
    fn hazards_in_comments_do_not_fire() {
        let src = "// HashMap and Instant and thread_rng\n/* SystemTime too */\nlet x = 1;\n";
        assert!(unwaived(&scan("crates/sim/src/x.rs", src)).is_empty());
    }
}
