//! The rule set and the per-file scanner.
//!
//! Rules are scoped by crate tier (see `lint.toml` / [`crate::config::Config`]):
//!
//! | rule | scope | hazard |
//! |------|-------|--------|
//! | D1 | deterministic crates | `HashMap`/`HashSet` — iteration order can leak into schedules |
//! | D2 | everything except `timing_ok` crates | `Instant`/`SystemTime` wall-clock reads |
//! | D3 | everywhere | unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`) |
//! | D4 | everywhere | thread-identity logic (`thread::current`, `RAYON_NUM_THREADS` reads, `available_parallelism`) |
//! | D5 | deterministic crates, outside `#[cfg(test)]` | `f32`/`f64` types, float literals, `partial_cmp`/`sort_by` |
//! | H1 | functions marked `hot-path` | allocating constructs inside a marked function body |
//! | B1 | `bounded`-tier structs | growable collection field without a `bounded` annotation naming its prune site |
//! | C1 | library crates, outside `#[cfg(test)]` | `.unwrap()` / `.expect(...)` |
//! | C2 | crate roots | missing `#![forbid(unsafe_code)]`, or an `allow(unsafe_code)` masking it |
//! | W1 | everywhere | a `dtm-lint` waiver or marker without a written reason |
//! | W2 | everywhere | a stale waiver or marker that matches zero findings |
//!
//! Findings are waivable inline (`// dtm-lint: allow(<rule>) -- <reason>`
//! on the offending line or alone on the line above) or path-scoped via
//! `[[allow]]` in `lint.toml`. W1 is not waivable: a waiver must say why.
//!
//! Scope-aware rules ride on [`crate::parser`]: every finding carries the
//! innermost enclosing function as its `scope`, H1 applies inside bodies
//! of functions whose leading comment block carries the `hot-path`
//! marker, and B1 walks parsed struct fields. The markers (anchored at
//! the start of a comment):
//!
//! * `hot-path` — this function's warmed body must not allocate
//!   (the static face of `tests/alloc_steady_state.rs`);
//! * `bounded` + `--` + a prune site — this growable field is bounded,
//!   and the annotation names where entries leave.

use crate::config::Config;
use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::parser;

/// The rule identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered-map iteration hazard in deterministic crates.
    D1,
    /// Wall-clock read outside timing crates.
    D2,
    /// Unseeded randomness.
    D3,
    /// Thread-identity-dependent logic.
    D4,
    /// Floating point in a deterministic crate.
    D5,
    /// Allocation inside a `hot-path`-marked function.
    H1,
    /// Unannotated growable field in a bounded-tier struct.
    B1,
    /// `unwrap`/`expect` in library code.
    C1,
    /// Missing or masked `#![forbid(unsafe_code)]`.
    C2,
    /// Waiver without a reason.
    W1,
    /// Stale waiver or marker matching zero findings.
    W2,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 11] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::H1,
        Rule::B1,
        Rule::C1,
        Rule::C2,
        Rule::W1,
        Rule::W2,
    ];

    /// Stable rule name used in reports, waivers and `lint.toml`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::H1 => "H1",
            Rule::B1 => "B1",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::W1 => "W1",
            Rule::W2 => "W2",
        }
    }

    /// One-line description for `--list-rules` and reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "HashMap/HashSet in a deterministic crate: iteration order can leak into schedules; use BTreeMap/BTreeSet or waive with proof order cannot escape",
            Rule::D2 => "Instant/SystemTime read outside telemetry/bench: wall clocks must never influence scheduling",
            Rule::D3 => "unseeded RNG (thread_rng/from_entropy/OsRng): all randomness must flow from an explicit seed",
            Rule::D4 => "thread-identity logic (thread::current, RAYON_NUM_THREADS read, available_parallelism): output must not depend on pool width or worker identity",
            Rule::D5 => "f32/f64 type, float literal, or partial_cmp/sort_by in a deterministic crate: rounding and NaN ordering are platform/order-sensitive; keep schedule math in integers (repo norm) or waive with proof the floats never feed a schedule",
            Rule::H1 => "allocating construct (Vec::new/vec!/format!/collect/to_vec/Box::new/String::from/clone) inside a hot-path-marked function: the warmed steady state must stay allocation-free (tests/alloc_steady_state.rs); reuse scratch buffers or waive with the amortization argument",
            Rule::B1 => "growable collection field (Vec/VecDeque/BTreeMap/BTreeSet/BinaryHeap) in a bounded-tier struct without a bounded annotation naming its prune site (open-system boundedness audit)",
            Rule::C1 => "unwrap()/expect() in a library crate: fix, return a typed error, or waive with justification",
            Rule::C2 => "crate root must carry #![forbid(unsafe_code)], unmasked by any allow(unsafe_code)",
            Rule::W1 => "dtm-lint waiver or marker without a written reason (`-- <why>` is mandatory)",
            Rule::W2 => "stale dtm-lint waiver, [[allow]] entry, or marker that matches zero findings: prune it, or fix its rule list / placement",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == s)
    }
}

/// One finding, pre- or post-waiver.
#[derive(Clone, Debug)]
pub struct Finding {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending source line (trimmed) or a synthesized message.
    pub snippet: String,
    /// Innermost enclosing item: `Type::method` / `fn_name` for code
    /// inside a function, the struct name for field findings.
    pub scope: Option<String>,
    /// `Some(reason)` if an inline or path-scoped waiver covers this.
    pub waived: Option<String>,
}

/// An inline waiver parsed from a comment.
#[derive(Debug)]
struct Waiver {
    /// Line the waiver comment starts on.
    line: u32,
    /// Line the waiver covers: its own line, or the next code line for a
    /// comment that stands alone.
    covers: u32,
    /// Waived rules.
    rules: Vec<Rule>,
    /// Justification after `--` (empty string triggers W1).
    reason: String,
}

/// A `dtm-lint: bounded -- <prune site>` field annotation.
#[derive(Debug)]
struct BoundedMark {
    /// Line the marker comment starts on.
    line: u32,
    /// Line the marker covers (same convention as [`Waiver::covers`]).
    covers: u32,
    /// The prune site (empty string triggers W1).
    reason: String,
}

/// Parse a waiver (`dtm-lint: allow` + rule list + optional `--` reason)
/// out of a comment body. Returns `None` for comments that don't form a
/// well-formed waiver — including prose that merely *describes* the
/// waiver grammar. A typo'd rule name therefore simply fails to waive,
/// and the underlying finding still surfaces the problem.
fn parse_waiver(c: &Comment) -> Option<(Vec<Rule>, String)> {
    let idx = c.text.find("dtm-lint:")?;
    let rest = c.text[idx + "dtm-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let mut rules = Vec::new();
    for part in rest[..close].split(',') {
        rules.push(Rule::from_name(part.trim())?);
    }
    let after = rest[close + 1..].trim();
    let reason = after
        .strip_prefix("--")
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some((rules, reason))
}

/// Token-index ranges covered by `#[cfg(test)]` items (typically
/// `mod tests { ... }`); C1, D5 and B1 do not apply inside them.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((is_test_attr, after_attr)) = scan_attr(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = after_attr;
            continue;
        }
        // Skip any further attributes (`#[cfg(test)] #[allow(..)] mod ..`).
        let mut j = after_attr;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match scan_attr(tokens, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        // The item runs to its closing brace, or to `;` for brace-less
        // items (`#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut end = j;
        while let Some(t) = tokens.get(end) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            end += 1;
        }
        regions.push((attr_start, end.min(tokens.len().saturating_sub(1))));
        i = end + 1;
    }
    regions
}

/// Scan a `#[...]` / `#![...]` attribute starting at token `i` (which must
/// be `#`). Returns (contains `cfg` and `test` idents, index past `]`).
fn scan_attr(tokens: &[Token], i: usize) -> Option<(bool, usize)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((saw_cfg && saw_test, j + 1));
            }
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    None
}

/// Does any `#[...]`/`#![...]` attribute in the stream contain both idents?
fn has_attr_with(tokens: &[Token], a: &str, b: &str) -> Option<u32> {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') {
            if let Some((_, end)) = scan_attr(tokens, i) {
                let body = &tokens[i..end];
                if body.iter().any(|t| t.is_ident(a)) && body.iter().any(|t| t.is_ident(b)) {
                    return Some(tokens[i].line);
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    None
}

/// How each rule family applies to one file (derived from its path).
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// D1/D5 apply (deterministic crate).
    pub deterministic: bool,
    /// D2 exempt (telemetry/bench/lint timing code).
    pub timing_ok: bool,
    /// C1 applies (library crate).
    pub library: bool,
    /// C2 applies (this is a crate root, `crates/<name>/src/lib.rs`).
    pub crate_root: bool,
    /// B1 applies (kernel/policy/cache structs under a `bounded` path).
    pub bounded: bool,
}

impl FileClass {
    /// Classify a root-relative, `/`-separated path.
    pub fn of(path: &str, cfg: &Config) -> FileClass {
        let in_any = |prefixes: &[String]| {
            prefixes
                .iter()
                .any(|p| path == p || path.starts_with(&format!("{}/", p.trim_end_matches('/'))))
        };
        let mut parts = path.split('/');
        let crate_root = parts.next() == Some("crates")
            && parts.next().is_some()
            && parts.next() == Some("src")
            && parts.next() == Some("lib.rs")
            && parts.next().is_none();
        FileClass {
            deterministic: in_any(&cfg.deterministic),
            timing_ok: in_any(&cfg.timing_ok),
            library: in_any(&cfg.library),
            crate_root,
            bounded: in_any(&cfg.bounded),
        }
    }
}

/// Container types whose `::` associated calls allocate (or whose very
/// presence in a hot path signals one), and methods that allocate.
const ALLOC_TYPES: [&str; 9] = [
    "Vec",
    "VecDeque",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "String",
    "Rc",
    "Arc",
];
const ALLOC_METHODS: [&str; 6] = [
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "cloned",
];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Growable collection types B1 audits in bounded-tier struct fields.
const GROWABLE_TYPES: [&str; 5] = ["Vec", "VecDeque", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// Scan one file's source, returning findings with waivers applied.
pub fn scan_file(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let mut allow_used = vec![false; cfg.allows.len()];
    scan_file_tracking(path, src, cfg, &mut allow_used)
}

/// Like [`scan_file`], but additionally records which `cfg.allows`
/// entries waived at least one finding (`allow_used[i]` set when entry
/// `i` applied) so the caller can report stale `[[allow]]` entries (W2)
/// across a whole run.
pub fn scan_file_tracking(
    path: &str,
    src: &str,
    cfg: &Config,
    allow_used: &mut [bool],
) -> Vec<Finding> {
    let class = FileClass::of(path, cfg);
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let parsed = parser::parse(tokens, &lexed.comments);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let mut findings: Vec<Finding> = Vec::new();
    let mk = |rule: Rule, line: u32, snip: String| Finding {
        path: path.to_string(),
        line,
        rule,
        snippet: snip,
        scope: None,
        waived: None,
    };

    // Covered-line convention shared by waivers and bounded marks: a
    // comment standing alone on its line covers the next line that
    // carries any token; a trailing comment covers its own line.
    let covers_line = |c: &Comment| -> u32 {
        let own_line_has_code = tokens.iter().any(|t| t.line == c.line);
        if own_line_has_code {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        }
    };

    // --- Waivers and bounded marks (W1 for reason-less ones). ---
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut bounded_marks: Vec<BoundedMark> = Vec::new();
    for c in &lexed.comments {
        if let Some((rules, reason)) = parse_waiver(c) {
            if reason.is_empty() {
                findings.push(mk(
                    Rule::W1,
                    c.line,
                    format!("waiver without reason: {}", snippet(c.line)),
                ));
            }
            waivers.push(Waiver {
                line: c.line,
                covers: covers_line(c),
                rules,
                reason,
            });
        } else if let Some(reason) = parser::marker(&c.text, "bounded") {
            // Outside the bounded tier the marks are inert documentation:
            // no field audit runs, so neither W1 nor W2 applies to them.
            if !class.bounded {
                continue;
            }
            if reason.is_empty() {
                findings.push(mk(
                    Rule::W1,
                    c.line,
                    format!("bounded marker without a prune site: {}", snippet(c.line)),
                ));
            }
            bounded_marks.push(BoundedMark {
                line: c.line,
                covers: covers_line(c),
                reason,
            });
        }
    }

    // --- Token rules. ---
    let regions = test_regions(tokens);
    let in_test = |idx: usize| regions.iter().any(|&(s, e)| idx >= s && idx <= e);

    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Ident => {
                let name = t.text.as_str();
                if class.deterministic && (name == "HashMap" || name == "HashSet") {
                    findings.push(mk(Rule::D1, t.line, snippet(t.line)));
                }
                if !class.timing_ok && (name == "Instant" || name == "SystemTime") {
                    findings.push(mk(Rule::D2, t.line, snippet(t.line)));
                }
                if matches!(name, "thread_rng" | "from_entropy" | "OsRng" | "getrandom") {
                    findings.push(mk(Rule::D3, t.line, snippet(t.line)));
                }
                if name == "available_parallelism" {
                    findings.push(mk(Rule::D4, t.line, snippet(t.line)));
                }
                if name == "current"
                    && i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].is_ident("thread")
                {
                    findings.push(mk(Rule::D4, t.line, snippet(t.line)));
                }
                if class.deterministic
                    && !in_test(i)
                    && matches!(name, "f32" | "f64" | "partial_cmp" | "sort_by")
                {
                    findings.push(mk(Rule::D5, t.line, snippet(t.line)));
                }
                if class.library
                    && !in_test(i)
                    && (name == "unwrap" || name == "expect")
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    findings.push(mk(Rule::C1, t.line, snippet(t.line)));
                }
            }
            // Float literals lex as Number `.` Number; require the
            // previous token not to be `.` so tuple-index chains
            // (`x.0.1`) stay silent. Suffixed literals (`1f64`) carry
            // the suffix in the Number token's text.
            TokenKind::Number if class.deterministic && !in_test(i) => {
                let dotted = tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    && tokens
                        .get(i + 2)
                        .is_some_and(|n| n.kind == TokenKind::Number)
                    && !(i >= 1 && tokens[i - 1].is_punct('.'));
                let suffixed = !t.text.starts_with("0x")
                    && (t.text.ends_with("f32") || t.text.ends_with("f64"));
                if dotted || suffixed {
                    findings.push(mk(Rule::D5, t.line, snippet(t.line)));
                }
            }
            // Exact match only: `env::var(<this literal>)` is the
            // hazard; prose mentioning the variable (like this rule's
            // own catalog entry) is not. Spelled via concat! so the
            // linter's source holds no exact literal to self-flag.
            TokenKind::Str if t.text == concat!("RAYON_NUM_", "THREADS") => {
                findings.push(mk(Rule::D4, t.line, snippet(t.line)));
            }
            _ => {}
        }
    }

    // --- H1: allocating constructs inside hot-path-marked bodies. ---
    for f in parsed.fns.iter().filter(|f| f.hot_path) {
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        for i in body_start..=body_end.min(tokens.len().saturating_sub(1)) {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            let path_alloc = ALLOC_TYPES.contains(&name)
                && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'));
            let macro_alloc =
                ALLOC_MACROS.contains(&name) && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let method_alloc = ALLOC_METHODS.contains(&name)
                && i >= 1
                && tokens[i - 1].is_punct('.')
                && (tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    || (tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                        && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))));
            if path_alloc || macro_alloc || method_alloc {
                findings.push(Finding {
                    path: path.to_string(),
                    line: t.line,
                    rule: Rule::H1,
                    snippet: snippet(t.line),
                    scope: Some(f.qualified.clone()),
                    waived: None,
                });
            }
        }
    }

    // --- B1: growable fields in bounded-tier structs need a prune site. ---
    let mut bounded_used = vec![false; bounded_marks.len()];
    if class.bounded {
        for s in parsed.structs.iter().filter(|s| !in_test(s.token_index)) {
            for field in &s.fields {
                let (ty_start, ty_end) = field.ty;
                let growable = tokens[ty_start..ty_end.min(tokens.len())].iter().any(|t| {
                    t.kind == TokenKind::Ident && GROWABLE_TYPES.contains(&t.text.as_str())
                });
                if !growable {
                    continue;
                }
                let mark = bounded_marks
                    .iter()
                    .position(|m| m.covers == field.line || m.line == field.line);
                let waived = match mark {
                    Some(mi) => {
                        bounded_used[mi] = true;
                        let reason = &bounded_marks[mi].reason;
                        (!reason.is_empty()).then(|| format!("bounded: {reason}"))
                    }
                    None => None,
                };
                findings.push(Finding {
                    path: path.to_string(),
                    line: field.line,
                    rule: Rule::B1,
                    snippet: snippet(field.line),
                    scope: Some(s.name.clone()),
                    waived,
                });
            }
        }
    }

    // --- C2: crate roots must forbid unsafe code; nothing may mask it. ---
    if class.crate_root && has_attr_with(tokens, "forbid", "unsafe_code").is_none() {
        findings.push(mk(
            Rule::C2,
            1,
            "crate root is missing #![forbid(unsafe_code)]".into(),
        ));
    }
    if let Some(line) = has_attr_with(tokens, "allow", "unsafe_code") {
        findings.push(mk(Rule::C2, line, snippet(line)));
    }

    // --- Attach scopes (innermost enclosing function) where unset. ---
    for f in &mut findings {
        if f.scope.is_none() {
            f.scope = parsed.scope_of_line(f.line).map(|s| s.to_string());
        }
    }

    // --- Apply waivers: inline first, then lint.toml path scopes. ---
    let mut waiver_used = vec![false; waivers.len()];
    for f in &mut findings {
        if matches!(f.rule, Rule::W1 | Rule::W2) {
            continue; // a waiver can't waive its own defects
        }
        for (wi, w) in waivers.iter().enumerate() {
            if (w.covers == f.line || w.line == f.line) && w.rules.contains(&f.rule) {
                waiver_used[wi] = true;
            }
        }
        if f.waived.is_some() {
            continue; // already covered (B1 bounded marks)
        }
        if let Some(w) = waivers
            .iter()
            .find(|w| (w.covers == f.line || w.line == f.line) && w.rules.contains(&f.rule))
        {
            if !w.reason.is_empty() {
                f.waived = Some(w.reason.clone());
                continue;
            }
        }
        if let Some(ai) = cfg.allows.iter().position(|a| {
            (a.rule == f.rule.name() || a.rule == "*")
                && (f.path == a.path
                    || f.path
                        .starts_with(&format!("{}/", a.path.trim_end_matches('/'))))
        }) {
            allow_used[ai] = true;
            f.waived = Some(format!("lint.toml: {}", cfg.allows[ai].reason));
        }
    }

    // --- W2: stale waivers and markers (matched zero findings). ---
    let mut stale: Vec<Finding> = Vec::new();
    for (wi, w) in waivers.iter().enumerate() {
        if !waiver_used[wi] {
            stale.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: Rule::W2,
                snippet: format!("stale waiver (matches no finding): {}", snippet(w.line)),
                scope: parsed.scope_of_line(w.line).map(|s| s.to_string()),
                waived: None,
            });
        }
    }
    for (mi, m) in bounded_marks.iter().enumerate() {
        if !bounded_used[mi] {
            stale.push(Finding {
                path: path.to_string(),
                line: m.line,
                rule: Rule::W2,
                snippet: format!(
                    "stale bounded marker (covers no growable field): {}",
                    snippet(m.line)
                ),
                scope: parsed.scope_of_line(m.line).map(|s| s.to_string()),
                waived: None,
            });
        }
    }
    for c in &lexed.comments {
        if parser::marker(&c.text, "hot-path").is_some() && !parsed.used_hot_marks.contains(&c.line)
        {
            stale.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: Rule::W2,
                snippet: format!(
                    "stale hot-path marker (attached to no function): {}",
                    snippet(c.line)
                ),
                scope: parsed.scope_of_line(c.line).map(|s| s.to_string()),
                waived: None,
            });
        }
    }
    // Stale findings accept path-scoped waivers only (an inline waiver
    // for a stale waiver would itself be stale).
    for f in &mut stale {
        if let Some(ai) = cfg.allows.iter().position(|a| {
            (a.rule == f.rule.name() || a.rule == "*")
                && (f.path == a.path
                    || f.path
                        .starts_with(&format!("{}/", a.path.trim_end_matches('/'))))
        }) {
            allow_used[ai] = true;
            f.waived = Some(format!("lint.toml: {}", cfg.allows[ai].reason));
        }
    }
    findings.append(&mut stale);

    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(path, src, &cfg())
    }

    fn unwaived(fs: &[Finding]) -> Vec<(&'static str, u32)> {
        fs.iter()
            .filter(|f| f.waived.is_none())
            .map(|f| (f.rule.name(), f.line))
            .collect()
    }

    #[test]
    fn d1_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(unwaived(&scan("crates/sim/src/x.rs", src)), [("D1", 1)]);
        assert!(unwaived(&scan("crates/telemetry/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d2_respects_timing_crates() {
        let src = "let t = Instant::now();\n";
        assert_eq!(unwaived(&scan("crates/core/src/x.rs", src)), [("D2", 1)]);
        assert_eq!(unwaived(&scan("tests/foo.rs", src)), [("D2", 1)]);
        assert!(unwaived(&scan("crates/bench/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d3_and_d4_fire_everywhere() {
        assert_eq!(
            unwaived(&scan("examples/x.rs", "let r = thread_rng();\n")),
            [("D3", 1)]
        );
        assert_eq!(
            unwaived(&scan(
                "crates/bench/src/x.rs",
                "let id = thread::current().id();\n"
            )),
            [("D4", 1)]
        );
        assert_eq!(
            unwaived(&scan("tests/x.rs", "std::env::var(\"RAYON_NUM_THREADS\")")),
            [("D4", 1)]
        );
    }

    #[test]
    fn d5_fires_on_types_literals_and_comparators() {
        assert_eq!(
            unwaived(&scan(
                "crates/model/src/x.rs",
                "fn f(x: f64) -> f64 { x }\n"
            )),
            [("D5", 1), ("D5", 1)]
        );
        assert_eq!(
            unwaived(&scan(
                "crates/core/src/x.rs",
                "const K: u64 = 3;\nlet r = 1.5;\n"
            )),
            [("D5", 2)]
        );
        assert_eq!(
            unwaived(&scan("crates/core/src/x.rs", "let r = 2f64;\n")),
            [("D5", 1)]
        );
        assert_eq!(
            unwaived(&scan("crates/sim/src/x.rs", "a.partial_cmp(&b);\n")),
            [("D5", 1)]
        );
    }

    #[test]
    fn d5_ignores_non_float_lookalikes() {
        // Integers, ranges, tuple-index chains, hex with an f-suffix
        // shape, and anything outside deterministic crates.
        let src = "let a = 1..2;\nlet b = x.0.1;\nlet c = 0xf64;\nlet d = 10;\n";
        assert!(unwaived(&scan("crates/model/src/x.rs", src)).is_empty());
        assert!(unwaived(&scan("crates/bench/src/x.rs", "let r = 1.5f64;\n")).is_empty());
        // #[cfg(test)] regions are exempt.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { let x = 1.5; }\n}\n";
        assert!(unwaived(&scan("crates/model/src/x.rs", test_src)).is_empty());
    }

    #[test]
    fn h1_fires_only_inside_marked_bodies() {
        let src = "\
// dtm-lint: hot-path
fn hot(&mut self) {
    let v = vec![1, 2];
    let s = format!(\"x\");
    let w: Vec<u32> = xs.iter().collect();
    let b = Box::new(3);
    let c = ys.to_vec();
    let t = txn.clone();
}

fn cold(&mut self) {
    let v = vec![1, 2];
}
";
        let fs = scan("crates/sim/src/x.rs", src);
        let h1: Vec<u32> = fs
            .iter()
            .filter(|f| f.rule == Rule::H1 && f.waived.is_none())
            .map(|f| f.line)
            .collect();
        assert_eq!(h1, [3, 4, 5, 6, 7, 8], "{fs:?}");
        assert!(fs
            .iter()
            .filter(|f| f.rule == Rule::H1)
            .all(|f| f.scope.as_deref() == Some("hot")));
    }

    #[test]
    fn h1_waivable_inline_with_reason() {
        let src = "\
// dtm-lint: hot-path
fn hot() {
    let v = out.to_vec(); // dtm-lint: allow(H1) -- return value is the product, O(batch) by contract
}
";
        let fs = scan("crates/core/src/x.rs", src);
        assert!(unwaived(&fs).is_empty(), "{fs:?}");
        assert!(fs.iter().any(|f| f.rule == Rule::H1 && f.waived.is_some()));
    }

    #[test]
    fn b1_requires_bounded_annotation_in_bounded_paths() {
        let src = "\
pub struct Policy {
    pending: VecDeque<u64>,
    // dtm-lint: bounded -- drained fully by step() each tick
    log: Vec<u64>,
    count: u64,
}
";
        let fs = scan("crates/core/src/x.rs", src);
        assert_eq!(unwaived(&fs), [("B1", 2)], "{fs:?}");
        let waived: Vec<_> = fs.iter().filter(|f| f.waived.is_some()).collect();
        assert_eq!(waived.len(), 1);
        assert!(waived[0].waived.as_deref().unwrap().contains("drained"));
        assert_eq!(waived[0].scope.as_deref(), Some("Policy"));
        // The same struct outside the bounded tier is not audited.
        assert!(unwaived(&scan("crates/model/src/x.rs", src)).is_empty());
    }

    #[test]
    fn b1_skips_test_structs_and_non_growable_fields() {
        let src = "\
#[cfg(test)]
mod tests {
    struct Fixture {
        xs: Vec<u64>,
    }
}
struct Small {
    n: u64,
    name: Option<u32>,
}
";
        assert!(unwaived(&scan("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn w2_fires_on_stale_waiver_and_markers() {
        let stale_waiver =
            "// dtm-lint: allow(D1) -- there used to be a HashMap here\nlet x = 1;\n";
        assert_eq!(
            unwaived(&scan("crates/sim/src/x.rs", stale_waiver)),
            [("W2", 1)]
        );
        let stale_hot = "// dtm-lint: hot-path\nstruct NotAFn;\n";
        assert_eq!(
            unwaived(&scan("crates/sim/src/x.rs", stale_hot)),
            [("W2", 1)]
        );
        let stale_bounded =
            "struct S {\n    // dtm-lint: bounded -- shrinks on commit\n    n: u64,\n}\n";
        assert_eq!(
            unwaived(&scan("crates/core/src/x.rs", stale_bounded)),
            [("W2", 2)]
        );
        // A live waiver is not stale.
        let live = "use std::collections::HashMap; // dtm-lint: allow(D1) -- key-lookup only, never iterated\n";
        assert!(unwaived(&scan("crates/sim/src/x.rs", live)).is_empty());
    }

    #[test]
    fn marker_prose_in_docs_does_not_parse() {
        // Backticked grammar descriptions must not register as markers.
        let src = "/// Mark hot functions with `// dtm-lint: hot-path` above them.\n/// Fields carry `// dtm-lint: bounded -- <prune site>` notes.\nfn f() {}\n";
        assert!(unwaived(&scan("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn findings_carry_enclosing_scope() {
        let src =
            "impl Kernel {\n    fn tick(&self) {\n        let m = HashMap::new();\n    }\n}\n";
        let fs = scan("crates/sim/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].scope.as_deref(), Some("Kernel::tick"));
    }

    #[test]
    fn c1_skips_test_modules_and_non_library_crates() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); y.expect(\"z\"); }\n}\n";
        assert_eq!(unwaived(&scan("crates/model/src/x.rs", src)), [("C1", 1)]);
        assert!(unwaived(&scan("crates/bench/src/x.rs", src)).is_empty());
    }

    #[test]
    fn c1_ignores_lookalikes() {
        // unwrap_or, expect_ok, a method *definition*, and idents in strings.
        let src = "fn expect_ok() {}\nlet a = x.unwrap_or(0);\nlet b = \"call .unwrap() here\";\nfn unwrap() {}\n";
        assert!(unwaived(&scan("crates/model/src/x.rs", src)).is_empty());
    }

    #[test]
    fn inline_waiver_covers_same_and_next_line() {
        let trailing = "use std::collections::HashMap; // dtm-lint: allow(D1) -- key-lookup only\n";
        assert!(unwaived(&scan("crates/sim/src/x.rs", trailing)).is_empty());
        let above = "// dtm-lint: allow(D1) -- key-lookup only\nuse std::collections::HashMap;\n";
        assert!(unwaived(&scan("crates/sim/src/x.rs", above)).is_empty());
        // ...but not two lines down (and the waiver is then stale).
        let far = "// dtm-lint: allow(D1) -- nope\nlet x = 1;\nuse std::collections::HashMap;\n";
        assert_eq!(
            unwaived(&scan("crates/sim/src/x.rs", far)),
            [("W2", 1), ("D1", 3)]
        );
    }

    #[test]
    fn waiver_without_reason_is_w1_and_does_not_waive() {
        let src = "use std::collections::HashMap; // dtm-lint: allow(D1)\n";
        let fs = scan("crates/sim/src/x.rs", src);
        assert_eq!(unwaived(&fs), [("D1", 1), ("W1", 1)]);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src = "use std::collections::HashMap; // dtm-lint: allow(C1) -- wrong rule\n";
        assert_eq!(
            unwaived(&scan("crates/sim/src/x.rs", src)),
            [("D1", 1), ("W2", 1)]
        );
    }

    #[test]
    fn config_path_allow_applies_and_is_tracked() {
        let mut cfg = Config::default();
        cfg.allows.push(crate::config::PathAllow {
            rule: "D2".into(),
            path: "crates/sim/src/engine.rs".into(),
            reason: "observer timing".into(),
            line: 7,
        });
        let src = "let t = Instant::now();\n";
        let mut used = vec![false];
        let fs = scan_file_tracking("crates/sim/src/engine.rs", src, &cfg, &mut used);
        assert!(fs.iter().all(|f| f.waived.is_some()));
        assert_eq!(used, [true]);
        let mut used = vec![false];
        let fs = scan_file_tracking("crates/sim/src/state.rs", src, &cfg, &mut used);
        assert_eq!(unwaived(&fs), [("D2", 1)]);
        assert_eq!(used, [false]);
    }

    #[test]
    fn c2_missing_forbid_and_masking_allow() {
        let fs = scan("crates/model/src/lib.rs", "pub mod x;\n");
        assert_eq!(unwaived(&fs), [("C2", 1)]);
        let ok = scan(
            "crates/model/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;\n",
        );
        assert!(unwaived(&ok).is_empty());
        let masked = scan(
            "crates/model/src/lib.rs",
            "#![forbid(unsafe_code)]\n#[allow(unsafe_code)]\nmod bad {}\n",
        );
        assert_eq!(unwaived(&masked), [("C2", 2)]);
        // Non-root files don't need the attribute.
        assert!(unwaived(&scan("crates/model/src/other.rs", "pub fn f() {}\n")).is_empty());
    }

    #[test]
    fn hazards_in_comments_do_not_fire() {
        let src = "// HashMap and Instant and thread_rng\n/* SystemTime too */\nlet x = 1;\n";
        assert!(unwaived(&scan("crates/sim/src/x.rs", src)).is_empty());
    }
}
