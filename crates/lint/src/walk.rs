//! Deterministic workspace walker: collects `.rs` files under the
//! configured include roots, in sorted path order, skipping excluded
//! prefixes. Sorted order makes reports (and `--json` output) stable
//! byte-for-byte across filesystems — the linter holds itself to the
//! same determinism bar it enforces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;

/// Root-relative, `/`-separated paths of every `.rs` file in scope.
pub fn rust_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_dir() {
            collect(&dir, root, cfg, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn rel_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = rel_slash(root, &path);
        if cfg
            .exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{}/", ex.trim_end_matches('/'))))
        {
            continue;
        }
        if path.is_dir() {
            // Never descend into build output accidentally included.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect(&path, root, cfg, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk this workspace: the linter's own sources must be found, in
    /// sorted order, and the fixture corpus must be excluded.
    #[test]
    fn walks_workspace_sorted_and_excludes() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut cfg = Config::default();
        cfg.exclude.push("crates/lint/tests/corpus".into());
        let files = rust_files(&root, &cfg).expect("walk");
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(files.iter().all(|f| !f.contains("tests/corpus/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
