//! A minimal Rust lexer: just enough to walk source as a token stream
//! with line spans, with comments, string/char literals and raw strings
//! recognized and set aside so hazard tokens inside them never fire.
//!
//! This is deliberately not a full Rust grammar — rules only need
//! identifiers, punctuation, and the knowledge of what is *not* code
//! (comments and literals). Anything else would drag in `syn` and a
//! registry dependency the offline build cannot have.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers `r#x` are unescaped to `x`).
    Ident,
    /// A single punctuation character (`.`, `:`, `#`, brackets, ...).
    Punct(char),
    /// A string literal (plain, byte, or raw); `text` holds the contents
    /// without quotes so rules can opt into inspecting them (e.g. env-var
    /// names), while identifier rules skip them entirely.
    Str,
    /// A char or byte-char literal.
    Char,
    /// A numeric literal.
    Number,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// Identifier text, string contents, or the punctuation character.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Is this an identifier equal to `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One comment (line or block), kept for waiver parsing.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end-of-file (the file would not compile, and
/// the workspace is gated on compiling first).
pub fn lex(src: &str) -> LexOutput {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in chars[from..to] into `line`.
    let bump_lines = |from: usize, to: usize, line: &mut u32| {
        *line += chars[from..to.min(n)]
            .iter()
            .filter(|&&c| c == '\n')
            .count() as u32;
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (covers `///` and `//!` doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..end.min(n)].iter().collect(),
            });
            i = j;
            continue;
        }
        // Raw strings / raw identifiers / byte strings, before plain idents.
        if c == 'r' || c == 'b' {
            // br#"..."#, br"..."
            let (prefix_len, rawish) = if c == 'b' && chars.get(i + 1) == Some(&'r') {
                (2, true)
            } else if c == 'r' {
                (1, true)
            } else {
                (1, false) // plain b"..." / b'...' handled below
            };
            if rawish {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    // Raw string: scan for `"` + `#`*hashes.
                    let content_start = j + 1;
                    let mut k = content_start;
                    'scan: while k < n {
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h == hashes {
                                break 'scan;
                            }
                        }
                        k += 1;
                    }
                    let tok_line = line;
                    bump_lines(content_start, k, &mut line);
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: chars[content_start..k.min(n)].iter().collect(),
                        line: tok_line,
                    });
                    i = (k + 1 + hashes).min(n);
                    continue;
                }
                if hashes > 0 && chars.get(j).map(|&ch| is_ident_start(ch)) == Some(true) {
                    // Raw identifier r#foo -> foo.
                    let start = j;
                    let mut k = start;
                    while k < n && is_ident_continue(chars[k]) {
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: chars[start..k].iter().collect(),
                        line,
                    });
                    i = k;
                    continue;
                }
                // Not raw after all: fall through to ident handling below.
            }
            if c == 'b' && chars.get(i + 1) == Some(&'"') {
                // Byte string: delegate to the plain-string arm.
                i += 1;
                // fall through via the '"' case on the next iteration
                // (line/kind handling is identical).
                continue;
            }
            if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                i += 1;
                continue; // byte char: handled by the '\'' arm next round
            }
        }
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c == '"' {
            let content_start = i + 1;
            let mut j = content_start;
            while j < n && chars[j] != '"' {
                if chars[j] == '\\' {
                    j += 1; // skip escaped char
                }
                j += 1;
            }
            let tok_line = line;
            bump_lines(content_start, j, &mut line);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: chars[content_start..j.min(n)].iter().collect(),
                line: tok_line,
            });
            i = j + 1;
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime.
            let next = chars.get(i + 1).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(ch) if is_ident_start(ch) => chars.get(i + 2) == Some(&'\''),
                Some(_) => true, // '(' etc. can only be a char literal
                None => false,
            };
            if is_char_lit {
                let mut j = i + 1;
                while j < n && chars[j] != '\'' {
                    if chars[j] == '\\' {
                        j += 1;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[i + 1..j.min(n)].iter().collect(),
                    line,
                });
                i = j + 1;
            } else {
                let start = i + 1;
                let mut j = start;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn plain_tokens_and_lines() {
        let out = lex("let x = 1;\nlet y = x;\n");
        let lines: Vec<u32> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, vec![1, 1, 2, 2, 2]);
    }

    #[test]
    fn line_comments_are_not_tokens() {
        let out = lex("let a = 1; // HashMap here\n// dtm-lint: allow(D1) -- x\nlet b = 2;");
        assert_eq!(
            idents("let a = 1; // HashMap\nlet b = 2;"),
            ["let", "a", "let", "b"]
        );
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert!(out.comments[1].text.contains("dtm-lint"));
    }

    #[test]
    fn nested_block_comment() {
        let out = lex("a /* x /* HashMap */ y */ b");
        assert_eq!(
            out.tokens
                .iter()
                .map(|t| t.text.clone())
                .collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert!(out.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn strings_hide_hazards() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), ["let", "s"]);
        assert_eq!(
            idents(r##"let s = r#"Instant::now "quoted""#;"##),
            ["let", "s"]
        );
        assert_eq!(idents(r#"let s = b"thread_rng";"#), ["let", "s"]);
    }

    #[test]
    fn string_contents_are_kept() {
        let out = lex(r#"env::var("SOME_ENV_NAME")"#);
        let strs: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, ["SOME_ENV_NAME"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = lex(r"fn f<'a>(x: &'a str) { let c = 'x'; let q = '\''; }");
        let kinds: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Char | TokenKind::Lifetime))
            .map(|t| (t.kind.clone(), t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokenKind::Lifetime, "a".to_string()),
                (TokenKind::Lifetime, "a".to_string()),
                (TokenKind::Char, "x".to_string()),
                (TokenKind::Char, "\\'".to_string()),
            ]
        );
    }

    #[test]
    fn raw_identifier_unescapes() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let out = lex("let s = \"a\nb\";\nlet t = 0;");
        let t = out
            .tokens
            .iter()
            .find(|t| t.is_ident("t"))
            .expect("t token");
        assert_eq!(t.line, 3);
    }
}
