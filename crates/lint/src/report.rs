//! Human and JSON rendering of a lint run.
//!
//! The JSON schema is stable (consumed by CI and any future dashboards):
//!
//! ```json
//! {
//!   "version": 1,
//!   "root": "<scan root>",
//!   "files_scanned": 123,
//!   "findings": [
//!     {"path": "crates/sim/src/engine.rs", "line": 40, "rule": "D2",
//!      "snippet": "use std::time::Instant;",
//!      "waived": true, "reason": "lint.toml: ..."}
//!   ],
//!   "summary": {"total": 2, "waived": 1, "unwaived": 1}
//! }
//! ```
//!
//! Findings are sorted by `(path, line, rule)`; two runs over the same
//! tree emit byte-identical reports.

use crate::rules::Finding;
use std::fmt::Write as _;

/// The result of linting a whole tree.
#[derive(Debug)]
pub struct LintReport {
    /// Scan root as given (for the report header only).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, waived included, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings not covered by any waiver.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Number of unwaived findings (nonzero fails the run).
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    /// Render the human report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}\n    {}",
                f.path,
                f.line,
                f.rule.name(),
                f.rule.describe(),
                f.snippet
            );
        }
        let waived = self.findings.len() - self.unwaived_count();
        let _ = writeln!(
            out,
            "dtm-lint: {} files scanned, {} finding(s) ({} waived, {} unwaived)",
            self.files_scanned,
            self.findings.len(),
            waived,
            self.unwaived_count()
        );
        out
    }

    /// Render the stable JSON report.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"root\": {},", json_str(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}, \"waived\": {}, \"reason\": {}}}",
                json_str(&f.path),
                f.line,
                json_str(f.rule.name()),
                json_str(&f.snippet),
                f.waived.is_some(),
                f.waived.as_deref().map_or("null".to_string(), json_str)
            );
        }
        out.push_str("\n  ],\n");
        let waived = self.findings.len() - self.unwaived_count();
        let _ = writeln!(
            out,
            "  \"summary\": {{\"total\": {}, \"waived\": {}, \"unwaived\": {}}}",
            self.findings.len(),
            waived,
            self.unwaived_count()
        );
        out.push_str("}\n");
        out
    }
}

/// JSON string escaping (control chars, quotes, backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn report() -> LintReport {
        LintReport {
            root: ".".into(),
            files_scanned: 2,
            findings: vec![
                Finding {
                    path: "a.rs".into(),
                    line: 3,
                    rule: Rule::D1,
                    snippet: "let m: HashMap<\"q\\\"\", _>;".into(),
                    waived: None,
                },
                Finding {
                    path: "b.rs".into(),
                    line: 7,
                    rule: Rule::C1,
                    snippet: "x.unwrap()".into(),
                    waived: Some("test-only".into()),
                },
            ],
        }
    }

    #[test]
    fn human_lists_only_unwaived_but_counts_both() {
        let h = report().human();
        assert!(h.contains("a.rs:3: [D1]"));
        assert!(!h.contains("b.rs:7"));
        assert!(h.contains("2 finding(s) (1 waived, 1 unwaived)"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let j = report().json();
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\\\"q\\\\\\\"\\\""));
        assert!(j.contains("\"unwaived\": 1"));
        assert_eq!(j, report().json());
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_str("a\nb\u{1}"), "\"a\\nb\\u0001\"");
    }
}
