//! Human, JSON, and GitHub Actions rendering of a lint run.
//!
//! The JSON schema is stable (consumed by CI and any future dashboards):
//!
//! ```json
//! {
//!   "version": 2,
//!   "root": "<scan root>",
//!   "files_scanned": 123,
//!   "findings": [
//!     {"path": "crates/sim/src/engine.rs", "line": 40, "rule": "D2",
//!      "scope": "Engine::run", "snippet": "use std::time::Instant;",
//!      "waived": true, "reason": "lint.toml: ..."}
//!   ],
//!   "summary": {"total": 2, "waived": 1, "unwaived": 1}
//! }
//! ```
//!
//! Version history: **v2** added the `scope` field (innermost enclosing
//! item, or `null` at file scope) to every finding object. All v1 keys
//! kept their names, types and order, so v1 consumers that index by key
//! keep working; consumers that reject unknown keys must accept `scope`.
//!
//! Findings are sorted by `(path, line, rule)`; two runs over the same
//! tree emit byte-identical reports.

use crate::rules::Finding;
use std::fmt::Write as _;

/// The result of linting a whole tree.
#[derive(Debug)]
pub struct LintReport {
    /// Scan root as given (for the report header only).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, waived included, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings not covered by any waiver.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Number of unwaived findings (nonzero fails the run).
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    /// Render the human report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            let scope = f
                .scope
                .as_deref()
                .map(|s| format!(" in `{s}`"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{}:{}: [{}]{} {}\n    {}",
                f.path,
                f.line,
                f.rule.name(),
                scope,
                f.rule.describe(),
                f.snippet
            );
        }
        let waived = self.findings.len() - self.unwaived_count();
        let _ = writeln!(
            out,
            "dtm-lint: {} files scanned, {} finding(s) ({} waived, {} unwaived)",
            self.files_scanned,
            self.findings.len(),
            waived,
            self.unwaived_count()
        );
        out
    }

    /// Render the stable JSON report.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 2,");
        let _ = writeln!(out, "  \"root\": {},", json_str(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"scope\": {}, \"snippet\": {}, \"waived\": {}, \"reason\": {}}}",
                json_str(&f.path),
                f.line,
                json_str(f.rule.name()),
                f.scope.as_deref().map_or("null".to_string(), json_str),
                json_str(&f.snippet),
                f.waived.is_some(),
                f.waived.as_deref().map_or("null".to_string(), json_str)
            );
        }
        out.push_str("\n  ],\n");
        let waived = self.findings.len() - self.unwaived_count();
        let _ = writeln!(
            out,
            "  \"summary\": {{\"total\": {}, \"waived\": {}, \"unwaived\": {}}}",
            self.findings.len(),
            waived,
            self.unwaived_count()
        );
        out.push_str("}\n");
        out
    }

    /// Render unwaived findings as GitHub Actions workflow commands
    /// (`::error file=…,line=…,title=…::…`), so a CI run annotates the
    /// offending lines inline on the PR diff. Waived findings are
    /// omitted; the summary line goes to the build log as plain text.
    pub fn github(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            let scope = f
                .scope
                .as_deref()
                .map(|s| format!(" in `{s}`"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "::error file={},line={},title={}::{}",
                gh_property(&f.path),
                f.line,
                gh_property(&format!("dtm-lint {}", f.rule.name())),
                gh_data(&format!("{}{}: {}", f.rule.describe(), scope, f.snippet))
            );
        }
        let _ = writeln!(
            out,
            "dtm-lint: {} files scanned, {} unwaived finding(s)",
            self.files_scanned,
            self.unwaived_count()
        );
        out
    }
}

/// Escape the message part of a workflow command (`%`, CR, LF).
fn gh_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escape a workflow-command property value (additionally `:` and `,`).
fn gh_property(s: &str) -> String {
    gh_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// JSON string escaping (control chars, quotes, backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn report() -> LintReport {
        LintReport {
            root: ".".into(),
            files_scanned: 2,
            findings: vec![
                Finding {
                    path: "a.rs".into(),
                    line: 3,
                    rule: Rule::D1,
                    snippet: "let m: HashMap<\"q\\\"\", _>;".into(),
                    scope: Some("Engine::run".into()),
                    waived: None,
                },
                Finding {
                    path: "b.rs".into(),
                    line: 7,
                    rule: Rule::C1,
                    snippet: "x.unwrap()".into(),
                    scope: None,
                    waived: Some("test-only".into()),
                },
            ],
        }
    }

    #[test]
    fn human_lists_only_unwaived_but_counts_both() {
        let h = report().human();
        assert!(h.contains("a.rs:3: [D1] in `Engine::run`"));
        assert!(!h.contains("b.rs:7"));
        assert!(h.contains("2 finding(s) (1 waived, 1 unwaived)"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let j = report().json();
        assert!(j.contains("\"version\": 2"));
        assert!(j.contains("\"scope\": \"Engine::run\""));
        assert!(j.contains("\\\"q\\\\\\\"\\\""));
        assert!(j.contains("\"unwaived\": 1"));
        assert_eq!(j, report().json());
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_str("a\nb\u{1}"), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn github_annotations_escape_and_skip_waived() {
        let g = report().github();
        assert!(g.starts_with("::error file=a.rs,line=3,title=dtm-lint D1::"));
        assert!(!g.contains("b.rs"), "waived findings are omitted");
        assert_eq!(g.lines().count(), 2, "one annotation plus the summary");
        // Property escaping: `:` and `,` must not break the command.
        assert_eq!(gh_property("a:b,c%d"), "a%3Ab%2Cc%25d");
        assert_eq!(gh_data("x\ny%"), "x%0Ay%25");
    }
}
