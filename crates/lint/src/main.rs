//! `dtm-lint` CLI.
//!
//! ```text
//! dtm-lint [--root <dir>] [--json | --github] [--list-rules]
//! ```
//!
//! Scans the workspace (auto-located by walking up from the current
//! directory to the first `Cargo.toml` containing `[workspace]`),
//! prints the report, and exits 1 if any unwaived finding remains
//! (2 on usage/IO errors).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dtm_lint::rules::Rule;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(s) = std::fs::read_to_string(&manifest) {
                if s.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage() -> &'static str {
    "usage: dtm-lint [--root <dir>] [--json | --github] [--list-rules]\n\
     \n\
     Determinism & concurrency-hygiene linter for the dtm workspace.\n\
     --json emits the stable v2 report; --github emits GitHub Actions\n\
     ::error annotations for unwaived findings (for the CI lint step).\n\
     Exits 0 when every finding is waived, 1 otherwise.\n"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut github = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--github" => github = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.name(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("could not locate the workspace root (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    let cfg = match dtm_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("dtm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match dtm_lint::run(&root, &cfg) {
        Ok(report) => {
            if json {
                print!("{}", report.json());
            } else if github {
                print!("{}", report.github());
            } else {
                print!("{}", report.human());
            }
            if report.unwaived_count() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dtm-lint: {e}");
            ExitCode::from(2)
        }
    }
}
