//! A lightweight, brace-matched item parser on top of [`crate::lexer`].
//!
//! This is deliberately not a Rust grammar: it recognizes just enough
//! item structure — `fn` / `struct` / `enum` / `trait` / `impl` / `mod`
//! headers, attribute blocks, and matched `{ ... }` bodies — to give
//! every finding a *scope* (the innermost enclosing function, qualified
//! as `Type::method` inside an `impl`) and to let rules reason about
//! spans instead of single lines:
//!
//! * **H1** needs "which tokens are inside a `// dtm-lint: hot-path`
//!   function body";
//! * **B1** needs "which struct fields have a growable collection type";
//! * scope attribution needs "which function owns this line".
//!
//! Mis-parses degrade gracefully: an unrecognized construct is skipped
//! token-by-token, so the worst case is a finding without a scope, never
//! a missed token-level rule (those run over the raw stream).

use crate::lexer::{Comment, Token, TokenKind};

/// The marker body when a comment is a `dtm-lint: <keyword>` marker.
///
/// Markers are *anchored*: after stripping doc-comment furniture
/// (`/`, `!`, whitespace) the comment must begin with `dtm-lint:` and
/// the keyword must be followed by nothing or by `-- <note>`, so prose
/// mentioning a marker inside backticks or mid-sentence never parses as
/// one. Returns the note after `--` (empty when absent).
pub fn marker(text: &str, keyword: &str) -> Option<String> {
    let body = text.trim_start_matches(['/', '!', ' ', '\t']).trim_end();
    let rest = body.strip_prefix("dtm-lint:")?.trim_start();
    let rest = rest.strip_prefix(keyword)?;
    let rest = rest.trim();
    if rest.is_empty() {
        return Some(String::new());
    }
    rest.strip_prefix("--").map(|r| r.trim().to_string())
}

/// A function item (free function, or a method inside an `impl`/`trait`
/// block) with its body span.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// `name` for free functions, `Type::name` for methods.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (== `line` for
    /// body-less trait-method declarations).
    pub end_line: u32,
    /// Token-index range of the body, `{` ..= `}` inclusive, when the
    /// function has one.
    pub body: Option<(usize, usize)>,
    /// Whether a `// dtm-lint: hot-path` marker is attached (in the
    /// leading comment/doc block, or trailing on the signature lines).
    pub hot_path: bool,
}

/// One struct field (named or tuple-positional).
#[derive(Clone, Debug)]
pub struct FieldItem {
    /// Field name (`None` for tuple-struct fields).
    pub name: Option<String>,
    /// 1-based line the field starts on.
    pub line: u32,
    /// Token-index range of the field's type, start inclusive, end
    /// exclusive.
    pub ty: (usize, usize),
}

/// A struct item with its parsed fields.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Token index of the `struct` keyword (for `#[cfg(test)]` region
    /// checks).
    pub token_index: usize,
    /// Parsed fields (empty for unit structs).
    pub fields: Vec<FieldItem>,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Default)]
pub struct ParseOutput {
    /// All functions, in source order (impl/trait methods included).
    pub fns: Vec<FnItem>,
    /// All structs, in source order.
    pub structs: Vec<StructItem>,
    /// Lines of `dtm-lint: hot-path` marker comments that attached to
    /// some function (markers *not* in this list are stale — W2).
    pub used_hot_marks: Vec<u32>,
}

impl ParseOutput {
    /// Qualified name of the innermost function whose line span contains
    /// `line` (innermost = smallest span, so an `impl` method wins over
    /// any mis-parsed enclosing construct).
    pub fn scope_of_line(&self, line: u32) -> Option<&str> {
        self.fns
            .iter()
            .filter(|f| f.line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.line)
            .map(|f| f.qualified.as_str())
    }
}

/// Parse the item structure of one lexed file.
pub fn parse(tokens: &[Token], comments: &[Comment]) -> ParseOutput {
    let mut out = ParseOutput::default();
    parse_block(tokens, comments, 0, tokens.len(), None, &mut out);
    out
}

/// Skip one `#[...]` / `#![...]` attribute starting at `i` (which must
/// be `#`). Returns the index past the closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// From an opening delimiter at `i` (`{`, `(` or `[`), return the index
/// of the matching closer. Falls back to the last token on unbalanced
/// input (which would not compile anyway).
fn match_delim(tokens: &[Token], i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while let Some(t) = tokens.get(j) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Is token `j` a `>` that closes a generic angle (not the `->` arrow)?
fn closes_angle(tokens: &[Token], j: usize) -> bool {
    tokens[j].is_punct('>') && !(j >= 1 && tokens[j - 1].is_punct('-'))
}

/// Scan forward from `i` for the first occurrence of any of `stops` at
/// zero `()`/`[]`/`<>` nesting depth. Returns `(index, char)`.
fn find_at_depth0(tokens: &[Token], i: usize, stops: &[char]) -> Option<(usize, char)> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut j = i;
    while let Some(t) = tokens.get(j) {
        if let TokenKind::Punct(c) = t.kind {
            if angle == 0 && paren == 0 && stops.contains(&c) {
                return Some((j, c));
            }
            match c {
                '<' => angle += 1,
                '>' if closes_angle(tokens, j) && angle > 0 => angle -= 1,
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Parse the items in `tokens[i..end]`. `ctx` is the enclosing `impl` /
/// `trait` type name for qualifying methods.
fn parse_block(
    tokens: &[Token],
    comments: &[Comment],
    mut i: usize,
    end: usize,
    ctx: Option<&str>,
    out: &mut ParseOutput,
) {
    while i < end {
        let item_start = i;
        let mut j = i;
        // Leading attributes.
        while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
            match skip_attr(tokens, j) {
                Some(next) if next <= end => j = next,
                _ => break,
            }
        }
        // Visibility / qualifier keywords before the item keyword.
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "pub" if t.kind == TokenKind::Ident => {
                    j += 1;
                    if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                        j = match_delim(tokens, j, '(', ')') + 1;
                    }
                }
                "unsafe" | "async" | "default" if t.kind == TokenKind::Ident => j += 1,
                // `const fn` is a qualifier; `const NAME: ...` is an item
                // (handled by the fall-through arm below).
                "const"
                    if t.kind == TokenKind::Ident
                        && tokens.get(j + 1).is_some_and(|n| n.is_ident("fn")) =>
                {
                    j += 1
                }
                "extern" if t.kind == TokenKind::Ident => {
                    j += 1;
                    if tokens.get(j).is_some_and(|t| t.kind == TokenKind::Str) {
                        j += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(kw) = tokens.get(j) else { break };
        match (kw.kind == TokenKind::Ident).then_some(kw.text.as_str()) {
            Some("fn") => {
                i = parse_fn(tokens, comments, item_start, j, end, ctx, out);
            }
            Some("struct") => {
                i = parse_struct(tokens, j, end, out);
            }
            Some("enum") | Some("union") => {
                // Skip name + generics to the body and over it.
                i = match find_at_depth0(tokens, j + 1, &['{', ';']) {
                    Some((k, '{')) => match_delim(tokens, k, '{', '}') + 1,
                    Some((k, _)) => k + 1,
                    None => end,
                };
            }
            Some("trait") => {
                let name = tokens
                    .get(j + 1)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                match find_at_depth0(tokens, j + 1, &['{', ';']) {
                    Some((k, '{')) => {
                        let close = match_delim(tokens, k, '{', '}');
                        parse_block(tokens, comments, k + 1, close, Some(&name), out);
                        i = close + 1;
                    }
                    Some((k, _)) => i = k + 1,
                    None => i = end,
                }
            }
            Some("impl") => match find_at_depth0(tokens, j + 1, &['{', ';']) {
                Some((k, '{')) => {
                    let name = impl_type_name(tokens, j + 1, k);
                    let close = match_delim(tokens, k, '{', '}');
                    parse_block(tokens, comments, k + 1, close, Some(&name), out);
                    i = close + 1;
                }
                Some((k, _)) => i = k + 1,
                None => i = end,
            },
            Some("mod") => match find_at_depth0(tokens, j + 1, &['{', ';']) {
                Some((k, '{')) => {
                    let close = match_delim(tokens, k, '{', '}');
                    parse_block(tokens, comments, k + 1, close, None, out);
                    i = close + 1;
                }
                Some((k, _)) => i = k + 1,
                None => i = end,
            },
            Some("macro_rules") => {
                // `macro_rules! name { ... }`
                i = match find_at_depth0(tokens, j + 1, &['{']) {
                    Some((k, _)) => match_delim(tokens, k, '{', '}') + 1,
                    None => end,
                };
            }
            Some("use") | Some("static") | Some("const") | Some("type") => {
                // Runs to `;` outside any braces (initializers may
                // contain struct literals).
                let mut depth = 0usize;
                let mut k = j;
                loop {
                    let Some(t) = tokens.get(k) else {
                        k = end;
                        break;
                    };
                    if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    } else if t.is_punct(';') && depth == 0 {
                        k += 1;
                        break;
                    }
                    k += 1;
                }
                i = k;
            }
            _ => i = j.max(i) + 1, // unrecognized: skip a token, stay live
        }
    }
}

/// Parse one `fn` whose keyword sits at `kw` (attributes began at
/// `item_start`). Returns the index to continue from.
fn parse_fn(
    tokens: &[Token],
    comments: &[Comment],
    item_start: usize,
    kw: usize,
    end: usize,
    ctx: Option<&str>,
    out: &mut ParseOutput,
) -> usize {
    let name = tokens
        .get(kw + 1)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let qualified = match ctx {
        Some(c) => format!("{c}::{name}"),
        None => name,
    };
    let line = tokens[kw].line;
    let (body, end_line, next, sig_end_line) = match find_at_depth0(tokens, kw + 2, &['{', ';']) {
        Some((k, '{')) => {
            let close = match_delim(tokens, k, '{', '}');
            (
                Some((k, close)),
                tokens[close].line,
                close + 1,
                tokens[k].line,
            )
        }
        Some((k, _)) => (None, tokens[k].line, k + 1, tokens[k].line),
        None => (None, line, end, line),
    };
    // A hot-path marker attaches if it sits between the previous token
    // and the body's opening brace: the leading comment/doc block, a
    // line between attributes, or trailing on a signature line.
    let prev_line = item_start
        .checked_sub(1)
        .map(|p| tokens[p].line)
        .unwrap_or(0);
    let mut hot_path = false;
    for c in comments {
        if c.line > prev_line && c.line <= sig_end_line && marker(&c.text, "hot-path").is_some() {
            hot_path = true;
            out.used_hot_marks.push(c.line);
        }
    }
    out.fns.push(FnItem {
        qualified,
        line,
        end_line,
        body,
        hot_path,
    });
    next.min(end)
}

/// Parse one `struct` whose keyword sits at `kw`. Returns the index to
/// continue from.
fn parse_struct(tokens: &[Token], kw: usize, end: usize, out: &mut ParseOutput) -> usize {
    let name = tokens
        .get(kw + 1)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let mut item = StructItem {
        name,
        line: tokens[kw].line,
        token_index: kw,
        fields: Vec::new(),
    };
    let next = match find_at_depth0(tokens, kw + 2, &['{', '(', ';']) {
        Some((k, '{')) => {
            let close = match_delim(tokens, k, '{', '}');
            parse_named_fields(tokens, k, close, &mut item.fields);
            close + 1
        }
        Some((k, '(')) => {
            let close = match_delim(tokens, k, '(', ')');
            parse_tuple_fields(tokens, k, close, &mut item.fields);
            // Tuple structs end `);` — consume the trailing semicolon.
            match find_at_depth0(tokens, close + 1, &[';']) {
                Some((s, _)) => s + 1,
                None => close + 1,
            }
        }
        Some((k, _)) => k + 1,
        None => end,
    };
    out.structs.push(item);
    next.min(end)
}

/// Fields of `struct S { a: T, b: U }` between braces `open`..`close`.
fn parse_named_fields(tokens: &[Token], open: usize, close: usize, out: &mut Vec<FieldItem>) {
    let mut i = open + 1;
    while i < close {
        // Attributes and visibility.
        while tokens.get(i).is_some_and(|t| t.is_punct('#')) {
            match skip_attr(tokens, i) {
                Some(next) if next <= close => i = next,
                _ => break,
            }
        }
        if tokens.get(i).is_some_and(|t| t.is_ident("pub")) {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                i = match_delim(tokens, i, '(', ')') + 1;
            }
        }
        let Some(name_tok) = tokens.get(i).filter(|t| t.kind == TokenKind::Ident) else {
            break;
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            break;
        }
        let ty_start = i + 2;
        let ty_end = match find_at_depth0(tokens, ty_start, &[',']) {
            Some((k, _)) if k < close => k,
            _ => close,
        };
        out.push(FieldItem {
            name: Some(name_tok.text.clone()),
            line: name_tok.line,
            ty: (ty_start, ty_end),
        });
        i = ty_end + 1;
    }
}

/// Fields of `struct S(T, U);` between parens `open`..`close`.
fn parse_tuple_fields(tokens: &[Token], open: usize, close: usize, out: &mut Vec<FieldItem>) {
    let mut i = open + 1;
    while i < close {
        while tokens.get(i).is_some_and(|t| t.is_punct('#')) {
            match skip_attr(tokens, i) {
                Some(next) if next <= close => i = next,
                _ => break,
            }
        }
        if tokens.get(i).is_some_and(|t| t.is_ident("pub")) {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                i = match_delim(tokens, i, '(', ')') + 1;
            }
        }
        if i >= close {
            break;
        }
        let ty_end = match find_at_depth0(tokens, i, &[',']) {
            Some((k, _)) if k < close => k,
            _ => close,
        };
        out.push(FieldItem {
            name: None,
            line: tokens[i].line,
            ty: (i, ty_end),
        });
        i = ty_end + 1;
    }
}

/// The self-type name of an `impl` header occupying `tokens[start..open]`
/// (`open` points at the body `{`): the last path segment after `for` if
/// present, else the first path's last segment after the impl generics.
fn impl_type_name(tokens: &[Token], start: usize, open: usize) -> String {
    let mut i = start;
    // Skip `impl<...>` generics.
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < open {
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if closes_angle(tokens, i) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // If a top-level `for` follows, the self type is after it.
    if let Some((f, _)) = find_ident_at_depth0(tokens, i, open, "for") {
        i = f + 1;
    }
    // Last segment of the path starting at `i`.
    let mut last = String::new();
    while i < open {
        match &tokens[i].kind {
            TokenKind::Ident if tokens[i].text == "where" => break,
            TokenKind::Ident => last = tokens[i].text.clone(),
            TokenKind::Punct(':') => {}
            _ => break,
        }
        i += 1;
    }
    last
}

/// First occurrence of ident `name` in `tokens[i..end]` at zero
/// `<>`/`()`/`[]` depth.
fn find_ident_at_depth0(tokens: &[Token], i: usize, end: usize, name: &str) -> Option<(usize, ())> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut j = i;
    while j < end {
        let t = &tokens[j];
        if let TokenKind::Punct(c) = t.kind {
            match c {
                '<' => angle += 1,
                '>' if closes_angle(tokens, j) && angle > 0 => angle -= 1,
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                _ => {}
            }
        } else if angle == 0 && paren == 0 && t.is_ident(name) {
            return Some((j, ()));
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParseOutput {
        let lexed = lex(src);
        parse(&lexed.tokens, &lexed.comments)
    }

    #[test]
    fn free_fns_and_methods_are_qualified() {
        let src = "fn free() { body(); }\n\
                   impl Kernel {\n    pub fn tick(&mut self) { work(); }\n}\n\
                   impl<A: Clone> Policy<A> for Bucket<A> {\n    fn step(&self) {}\n}\n";
        let p = parsed(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, ["free", "Kernel::tick", "Bucket::step"]);
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn scope_of_line_picks_innermost() {
        let src = "impl K {\n    fn a(&self) {\n        one();\n    }\n    fn b(&self) {\n        two();\n    }\n}\n";
        let p = parsed(src);
        assert_eq!(p.scope_of_line(3), Some("K::a"));
        assert_eq!(p.scope_of_line(6), Some("K::b"));
        assert_eq!(p.scope_of_line(8), None);
    }

    #[test]
    fn hot_path_marker_attaches_from_leading_comments() {
        let src = "/// Docs.\n// dtm-lint: hot-path\nfn hot() { x(); }\n\nfn cold() { y(); }\n";
        let p = parsed(src);
        assert!(p.fns[0].hot_path);
        assert!(!p.fns[1].hot_path);
        assert_eq!(p.used_hot_marks, [2]);
    }

    #[test]
    fn hot_path_marker_does_not_leak_from_previous_item() {
        // A comment trailing fn a's line marks fn a (trailing-marker
        // style) and must not leak onto the next function.
        let src = "fn a() {} // dtm-lint: hot-path\nfn b() { x(); }\n";
        let p = parsed(src);
        assert!(p.fns[0].hot_path);
        assert!(!p.fns[1].hot_path);
        assert_eq!(p.used_hot_marks, [1]);
    }

    #[test]
    fn struct_fields_with_generic_types() {
        let src = "pub struct S<T> {\n    pub a: BTreeMap<(u32, u32), Vec<T>>,\n    b: u64,\n    c: Option<Box<dyn Fn(u32) -> u32>>,\n}\n";
        let p = parsed(src);
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "S");
        let names: Vec<_> = s.fields.iter().map(|f| f.name.clone().unwrap()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(s.fields[0].line, 2);
    }

    #[test]
    fn tuple_and_unit_structs() {
        let src = "struct Id(pub u64);\nstruct Unit;\nstruct Pair(Vec<u8>, u32);\n";
        let p = parsed(src);
        assert_eq!(p.structs.len(), 3);
        assert_eq!(p.structs[0].fields.len(), 1);
        assert!(p.structs[1].fields.is_empty());
        assert_eq!(p.structs[2].fields.len(), 2);
    }

    #[test]
    fn fn_returning_impl_trait_with_arrow_in_generics() {
        let src = "fn mk() -> Box<dyn Fn(u32) -> Vec<u8>> {\n    Box::new(|x| vec![x as u8])\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].end_line, 3);
    }

    #[test]
    fn nested_mods_reset_impl_context() {
        let src =
            "mod inner {\n    pub struct T { pub v: Vec<u8> }\n    impl T { fn m(&self) {} }\n}\n";
        let p = parsed(src);
        assert_eq!(p.structs[0].name, "T");
        assert_eq!(p.fns[0].qualified, "T::m");
    }

    #[test]
    fn where_clauses_do_not_confuse_body_detection() {
        let src = "fn f<T>(x: T) -> u32\nwhere\n    T: Into<u32>,\n{\n    x.into()\n}\n";
        let p = parsed(src);
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[0].end_line, 6);
    }

    #[test]
    fn marker_requires_anchoring_and_exact_keyword() {
        assert_eq!(
            marker("// dtm-lint: hot-path", "hot-path"),
            Some(String::new())
        );
        assert_eq!(
            marker("/// dtm-lint: bounded -- drained by step()", "bounded"),
            Some("drained by step()".to_string())
        );
        // Prose, backticks, or extra words do not parse as markers.
        assert_eq!(
            marker("// mark with `dtm-lint: hot-path` above", "hot-path"),
            None
        );
        assert_eq!(
            marker("// dtm-lint: hot-path markers attach", "hot-path"),
            None
        );
        assert_eq!(marker("// dtm-lint: boundedness", "bounded"), None);
    }
}
