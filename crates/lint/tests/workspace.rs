//! Self-test: the shipped workspace must lint clean.
//!
//! This is the same scan CI runs (`cargo run -p dtm-lint`), executed
//! in-process: zero unwaived findings, every waiver carrying a written
//! reason, and the corpus directory excluded from the walk.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

#[test]
fn live_workspace_has_zero_unwaived_findings() {
    let root = workspace_root();
    let cfg = dtm_lint::load_config(&root).expect("lint.toml parses");
    let report = dtm_lint::run(&root, &cfg).expect("scan succeeds");
    assert!(
        report.files_scanned > 100,
        "walk found the workspace: {}",
        report.files_scanned
    );
    let offenders: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule.name(), f.snippet))
        .collect();
    assert!(
        offenders.is_empty(),
        "unwaived findings in the live workspace:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn every_live_waiver_carries_a_reason() {
    let root = workspace_root();
    let cfg = dtm_lint::load_config(&root).expect("lint.toml parses");
    let report = dtm_lint::run(&root, &cfg).expect("scan succeeds");
    assert!(
        report.findings.iter().any(|f| f.waived.is_some()),
        "waivers exist"
    );
    for f in &report.findings {
        if let Some(reason) = &f.waived {
            assert!(
                reason.trim().len() >= 10,
                "{}:{} [{}] waiver reason too thin: {reason:?}",
                f.path,
                f.line,
                f.rule.name()
            );
        }
    }
}

#[test]
fn corpus_directory_is_excluded_from_the_scan() {
    let root = workspace_root();
    let cfg = dtm_lint::load_config(&root).expect("lint.toml parses");
    let report = dtm_lint::run(&root, &cfg).expect("scan succeeds");
    assert!(
        report
            .findings
            .iter()
            .all(|f| !f.path.contains("tests/corpus")),
        "fixtures must never reach the workspace report"
    );
}

#[test]
fn json_report_is_stable_and_self_consistent() {
    let root = workspace_root();
    let cfg = dtm_lint::load_config(&root).expect("lint.toml parses");
    let report = dtm_lint::run(&root, &cfg).expect("scan succeeds");
    let json = report.json();
    assert!(json.contains("\"version\": 2"));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"summary\""));
    assert!(json.contains("\"scope\""));
    // Two runs over the same tree are byte-identical (the linter holds
    // itself to the determinism bar it enforces).
    let again = dtm_lint::run(&root, &cfg).expect("scan succeeds");
    assert_eq!(json, again.json());
}
