//! Drift test: the clippy invocation CI runs and the flags pinned in
//! `lint.toml [clippy]` are the same command.
//!
//! CI's clippy step and lint.toml are edited by different people for
//! different reasons; this test is the tripwire that keeps them in
//! lockstep. If you mean to change the clippy flags, change both files
//! in the same commit.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

/// Extract the arguments after `cargo clippy` from the CI workflow.
/// Tolerates leading `run:` YAML syntax and trailing comments, but is
/// deliberately strict about there being exactly one clippy invocation.
fn ci_clippy_args(yaml: &str) -> Vec<String> {
    let mut found = Vec::new();
    for line in yaml.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed
            .strip_prefix("run:")
            .map(str::trim)
            .unwrap_or(trimmed)
            .strip_prefix("cargo clippy")
        {
            found.push(rest.split_whitespace().map(String::from).collect());
        }
    }
    assert_eq!(
        found.len(),
        1,
        "expected exactly one `cargo clippy` invocation in ci.yml, got {found:?}"
    );
    found.pop().expect("one invocation")
}

#[test]
fn lint_toml_clippy_flags_match_ci_workflow() {
    let root = workspace_root();
    let cfg = dtm_lint::load_config(&root).expect("lint.toml parses");
    let yaml =
        std::fs::read_to_string(root.join(".github/workflows/ci.yml")).expect("ci.yml is readable");
    let ci = ci_clippy_args(&yaml);
    assert_eq!(
        cfg.clippy_flags, ci,
        "lint.toml [clippy] flags and the ci.yml clippy step drifted apart; \
         change them together"
    );
}

#[test]
fn ci_runs_the_linter_in_github_annotation_mode() {
    let root = workspace_root();
    let yaml =
        std::fs::read_to_string(root.join(".github/workflows/ci.yml")).expect("ci.yml is readable");
    let lint_line = yaml
        .lines()
        .find(|l| l.contains("cargo run -p dtm-lint"))
        .expect("ci.yml runs dtm-lint");
    assert!(
        lint_line.contains("--github"),
        "CI should surface findings as PR annotations: {lint_line}"
    );
}
