//! Corpus fixture: a crate root WITHOUT `#![forbid(unsafe_code)]`
//! must trip C2 (when scanned under a `crates/<name>/src/lib.rs` path).

pub fn noop() {}
