//! D5 bad: float types, literals, suffixes and order-sensitive float
//! comparators in a deterministic crate.

pub fn mean(xs: &[u64], n: u64) -> f64 {
    let scale = 0.5;
    let bias = 2f64;
    let mut ys = [1.25f32; 4];
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    (xs.len() as f64) * scale + bias + ys[0] as f64 + n as f64
}
