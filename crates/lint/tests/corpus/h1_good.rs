//! H1 good: a marked phase that only reuses warmed buffers is clean,
//! and allocation in *unmarked* functions is not H1's business.

pub struct StepKernel {
    buf: Vec<u64>,
    scratch: Vec<u64>,
}

impl StepKernel {
    // dtm-lint: hot-path
    fn phase_execute(&mut self, t: u64) -> usize {
        self.scratch.clear();
        for &x in &self.buf {
            if x <= t {
                self.scratch.push(x);
            }
        }
        self.scratch.len()
    }

    fn cold_setup(&mut self) {
        self.buf = Vec::with_capacity(64);
        self.scratch = self.buf.clone();
    }
}
