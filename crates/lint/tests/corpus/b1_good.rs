//! B1 good: every growable field carries a prune-site annotation;
//! scalar and fixed-size fields need nothing.

pub struct BoundedPolicy {
    // dtm-lint: bounded -- drained fully by step() at each activation
    pending: VecDeque<u64>,
    // dtm-lint: bounded -- entries leave as their transactions commit; O(live set)
    fixed: BTreeMap<u64, u64>,
    count: u64,
    window: Option<u32>,
}
