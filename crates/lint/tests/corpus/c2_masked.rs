//! Corpus fixture: the forbid is present but an `allow(unsafe_code)`
//! masks it — C2 must still fire, on the allow.

#![forbid(unsafe_code)]

#[allow(unsafe_code)]
pub mod escape_hatch {
    pub fn noop() {}
}
