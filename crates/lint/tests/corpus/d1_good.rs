// Corpus fixture: ordered maps never trip D1.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.len() + seen.len()
}
