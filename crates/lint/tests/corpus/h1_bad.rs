//! H1 bad: every allocating construct class inside a hot-path-marked
//! kernel phase must fire.

pub struct StepKernel {
    due: Vec<u64>,
}

impl StepKernel {
    // dtm-lint: hot-path
    fn phase_schedule(&mut self, t: u64) -> usize {
        let seeded = vec![t, t + 1];
        let label = format!("t={t}");
        let drained: Vec<u64> = self.due.iter().copied().collect();
        let boxed = Box::new(t);
        let copied = self.due.to_vec();
        let cloned = self.due.clone();
        let fresh = Vec::new();
        let owned = String::from("phase");
        seeded.len()
            + label.len()
            + drained.len()
            + (*boxed as usize)
            + copied.len()
            + cloned.len()
            + fresh.len()
            + owned.len()
    }
}
