// Corpus fixture: D1 must fire on unordered maps in a deterministic crate.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.len() + seen.len()
}
