// Corpus fixture: a waiver without a reason trips W1 and does NOT
// actually waive the underlying finding.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // dtm-lint: allow(C1)
}
