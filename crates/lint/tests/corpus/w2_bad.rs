//! W2 bad: a waiver, a bounded mark, and a hot-path mark that each
//! match nothing are all stale.

// dtm-lint: allow(D1) -- there used to be a HashMap here, long since removed
pub fn clean() -> u64 {
    3
}

pub struct Tidy {
    // dtm-lint: bounded -- covers a scalar, so it guards nothing
    count: u64,
}

// dtm-lint: hot-path
pub struct NotAFunction;
