// Corpus fixture: deterministic work splitting (fixed chunking, no
// worker identity) never trips D4.
pub fn chunks(n: usize, width: usize) -> Vec<(usize, usize)> {
    let per = n.div_ceil(width.max(1));
    (0..n).step_by(per.max(1)).map(|s| (s, (s + per).min(n))).collect()
}
