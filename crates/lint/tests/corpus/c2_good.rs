//! Corpus fixture: a crate root with the forbid in place is clean.

#![forbid(unsafe_code)]

pub fn noop() {}
