// Corpus fixture: propagating errors instead of panicking never trips C1.
pub fn first(xs: &[u32]) -> Option<u32> {
    let head = xs.first()?;
    let tail = xs.last()?;
    Some(head + tail)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[1, 2]).unwrap(), 3);
    }
}
