// Corpus fixture: hazard names that appear only in strings and comments
// must never fire. HashMap, HashSet, Instant::now(), SystemTime,
// thread_rng(), from_entropy, OsRng, thread::current().id(),
// available_parallelism, unwrap(), expect() — all prose here.
// Reading RAYON_NUM_THREADS is also only *mentioned* in this comment.

/* Block-comment hazards: HashMap::new(), Instant::now(), thread_rng().
   Nested /* SystemTime::now() */ still a comment. */

pub fn describe() -> String {
    let a = "HashMap and HashSet live in std::collections";
    let b = "Instant::now() and SystemTime::now() read wall clocks";
    let c = r#"thread_rng() / from_entropy() / OsRng seed from the OS"#;
    let d = "thread::current().id() and available_parallelism()";
    let e = "call .unwrap() or .expect() to panic";
    let f = "RAYON_NUM_THREADS_SUFFIXED is a near-miss, not the env read";
    format!("{a} {b} {c} {d} {e} {f}")
}
