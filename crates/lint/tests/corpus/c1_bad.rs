// Corpus fixture: C1 must fire on unwrap/expect in library code, but
// NOT inside `#[cfg(test)]` items.
pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("nonempty");
    head + tail
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
