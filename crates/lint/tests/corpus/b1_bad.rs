//! B1 bad: growable fields in a bounded-tier policy struct with no
//! `bounded` annotation naming their prune site.

pub struct LeakyPolicy {
    pending: VecDeque<u64>,
    history: BTreeMap<u64, Vec<u64>>,
    total: u64,
}
