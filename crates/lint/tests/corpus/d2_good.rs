// Corpus fixture: simulated time (plain integers / Duration arithmetic)
// never trips D2.
use std::time::Duration;

pub fn advance(now: u64, step: Duration) -> u64 {
    now + step.as_millis() as u64
}
