//! W2 good: every waiver and marker here matches a real finding, so
//! nothing is stale and nothing is unwaived.

use std::collections::HashMap; // dtm-lint: allow(D1) -- fixture: key-lookup only, never iterated

pub struct Live {
    // dtm-lint: bounded -- drained fully every step by hot()
    queue: Vec<u64>,
}

// dtm-lint: hot-path
pub fn hot(live: &mut Live) -> usize {
    let _ = HashMap::<u64, u64>::with_capacity(0); // dtm-lint: allow(D1) -- fixture: built once, never iterated
    live.queue.len()
}
