// Corpus fixture: D4 must fire on every thread-identity entry point.
pub fn who_am_i() -> usize {
    let id = std::thread::current().id();
    let width = std::env::var("RAYON_NUM_THREADS").ok();
    let cores = std::thread::available_parallelism();
    let _ = (id, width, cores);
    0
}
