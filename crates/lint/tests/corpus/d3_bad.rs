// Corpus fixture: D3 must fire on every unseeded-randomness entry point.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let other = rand_chacha::ChaCha8Rng::from_entropy();
    let os = rand::rngs::OsRng;
    let _ = (&mut rng, other, os);
    4
}
