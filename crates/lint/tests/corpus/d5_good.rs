//! D5 good: integer math, lookalike tokens, and test-only floats are
//! all clean in a deterministic crate.

pub fn quantized(xs: &[(u64, u64)]) -> u64 {
    let range = 1..4;
    let first = xs[0].0;
    let nested = xs[0].1;
    let hex = 0xf64;
    let mut ys = [first, nested, hex];
    ys.sort_by_key(|&x| x);
    ys[0] + range.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_in_tests_are_fine() {
        let x = 1.5f64;
        assert!(x > 1.0);
    }
}
