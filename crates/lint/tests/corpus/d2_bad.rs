// Corpus fixture: D2 must fire on wall-clock reads outside timing crates.
use std::time::Instant;
use std::time::SystemTime;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let _ = wall;
    t0.elapsed().as_nanos()
}
