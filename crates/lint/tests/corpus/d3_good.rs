// Corpus fixture: explicitly seeded RNG never trips D3.
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub fn roll(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
