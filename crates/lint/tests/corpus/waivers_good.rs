// Corpus fixture: well-formed waivers (trailing and standalone-above)
// cover their findings; nothing here is unwaived.
use std::collections::HashMap; // dtm-lint: allow(D1) -- fixture: exercised by the corpus test, order never escapes

pub fn first(xs: &[u32]) -> u32 {
    let m: HashMap<u32, u32> = HashMap::new(); // dtm-lint: allow(D1) -- fixture: lookups only, never iterated
    let _ = m;
    // dtm-lint: allow(C1) -- fixture: standalone waiver covering the next line
    *xs.first().unwrap()
}
