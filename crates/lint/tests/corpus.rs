//! Corpus tests: every rule has a bad fixture that pins *firing* and a
//! good fixture that pins *not firing*, plus fixtures for waiver
//! mechanics and for hazards hidden in strings/comments.
//!
//! Fixtures live in `tests/corpus/` — a directory `lint.toml` excludes
//! from the workspace scan, and which cargo never compiles (only
//! top-level files in `tests/` are test targets). Each fixture is
//! scanned under a *synthetic* relative path so the test controls which
//! tier (deterministic / library / timing_ok / crate root) it lands in.

use dtm_lint::config::{Config, PathAllow};
use dtm_lint::rules::{scan_file, Finding, Rule};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scan fixture `name` as if it lived at `rel` in the workspace.
fn scan_as(rel: &str, name: &str) -> Vec<Finding> {
    scan_file(rel, &fixture(name), &Config::default())
}

fn unwaived(findings: &[Finding]) -> Vec<Rule> {
    findings
        .iter()
        .filter(|f| f.waived.is_none())
        .map(|f| f.rule)
        .collect()
}

#[test]
fn d1_bad_fires_and_good_does_not() {
    let bad = scan_as("crates/model/src/fixture.rs", "d1_bad.rs");
    let d1 = unwaived(&bad).iter().filter(|&&r| r == Rule::D1).count();
    assert!(d1 >= 4, "HashMap+HashSet uses must all fire, got {bad:?}");
    assert_eq!(
        unwaived(&scan_as("crates/model/src/fixture.rs", "d1_good.rs")),
        []
    );
    // The same hazards outside a deterministic crate are fine.
    assert_eq!(
        unwaived(&scan_as("crates/telemetry/src/fixture.rs", "d1_bad.rs")),
        []
    );
}

#[test]
fn d2_bad_fires_and_good_does_not() {
    let bad = scan_as("crates/core/src/fixture.rs", "d2_bad.rs");
    assert!(
        unwaived(&bad).iter().all(|&r| r == Rule::D2) && bad.len() >= 4,
        "{bad:?}"
    );
    assert_eq!(
        unwaived(&scan_as("crates/core/src/fixture.rs", "d2_good.rs")),
        []
    );
    // Timing crates are exempt from D2 by design.
    assert_eq!(
        unwaived(&scan_as("crates/bench/src/fixture.rs", "d2_bad.rs")),
        []
    );
}

#[test]
fn d3_bad_fires_and_good_does_not() {
    let bad = scan_as("crates/sim/src/fixture.rs", "d3_bad.rs");
    let d3 = unwaived(&bad).iter().filter(|&&r| r == Rule::D3).count();
    assert_eq!(d3, 3, "thread_rng + from_entropy + OsRng, got {bad:?}");
    assert_eq!(
        unwaived(&scan_as("crates/sim/src/fixture.rs", "d3_good.rs")),
        []
    );
}

#[test]
fn d4_bad_fires_and_good_does_not() {
    let bad = scan_as("crates/sim/src/fixture.rs", "d4_bad.rs");
    let d4 = unwaived(&bad).iter().filter(|&&r| r == Rule::D4).count();
    assert_eq!(
        d4, 3,
        "thread::current + env read + available_parallelism, got {bad:?}"
    );
    assert_eq!(
        unwaived(&scan_as("crates/sim/src/fixture.rs", "d4_good.rs")),
        []
    );
}

#[test]
fn d3_and_d4_apply_everywhere_even_outside_library_crates() {
    assert!(!unwaived(&scan_as("tests/fixture.rs", "d3_bad.rs")).is_empty());
    assert!(!unwaived(&scan_as("crates/bench/src/fixture.rs", "d4_bad.rs")).is_empty());
}

#[test]
fn c1_bad_fires_outside_tests_only() {
    let bad = scan_as("crates/graph/src/fixture.rs", "c1_bad.rs");
    let lines: Vec<(Rule, u32)> = bad
        .iter()
        .filter(|f| f.waived.is_none())
        .map(|f| (f.rule, f.line))
        .collect();
    // Exactly the two library-code panics — nothing from `mod tests`.
    assert_eq!(lines, [(Rule::C1, 4), (Rule::C1, 5)], "{bad:?}");
    assert_eq!(
        unwaived(&scan_as("crates/graph/src/fixture.rs", "c1_good.rs")),
        []
    );
    // Outside library crates (e.g. integration tests) unwrap is fine.
    assert_eq!(unwaived(&scan_as("tests/fixture.rs", "c1_bad.rs")), []);
}

#[test]
fn c2_fires_on_bare_and_masked_roots_only() {
    let bad = scan_as("crates/x/src/lib.rs", "c2_bad.rs");
    assert_eq!(unwaived(&bad), [Rule::C2], "{bad:?}");
    // The same file off the crate root is not held to C2.
    assert_eq!(unwaived(&scan_as("crates/x/src/other.rs", "c2_bad.rs")), []);
    // forbid present but masked by allow(unsafe_code): still C2.
    let masked = scan_as("crates/x/src/lib.rs", "c2_masked.rs");
    assert_eq!(unwaived(&masked), [Rule::C2], "{masked:?}");
    assert!(masked[0].snippet.contains("allow"), "{masked:?}");
    assert_eq!(unwaived(&scan_as("crates/x/src/lib.rs", "c2_good.rs")), []);
}

#[test]
fn reasonless_waiver_trips_w1_and_does_not_waive() {
    let bad = scan_as("crates/model/src/fixture.rs", "w1_bad.rs");
    let rules = unwaived(&bad);
    assert!(rules.contains(&Rule::W1), "{bad:?}");
    assert!(
        rules.contains(&Rule::C1),
        "reasonless waiver must not mask C1: {bad:?}"
    );
}

#[test]
fn trailing_and_standalone_waivers_cover_their_findings() {
    let fs = scan_as("crates/model/src/fixture.rs", "waivers_good.rs");
    assert!(fs.len() >= 3, "the hazards should still be *found*: {fs:?}");
    assert_eq!(unwaived(&fs), [], "{fs:?}");
    for f in &fs {
        let reason = f.waived.as_deref().unwrap_or_default();
        assert!(
            reason.contains("fixture:"),
            "reason is carried through: {f:?}"
        );
    }
}

#[test]
fn lint_toml_path_scoped_waiver_applies() {
    let mut cfg = Config::default();
    cfg.allows.push(PathAllow {
        rule: "D1".into(),
        path: "crates/model/src/fixture.rs".into(),
        reason: "corpus: path-scoped waiver".into(),
        line: 1,
    });
    let fs = scan_file("crates/model/src/fixture.rs", &fixture("d1_bad.rs"), &cfg);
    assert!(!fs.is_empty());
    assert_eq!(unwaived(&fs), [], "{fs:?}");
    assert!(fs[0]
        .waived
        .as_deref()
        .unwrap_or_default()
        .starts_with("lint.toml:"));
}

#[test]
fn hazards_in_strings_and_comments_never_fire() {
    // Scanned under the strictest tier: deterministic + library.
    let fs = scan_as("crates/model/src/fixture.rs", "strings_comments.rs");
    assert_eq!(fs.len(), 0, "{fs:?}");
}

#[test]
fn d5_bad_fires_and_good_does_not() {
    let bad = scan_as("crates/core/src/fixture.rs", "d5_bad.rs");
    let rules = unwaived(&bad);
    assert!(rules.iter().all(|&r| r == Rule::D5), "{bad:?}");
    assert!(rules.len() >= 6, "type+literal+suffix+comparators: {bad:?}");
    // The acceptance hazard: a bare f64 in a crates/core signature.
    assert!(
        bad.iter().any(|f| f.line == 4 && f.snippet.contains("f64")),
        "{bad:?}"
    );
    assert_eq!(
        unwaived(&scan_as("crates/core/src/fixture.rs", "d5_good.rs")),
        []
    );
    // Floats outside deterministic crates are not D5's business.
    assert_eq!(
        unwaived(&scan_as("crates/telemetry/src/fixture.rs", "d5_bad.rs")),
        []
    );
}

#[test]
fn h1_bad_fires_in_marked_phase_and_good_does_not() {
    let bad = scan_as("crates/sim/src/fixture.rs", "h1_bad.rs");
    let h1: Vec<u32> = bad
        .iter()
        .filter(|f| f.waived.is_none() && f.rule == Rule::H1)
        .map(|f| f.line)
        .collect();
    assert_eq!(h1, [11, 12, 13, 14, 15, 16, 17, 18], "{bad:?}");
    // The acceptance hazard: the seeded `vec!` in a marked kernel phase,
    // attributed to its enclosing method.
    let seeded = bad
        .iter()
        .find(|f| f.line == 11)
        .unwrap_or_else(|| panic!("{bad:?}"));
    assert!(seeded.snippet.contains("vec!"), "{seeded:?}");
    assert_eq!(seeded.scope.as_deref(), Some("StepKernel::phase_schedule"));
    // Warmed-buffer reuse in a marked phase, and allocation in cold
    // setup code, are both clean.
    assert_eq!(
        unwaived(&scan_as("crates/sim/src/fixture.rs", "h1_good.rs")),
        []
    );
}

#[test]
fn b1_bad_fires_in_bounded_tier_and_good_does_not() {
    let bad = scan_as("crates/core/src/fixture.rs", "b1_bad.rs");
    let b1: Vec<u32> = bad
        .iter()
        .filter(|f| f.waived.is_none() && f.rule == Rule::B1)
        .map(|f| f.line)
        .collect();
    assert_eq!(b1, [5, 6], "both growable fields, got {bad:?}");
    assert!(
        bad.iter()
            .all(|f| f.scope.as_deref() == Some("LeakyPolicy")),
        "{bad:?}"
    );
    // Annotated fields are found but waived, carrying the prune note.
    let good = scan_as("crates/core/src/fixture.rs", "b1_good.rs");
    assert!(good.iter().any(|f| f.rule == Rule::B1), "{good:?}");
    assert_eq!(unwaived(&good), [], "{good:?}");
    assert!(
        good.iter().filter(|f| f.rule == Rule::B1).all(|f| f
            .waived
            .as_deref()
            .unwrap_or_default()
            .starts_with("bounded:")),
        "{good:?}"
    );
    // Outside the bounded tier the same struct is not audited.
    assert_eq!(
        unwaived(&scan_as("crates/model/src/fixture.rs", "b1_bad.rs")),
        []
    );
}

#[test]
fn w2_fires_on_stale_waivers_and_markers_only() {
    let bad = scan_as("crates/core/src/fixture.rs", "w2_bad.rs");
    let w2: Vec<u32> = bad
        .iter()
        .filter(|f| f.waived.is_none() && f.rule == Rule::W2)
        .map(|f| f.line)
        .collect();
    // Stale allow(D1), stale bounded mark, unattached hot-path mark.
    assert_eq!(w2, [4, 10, 14], "{bad:?}");
    // When every waiver and marker earns its keep, nothing is stale —
    // and the underlying findings are all waived.
    let good = scan_as("crates/core/src/fixture.rs", "w2_good.rs");
    assert!(good.len() >= 3, "hazards should still be *found*: {good:?}");
    assert_eq!(unwaived(&good), [], "{good:?}");
}

#[test]
fn every_rule_has_corpus_coverage() {
    // Meta-test: adding a rule to the catalog without corpus fixtures
    // fails here, keeping the corpus in lockstep with the rule set.
    let covered = [
        "D1", "D2", "D3", "D4", "D5", "H1", "B1", "C1", "C2", "W1", "W2",
    ];
    for r in Rule::ALL {
        assert!(
            covered.contains(&r.name()),
            "no corpus fixture for {}",
            r.name()
        );
    }
}
