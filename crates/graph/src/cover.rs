//! Hierarchical sparse cover decomposition (Section V of the paper).
//!
//! The distributed bucket scheduler needs a hierarchy of clusters with
//! `H1 = ceil(log D) + 1` layers where, at layer `ℓ`:
//!
//! 1. each layer consists of `H2 = O(log n)` *sub-layers*, each of which is
//!    a **partition** of `G`;
//! 2. every cluster has (weak) diameter at most `f(ℓ) = O(2^ℓ log n)`;
//! 3. every node `u` has a **home cluster** at layer `ℓ` that contains its
//!    entire `(2^ℓ - 1)`-neighborhood.
//!
//! These are the only three properties Algorithm 3 and its analysis use
//! (Lemmas 5–8), so any conforming construction preserves the paper's
//! guarantees. We build the cover by seeded random ball carving with a
//! deterministic "dedicated ball" fallback that guarantees termination; the
//! three properties are checked explicitly by [`SparseCover::verify`] and by
//! property tests.

use crate::graph::{NodeId, Weight};
use crate::network::Network;
use crate::shortest_paths::{bounded_ball_into, BallScratch};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster within a [`SparseCover`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The height of a cluster: its `(layer, sublayer)` pair, ordered
/// lexicographically (Section V: "Heights are ordered lexicographically").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Height {
    /// Layer index `ℓ` (0-based).
    pub layer: u32,
    /// Sub-layer index within the layer (0-based).
    pub sublayer: u32,
}

/// One cluster of the cover.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cluster {
    /// Identifier (index into [`SparseCover::clusters`]).
    pub id: ClusterId,
    /// Height `(layer, sublayer)`.
    pub height: Height,
    /// The designated leader node (the carving center), which hosts the
    /// partial buckets of Algorithm 3.
    pub leader: NodeId,
    /// Member nodes, sorted.
    pub nodes: Vec<NodeId>,
}

impl Cluster {
    /// True if `v` belongs to this cluster (binary search on sorted members).
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }
}

/// Violations detected by [`SparseCover::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// A sub-layer is not a partition: some node missing or duplicated.
    NotAPartition {
        /// Offending height.
        height: Height,
    },
    /// A cluster's weak diameter exceeds the layer bound.
    DiameterExceeded {
        /// Offending cluster.
        cluster: ClusterId,
        /// Measured weak diameter.
        measured: Weight,
        /// Allowed bound `f(ℓ)`.
        bound: Weight,
    },
    /// A node's home cluster does not contain its `(2^ℓ - 1)`-neighborhood.
    HomeNotCovering {
        /// The node.
        node: NodeId,
        /// The layer.
        layer: u32,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::NotAPartition { height } => {
                write!(f, "sub-layer {height:?} is not a partition")
            }
            CoverError::DiameterExceeded {
                cluster,
                measured,
                bound,
            } => write!(
                f,
                "cluster {cluster:?} has weak diameter {measured} > bound {bound}"
            ),
            CoverError::HomeNotCovering { node, layer } => write!(
                f,
                "home cluster of {node} at layer {layer} misses its neighborhood"
            ),
        }
    }
}

impl std::error::Error for CoverError {}

/// One sub-layer: a partition of the node set into clusters.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SubLayer {
    /// `assignment[v]` = cluster owning node `v`.
    assignment: Vec<ClusterId>,
    /// Clusters of this sub-layer.
    clusters: Vec<ClusterId>,
}

/// One layer: several partition sub-layers plus per-node home clusters.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Layer {
    sublayers: Vec<SubLayer>,
    /// `home[v]` = home cluster of node `v` at this layer.
    home: Vec<ClusterId>,
    /// Covering radius `2^ℓ - 1`.
    radius: Weight,
    /// Weak-diameter bound `f(ℓ)` for clusters of this layer.
    diameter_bound: Weight,
}

/// A hierarchical sparse cover of a network (see module docs).
#[derive(Clone, Debug)]
pub struct SparseCover {
    clusters: Vec<Cluster>,
    layers: Vec<Layer>,
}

/// Random carving rounds per layer before falling back to dedicated balls.
fn max_random_rounds(n: usize) -> usize {
    4 * (usize::BITS - n.max(2).leading_zeros()) as usize
}

/// Reusable state threaded through cover construction so repeated ball
/// queries stop paying per-call allocation and per-node log factors:
///
/// * `ball` / `out` — the epoch-stamped Dijkstra scratch shared by every
///   carve and padding query of the whole build;
/// * `pad_balls` — per-**layer** memo of each node's `(2^ℓ - 1)`-ball
///   (ids only). A layer often needs several sub-layers before every node
///   is padded, and a node's padding ball is identical in each of them,
///   so it is computed once per layer instead of once per sub-layer.
struct CarveScratch {
    ball: BallScratch,
    out: Vec<(NodeId, Weight)>,
    pad_balls: Vec<Option<Vec<NodeId>>>,
}

impl CarveScratch {
    fn new(n: usize) -> Self {
        CarveScratch {
            ball: BallScratch::new(),
            out: Vec::new(),
            pad_balls: (0..n).map(|_| None).collect(),
        }
    }

    /// Invalidate the padding-ball memo (the covering radius changed).
    fn begin_layer(&mut self) {
        self.pad_balls.iter_mut().for_each(|b| *b = None);
    }

    /// The ids within `radius` of `u`, memoized for the current layer.
    fn pad_ball(&mut self, network: &Network, u: NodeId, radius: Weight) -> &[NodeId] {
        let slot = &mut self.pad_balls[u.index()];
        if slot.is_none() {
            bounded_ball_into(network.graph(), u, radius, &mut self.ball, &mut self.out);
            *slot = Some(self.out.iter().map(|&(v, _)| v).collect());
        }
        slot.as_deref().unwrap_or(&[])
    }
}

impl SparseCover {
    /// Build a sparse cover of `network`, deterministic in `seed`.
    ///
    /// Layers run from 0 to `ceil(log2(D + 1))` inclusive so the top layer's
    /// covering radius `2^ℓ - 1 >= D` spans the whole graph.
    pub fn build(network: &Network, seed: u64) -> Self {
        let n = network.n();
        let diameter = network.diameter();
        // ceil(log2(D + 1)): the top layer's radius 2^ℓ - 1 must reach D.
        let top_layer = 64 - diameter.leading_zeros();
        let mut cover = SparseCover {
            clusters: Vec::new(),
            layers: Vec::new(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scratch = CarveScratch::new(n);
        for layer_idx in 0..=top_layer {
            let radius: Weight = (1u64 << layer_idx) - 1;
            let carve_radius: Weight = 1u64 << (layer_idx + 1);
            scratch.begin_layer();
            let layer =
                cover.build_layer(network, layer_idx, radius, carve_radius, &mut rng, &mut scratch);
            cover.layers.push(layer);
            debug_assert!(cover.layers[layer_idx as usize].home.len() == n);
        }
        cover
    }

    /// Build a single layer: carve partitions until every node is padded
    /// (its `radius`-ball inside one cluster of some sub-layer).
    fn build_layer(
        &mut self,
        network: &Network,
        layer_idx: u32,
        radius: Weight,
        carve_radius: Weight,
        rng: &mut ChaCha8Rng,
        scratch: &mut CarveScratch,
    ) -> Layer {
        let n = network.n();
        let no_home = ClusterId(u32::MAX);
        let mut home = vec![no_home; n];
        let mut sublayers = Vec::new();
        let mut unpadded: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let random_rounds = max_random_rounds(n);
        let mut round = 0usize;
        while !unpadded.is_empty() {
            let sub_idx = sublayers.len() as u32;
            let height = Height {
                layer: layer_idx,
                sublayer: sub_idx,
            };
            let assignment = if round < random_rounds {
                let mut order: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
                order.shuffle(rng);
                self.carve(network, &order, carve_radius, height, scratch)
            } else {
                // Deterministic fallback: dedicate balls to a maximal
                // 2·radius-separated subset of the unpadded nodes, then
                // carve the rest around them.
                // Separation > carve_radius + radius guarantees no earlier
                // dedicated ball can claim any node of a later chosen
                // node's radius-neighborhood, so every chosen node ends up
                // padded in this sub-layer.
                let mut order: Vec<NodeId> = Vec::with_capacity(n);
                let mut chosen: Vec<NodeId> = Vec::new();
                for &u in &unpadded {
                    if chosen
                        .iter()
                        .all(|&c| network.distance(c, u) > carve_radius + radius)
                    {
                        chosen.push(u);
                        order.push(u);
                    }
                }
                for v in (0..n).map(NodeId::from_index) {
                    if !chosen.contains(&v) {
                        order.push(v);
                    }
                }
                self.carve(network, &order, carve_radius, height, scratch)
            };
            // Determine which still-unpadded nodes this sub-layer pads.
            let mut still = Vec::new();
            for &u in &unpadded {
                if Self::is_padded(network, u, radius, &assignment, scratch) {
                    home[u.index()] = assignment[u.index()];
                } else {
                    still.push(u);
                }
            }
            let clusters = {
                let mut ids: Vec<ClusterId> = assignment.clone();
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            sublayers.push(SubLayer {
                assignment,
                clusters,
            });
            unpadded = still;
            round += 1;
            assert!(
                round <= max_random_rounds(n) + n + 2,
                "sparse cover construction failed to terminate"
            );
        }
        Layer {
            sublayers,
            home,
            radius,
            diameter_bound: 2 * carve_radius,
        }
    }

    /// Ball-carve a partition: process `order` as candidate centers; each
    /// center claims all still-unassigned nodes within `carve_radius`.
    /// Registers the new clusters and returns the node assignment.
    fn carve(
        &mut self,
        network: &Network,
        order: &[NodeId],
        carve_radius: Weight,
        height: Height,
        scratch: &mut CarveScratch,
    ) -> Vec<ClusterId> {
        let n = network.n();
        let unassigned = ClusterId(u32::MAX);
        let mut assignment = vec![unassigned; n];
        for &center in order {
            if assignment[center.index()] != unassigned {
                continue;
            }
            let id = ClusterId(self.clusters.len() as u32);
            let mut members = Vec::new();
            bounded_ball_into(
                network.graph(),
                center,
                carve_radius,
                &mut scratch.ball,
                &mut scratch.out,
            );
            for &(v, _) in &scratch.out {
                if assignment[v.index()] == unassigned {
                    assignment[v.index()] = id;
                    members.push(v);
                }
            }
            members.sort_unstable();
            self.clusters.push(Cluster {
                id,
                height,
                leader: center,
                nodes: members,
            });
        }
        debug_assert!(assignment.iter().all(|&c| c != unassigned));
        assignment
    }

    /// Is `u`'s `radius`-neighborhood entirely inside `u`'s cluster?
    /// The neighborhood is memoized per layer in `scratch` (see
    /// [`CarveScratch`]); only the assignment varies between sub-layers.
    fn is_padded(
        network: &Network,
        u: NodeId,
        radius: Weight,
        assignment: &[ClusterId],
        scratch: &mut CarveScratch,
    ) -> bool {
        if radius == 0 {
            return true;
        }
        let mine = assignment[u.index()];
        scratch
            .pad_ball(network, u, radius)
            .iter()
            .all(|&v| assignment[v.index()] == mine)
    }

    /// Number of layers `H1`.
    pub fn num_layers(&self) -> u32 {
        self.layers.len() as u32
    }

    /// Maximum number of sub-layers in any layer (`H2`).
    pub fn max_sublayers(&self) -> u32 {
        self.layers
            .iter()
            .map(|l| l.sublayers.len() as u32)
            .max()
            .unwrap_or(0)
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Look up a cluster.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// Covering radius `2^ℓ - 1` of a layer.
    pub fn layer_radius(&self, layer: u32) -> Weight {
        self.layers[layer as usize].radius
    }

    /// The home cluster of `node` at `layer`; contains the node's
    /// `(2^ℓ - 1)`-neighborhood.
    pub fn home_cluster(&self, node: NodeId, layer: u32) -> &Cluster {
        let id = self.layers[layer as usize].home[node.index()];
        self.cluster(id)
    }

    /// The cluster owning `node` in a specific sub-layer.
    pub fn cluster_at(&self, node: NodeId, height: Height) -> &Cluster {
        let id = self.layers[height.layer as usize].sublayers[height.sublayer as usize].assignment
            [node.index()];
        self.cluster(id)
    }

    /// Smallest layer whose covering radius is at least `y`, i.e. the layer
    /// Algorithm 3 step 5 selects for a transaction whose furthest relevant
    /// party is `y` away. Clamped to the top layer.
    pub fn lowest_covering_layer(&self, y: Weight) -> u32 {
        for (idx, layer) in self.layers.iter().enumerate() {
            if layer.radius >= y {
                return idx as u32;
            }
        }
        (self.layers.len() - 1) as u32
    }

    /// Verify the three cover properties against the network. Exhaustive
    /// (`O(n^2)` distance queries per layer); intended for tests and
    /// experiment sanity checks.
    pub fn verify(&self, network: &Network) -> Result<(), CoverError> {
        let n = network.n();
        for layer in &self.layers {
            for sub in &layer.sublayers {
                // Partition: assignment total + each cluster's members match.
                if sub.assignment.len() != n {
                    return Err(CoverError::NotAPartition {
                        height: self.cluster(sub.clusters[0]).height,
                    });
                }
                let mut counted = 0usize;
                for &cid in &sub.clusters {
                    let c = self.cluster(cid);
                    counted += c.nodes.len();
                    for &v in &c.nodes {
                        if sub.assignment[v.index()] != cid {
                            return Err(CoverError::NotAPartition { height: c.height });
                        }
                    }
                    // Weak diameter via the leader: every member within
                    // carve radius of the leader implies diameter <= bound.
                    let mut max_d = 0;
                    for &v in &c.nodes {
                        for &u in &c.nodes {
                            let d = network.distance(u, v);
                            max_d = max_d.max(d);
                        }
                    }
                    if max_d > layer.diameter_bound {
                        return Err(CoverError::DiameterExceeded {
                            cluster: cid,
                            measured: max_d,
                            bound: layer.diameter_bound,
                        });
                    }
                }
                if counted != n {
                    return Err(CoverError::NotAPartition {
                        height: self.cluster(sub.clusters[0]).height,
                    });
                }
            }
            // Home property.
            for v in (0..n).map(NodeId::from_index) {
                let home = self.cluster(layer.home[v.index()]);
                for u in (0..n).map(NodeId::from_index) {
                    if network.distance(v, u) <= layer.radius && !home.contains(u) {
                        return Err(CoverError::HomeNotCovering {
                            node: v,
                            layer: home.height.layer,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn check(network: &Network, seed: u64) -> SparseCover {
        let cover = SparseCover::build(network, seed);
        cover.verify(network).expect("cover properties hold");
        cover
    }

    #[test]
    fn line_cover_valid() {
        let net = topology::line(32);
        let cover = check(&net, 1);
        // Top layer radius must span the diameter.
        let top = cover.num_layers() - 1;
        assert!(cover.layer_radius(top) >= net.diameter());
    }

    #[test]
    fn grid_cover_valid() {
        let net = topology::grid(&[5, 5]);
        check(&net, 2);
    }

    #[test]
    fn clique_cover_valid() {
        let net = topology::clique(12);
        let cover = check(&net, 3);
        // Diameter 1 -> layers 0 and 1.
        assert_eq!(cover.num_layers(), 2);
    }

    #[test]
    fn star_cover_valid() {
        let net = topology::star(3, 5);
        check(&net, 4);
    }

    #[test]
    fn cluster_topology_cover_valid() {
        let net = topology::cluster(3, 3, 4);
        check(&net, 5);
    }

    #[test]
    fn random_graph_cover_valid() {
        let net = topology::random(30, 3, 4, 11);
        check(&net, 6);
    }

    #[test]
    fn butterfly_cover_valid() {
        let net = topology::butterfly(3);
        check(&net, 7);
    }

    #[test]
    fn home_cluster_contains_neighborhood() {
        let net = topology::line(16);
        let cover = check(&net, 8);
        for layer in 0..cover.num_layers() {
            let r = cover.layer_radius(layer);
            for v in net.graph().nodes() {
                let home = cover.home_cluster(v, layer);
                for u in net.graph().nodes() {
                    if net.distance(u, v) <= r {
                        assert!(home.contains(u));
                    }
                }
            }
        }
    }

    #[test]
    fn lowest_covering_layer_monotone() {
        let net = topology::line(32);
        let cover = check(&net, 9);
        let mut prev = 0;
        for y in 0..=net.diameter() {
            let l = cover.lowest_covering_layer(y);
            assert!(l >= prev);
            assert!(cover.layer_radius(l) >= y || l == cover.num_layers() - 1);
            prev = l;
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let net = topology::grid(&[4, 4]);
        let a = SparseCover::build(&net, 42);
        let b = SparseCover::build(&net, 42);
        assert_eq!(a.clusters.len(), b.clusters.len());
        for (x, y) in a.clusters.iter().zip(b.clusters.iter()) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.leader, y.leader);
        }
    }

    #[test]
    fn heights_ordered_lexicographically() {
        let a = Height {
            layer: 1,
            sublayer: 5,
        };
        let b = Height {
            layer: 2,
            sublayer: 0,
        };
        let c = Height {
            layer: 2,
            sublayer: 1,
        };
        assert!(a < b && b < c);
    }

    #[test]
    fn single_node_cover() {
        let net = topology::line(1);
        let cover = check(&net, 10);
        assert!(cover.num_layers() >= 1);
        assert_eq!(cover.home_cluster(NodeId(0), 0).nodes, vec![NodeId(0)]);
    }
}

#[cfg(test)]
mod weighted_cover_tests {
    use super::*;
    use crate::topology;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// Cover properties hold on weighted random graphs too (weighted
        /// balls, weighted home-neighborhood containment).
        #[test]
        fn cover_valid_on_weighted_graphs(seed in 0u64..40, n in 6u32..24, w in 1u64..5) {
            let net = topology::random(n, 3, w, seed);
            let cover = SparseCover::build(&net, seed ^ 0xc0ffee);
            prop_assert!(cover.verify(&net).is_ok());
            let top = cover.num_layers() - 1;
            prop_assert!(cover.layer_radius(top) >= net.diameter());
        }
    }
}
