//! Landmark (ALT-style) distance and routing oracle for large graphs.
//!
//! Above [`crate::network`]'s exact tiers, per-target Dijkstra trees stop
//! being affordable: a 10⁵-node network would pay `O(m log n)` per distinct
//! routing target and cache `O(n)` memory per tree. The landmark oracle
//! instead precomputes `k` shortest-path trees (k ≈ 16) rooted at
//! farthest-point-sampled landmarks and answers every query from those.
//!
//! ## Estimate
//!
//! Each node `v` is assigned a *home landmark* `H(v)` — its nearest
//! landmark, ties toward the smaller landmark index. The directed estimate
//! routes through the target's home landmark,
//!
//! ```text
//! est(u → v) = d(u, H(v)) + d(H(v), v)
//! ```
//!
//! and the reported distance is the symmetrized `max(est(u→v), est(v→u))`.
//! By the triangle inequality the estimate **upper-bounds** the true
//! distance, and `est(u→v) ≤ d(u,v) + 2·d(v,H(v))`, so the additive error
//! is at most `2R` where `R = max_v d(v, H(v))` is the covering radius of
//! the landmark set ([`LandmarkOracle::stretch_radius`], pinned by the
//! property tests). The upper-bound direction is a *hard requirement*: the
//! step kernel schedules a transaction's execution from the reported
//! distance and raises `MissedExecution` if the object physically arrives
//! later, so routing must never cost more than the oracle promised.
//!
//! ## Routing
//!
//! `next_hop(u, v)` walks the tree of `H(v)`: ascend from `u` toward the
//! landmark until reaching an ancestor of `v`, then descend to `v`. The
//! realized cost is `d(u,l) + d(l,v) − 2·d(a,l) ≤ est(u → v)` (where `a`
//! is the meeting ancestor), so the promise above holds. Crucially the
//! rule is *memoryless* — the hop out of `u` depends only on `(u, v)`,
//! never on where the object started — so per-pair path caching is pure
//! memoization: eviction can cost time but can never change an answer
//! (which also keeps `--jobs 1` and `--jobs N` runs byte-identical even
//! though cache contents differ).

use crate::graph::{Graph, NodeId, Weight};
use crate::shortest_paths::ShortestPathTree;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Number of landmarks sampled (capped by `n`). More landmarks tighten
/// `R` but add a full Dijkstra + `O(n)` memory each at build time.
pub const DEFAULT_LANDMARKS: usize = 16;

/// Cached-path table capacity in entries (pairs). One entry is ~48 bytes
/// plus its share of the shared path vector; 2²⁰ entries ≈ 64 MB worst
/// case. When an insertion would exceed the cap the table is cleared
/// wholesale — deterministic, and safe because entries are pure
/// memoization (see module docs).
const PATH_CACHE_CAP: usize = 1 << 20;

/// Cached routed paths keyed by `(current node, target)`. The value is the
/// full remaining path (shared, so one routed journey inserts all of its
/// suffixes at once) plus this key's position in it.
type PathEntry = (Arc<Vec<NodeId>>, u32);

/// Landmark distance/routing oracle. Build once per network; queries are
/// lock-free flat-array reads except for the routing path cache.
pub struct LandmarkOracle {
    /// One shortest-path tree per landmark, indexed by landmark id.
    trees: Vec<ShortestPathTree>,
    /// Home landmark index of each node (nearest, ties to smaller index).
    home: Vec<u16>,
    /// Distance from each node to its home landmark.
    home_dist: Vec<Weight>,
    /// Covering radius `R = max_v d(v, H(v))`.
    radius: Weight,
    /// Upper bound on both the true diameter and any reported distance.
    diameter_bound: Weight,
    cache: RwLock<BTreeMap<(NodeId, NodeId), PathEntry>>,
}

impl LandmarkOracle {
    /// Build the oracle with [`DEFAULT_LANDMARKS`] landmarks.
    pub fn build(graph: &Graph) -> Self {
        Self::build_with(graph, DEFAULT_LANDMARKS)
    }

    /// Build with an explicit landmark budget (`k` clamped to `[1, n]`).
    ///
    /// Landmarks are chosen by farthest-point sampling seeded at node 0:
    /// each round adds the node maximizing the distance to the landmarks
    /// picked so far (ties toward the smaller node id). Fully
    /// deterministic, and `k` Dijkstra runs total.
    pub fn build_with(graph: &Graph, k: usize) -> Self {
        let n = graph.n();
        assert!(n > 0, "landmark oracle needs a non-empty graph");
        let k = k.clamp(1, n).min(u16::MAX as usize);
        let mut trees: Vec<ShortestPathTree> = Vec::with_capacity(k);
        let mut home: Vec<u16> = vec![0; n];
        let mut home_dist: Vec<Weight> = vec![Weight::MAX; n];
        let mut next_mark = NodeId(0);
        for mark in 0..k {
            let tree = ShortestPathTree::compute(graph, next_mark);
            assert!(tree.spanning(), "landmark oracle requires connectivity");
            // Fold this landmark into the nearest-landmark assignment and
            // pick the farthest remaining node as the next landmark.
            let mut far = NodeId(0);
            let mut far_d: Weight = 0;
            for v in graph.nodes() {
                let d = tree.dist(v);
                if d < home_dist[v.index()] {
                    home_dist[v.index()] = d;
                    home[v.index()] = mark as u16;
                }
                if home_dist[v.index()] > far_d {
                    far_d = home_dist[v.index()];
                    far = v;
                }
            }
            trees.push(tree);
            if far_d == 0 {
                break; // every node is itself a landmark already
            }
            next_mark = far;
        }
        let radius = home_dist.iter().copied().max().unwrap_or(0);
        let max_ecc = trees.iter().map(|t| t.eccentricity()).max().unwrap_or(0);
        LandmarkOracle {
            trees,
            home,
            home_dist,
            radius,
            // Any pair satisfies d(u,v) ≤ est(u→v) ≤ ecc(H(v)) + R.
            diameter_bound: max_ecc + radius,
            cache: RwLock::new(BTreeMap::new()),
        }
    }

    /// Number of landmarks actually placed.
    pub fn landmarks(&self) -> usize {
        self.trees.len()
    }

    /// Covering radius `R`: every reported distance is within an additive
    /// `2R` of the true shortest-path distance.
    pub fn stretch_radius(&self) -> Weight {
        self.radius
    }

    /// Upper bound on the graph diameter *and* on every distance this
    /// oracle reports — safe to feed to bucket-level and cover-depth
    /// formulas that need `D` without `n` full Dijkstra runs.
    pub fn diameter_bound(&self) -> Weight {
        self.diameter_bound
    }

    /// Directed estimate `d(u, H(v)) + d(H(v), v)` — the cost promise for
    /// routing from `u` to `v` (see module docs).
    // dtm-lint: hot-path
    #[inline]
    fn est(&self, u: NodeId, v: NodeId) -> Weight {
        let l = self.home[v.index()] as usize;
        self.trees[l].dist(u) + self.home_dist[v.index()]
    }

    /// Symmetrized distance estimate: `max` of the two directed estimates,
    /// so it upper-bounds the routed cost in *either* direction while
    /// keeping `distance(u, v) == distance(v, u)`.
    // dtm-lint: hot-path
    #[inline]
    pub fn distance(&self, u: NodeId, v: NodeId) -> Weight {
        if u == v {
            return 0;
        }
        self.est(u, v).max(self.est(v, u))
    }

    /// First hop from `u` on the oracle's routed path toward `v`.
    ///
    /// Consults the cached-path table first; on a miss, routes in the tree
    /// of `H(v)` and memoizes every suffix of the computed path.
    // dtm-lint: hot-path
    pub fn next_hop(&self, u: NodeId, v: NodeId) -> NodeId {
        debug_assert_ne!(u, v, "next_hop requires distinct endpoints");
        if let Some(hop) = self.cached_next(u, v) {
            return hop;
        }
        self.route_miss(u, v)
    }

    /// Allocation-free cache probe: the next hop toward `v` if the pair's
    /// path is already memoized.
    // dtm-lint: hot-path
    #[inline]
    fn cached_next(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        let guard = self.cache.read();
        let (path, pos) = guard.get(&(u, v))?;
        Some(path[*pos as usize + 1])
    }

    /// Cache-miss path: compute the routed path `u → v`, memoize all of
    /// its suffixes, and return the first hop. Pure in `(u, v)`, so a
    /// concurrent or evicted-and-recomputed entry is always identical.
    fn route_miss(&self, u: NodeId, v: NodeId) -> NodeId {
        let path = Arc::new(self.compute_path(u, v));
        let hop = path[1];
        let mut guard = self.cache.write();
        if guard.len() + path.len() > PATH_CACHE_CAP {
            guard.clear();
        }
        for (i, &from) in path.iter().enumerate().take(path.len() - 1) {
            guard.insert((from, v), (Arc::clone(&path), i as u32));
        }
        hop
    }

    /// The routed path from `u` to `v` in the tree of `H(v)`: ascend from
    /// `u` until reaching an ancestor of `v`, then descend along `v`'s
    /// root path. Cost = `d(u,l) + d(v,l) − 2·d(a,l) ≤ est(u → v)`.
    fn compute_path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let tree = &self.trees[self.home[v.index()] as usize];
        // v's root path, indexed for O(log depth) ancestor membership tests.
        let vpath = tree.path_to_root(v);
        let mut index: Vec<(NodeId, u32)> = vpath
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, i as u32))
            .collect();
        index.sort_unstable_by_key(|e| e.0);
        let mut path = vec![u];
        let mut cur = u;
        let meet = loop {
            if let Ok(at) = index.binary_search_by_key(&cur, |e| e.0) {
                break index[at].1;
            }
            cur = tree
                .next_hop(cur)
                .expect("tree root is an ancestor of every node"); // dtm-lint: allow(C1) -- ascent can only fail past the root, and the root is on every root path
            path.push(cur);
        };
        // Descend from the meeting ancestor (exclusive) down to v.
        path.extend(vpath[..meet as usize].iter().rev());
        debug_assert_eq!(path.last(), Some(&v));
        path
    }

    /// Current number of memoized `(node, target)` pairs (test/telemetry).
    pub fn cached_pairs(&self) -> usize {
        self.cache.read().len()
    }
}

impl std::fmt::Debug for LandmarkOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LandmarkOracle")
            .field("landmarks", &self.trees.len())
            .field("radius", &self.radius)
            .field("diameter_bound", &self.diameter_bound)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn oracle_and_graph(seed: u64, n: u32) -> (LandmarkOracle, crate::network::Network) {
        let net = topology::random(n, 3, 5, seed);
        let oracle = LandmarkOracle::build_with(net.graph(), 4);
        (oracle, net)
    }

    #[test]
    fn estimates_upper_bound_true_distance_within_stretch() {
        let (oracle, net) = oracle_and_graph(11, 40);
        let r2 = 2 * oracle.stretch_radius();
        for u in net.graph().nodes() {
            for v in net.graph().nodes() {
                let truth = ShortestPathTree::compute(net.graph(), v).dist(u);
                let est = oracle.distance(u, v);
                assert!(est >= truth, "estimate must upper-bound the metric");
                assert!(est <= truth + r2, "additive stretch bound 2R violated");
                assert_eq!(est, oracle.distance(v, u), "symmetry");
            }
        }
    }

    #[test]
    fn routed_cost_never_exceeds_estimate() {
        let (oracle, net) = oracle_and_graph(23, 40);
        let g = net.graph();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let mut cost: Weight = 0;
                let mut cur = u;
                let mut hops = 0;
                while cur != v {
                    let next = oracle.next_hop(cur, v);
                    cost += g.edge_weight(cur, next).expect("routed hops are edges");
                    cur = next;
                    hops += 1;
                    assert!(hops <= g.n(), "routing must terminate");
                }
                assert!(cost <= oracle.distance(u, v), "promise violated");
            }
        }
    }

    #[test]
    fn routing_is_memoryless_under_eviction() {
        // Dropping the cache mid-journey must not change the trajectory.
        let (oracle, net) = oracle_and_graph(5, 30);
        let g = net.graph();
        let (u, v) = (NodeId(0), NodeId(29));
        let mut warm = vec![u];
        let mut cur = u;
        while cur != v {
            cur = oracle.next_hop(cur, v);
            warm.push(cur);
        }
        let fresh = LandmarkOracle::build_with(g, 4);
        let mut cold = vec![u];
        let mut cur = u;
        while cur != v {
            cold.push(fresh.next_hop(cur, v));
            cur = *cold.last().unwrap();
            fresh.cache.write().clear(); // evict between every hop
        }
        assert_eq!(warm, cold);
    }

    #[test]
    fn diameter_bound_dominates_estimates() {
        let (oracle, net) = oracle_and_graph(7, 35);
        let mut max_est = 0;
        let mut true_diam = 0;
        for v in net.graph().nodes() {
            let tree = ShortestPathTree::compute(net.graph(), v);
            true_diam = true_diam.max(tree.eccentricity());
            for u in net.graph().nodes() {
                max_est = max_est.max(oracle.distance(u, v));
            }
        }
        assert!(oracle.diameter_bound() >= true_diam);
        assert!(oracle.diameter_bound() >= max_est);
    }

    #[test]
    fn cache_suffix_sharing() {
        let (oracle, _net) = oracle_and_graph(3, 30);
        assert_eq!(oracle.cached_pairs(), 0);
        let _ = oracle.next_hop(NodeId(0), NodeId(29));
        let inserted = oracle.cached_pairs();
        assert!(inserted >= 1, "first miss memoizes the whole path");
        // Hopping along the same journey is all cache hits: no growth.
        let hop = oracle.next_hop(NodeId(0), NodeId(29));
        let _ = oracle.next_hop(hop, NodeId(29));
        assert_eq!(oracle.cached_pairs(), inserted);
    }

    #[test]
    fn saturated_landmarks_on_tiny_graph() {
        // k >= n: every node becomes (or is covered at distance 0 by) a
        // landmark, so estimates are exact.
        let net = topology::random(6, 2, 3, 9);
        let oracle = LandmarkOracle::build_with(net.graph(), 16);
        assert_eq!(oracle.stretch_radius(), 0);
        for u in net.graph().nodes() {
            for v in net.graph().nodes() {
                assert_eq!(oracle.distance(u, v), net.distance(u, v));
            }
        }
    }
}
