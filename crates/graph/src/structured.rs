//! Closed-form distance and routing oracles for structured topologies.
//!
//! The paper's results target specific architectures (clique, line, grid,
//! hypercube, cluster, star, ...). For these, shortest-path distances and
//! next hops have closed forms, so the simulator and schedulers can run on
//! thousands of nodes without `O(n^2)` distance matrices. Consistency with
//! the actual generated graphs is enforced by property tests in
//! [`crate::topology`].

use crate::graph::{NodeId, Weight};
use serde::{Deserialize, Serialize};

/// A topology with closed-form shortest-path structure.
///
/// All variants describe *connected* graphs. `dist` and `next_hop` must
/// agree with Dijkstra on the corresponding generated [`crate::Graph`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Structured {
    /// Complete graph on `n` nodes, unit weights.
    Clique {
        /// Number of nodes.
        n: u32,
    },
    /// Path graph `0 - 1 - ... - n-1`, unit weights.
    Line {
        /// Number of nodes.
        n: u32,
    },
    /// Cycle on `n` nodes, unit weights.
    Ring {
        /// Number of nodes.
        n: u32,
    },
    /// d-dimensional grid with side lengths `dims`, unit weights.
    ///
    /// Node ids are mixed-radix: id = x0 + `dims[0]*(x1 + dims[1]*(x2 + ...))`.
    Grid {
        /// Side length of each dimension (each >= 1).
        dims: Vec<u32>,
    },
    /// Hypercube of dimension `dim` (`2^dim` nodes), unit weights.
    Hypercube {
        /// Dimension (number of address bits).
        dim: u32,
    },
    /// Star: central node 0, `rays` rays of `ray_len` nodes each, unit
    /// weights. Node `1 + r*ray_len + p` is position `p` (0 = innermost) on
    /// ray `r`.
    Star {
        /// Number of rays (α in the paper).
        rays: u32,
        /// Nodes per ray (β in the paper).
        ray_len: u32,
    },
    /// Cluster graph: `cliques` cliques of `clique_size` nodes (unit
    /// weights); node `c*clique_size` is the bridge of clique `c`; bridges
    /// form a complete graph with edges of weight `bridge_weight` (γ >= β).
    Cluster {
        /// Number of cliques (α in the paper).
        cliques: u32,
        /// Nodes per clique (β in the paper).
        clique_size: u32,
        /// Bridge edge weight (γ in the paper).
        bridge_weight: Weight,
    },
    /// d-dimensional torus with side lengths `dims`, unit weights.
    Torus {
        /// Side length of each dimension (each >= 1).
        dims: Vec<u32>,
    },
    /// Fog/cloud hierarchy: a complete `fanout`-ary tree with `levels`
    /// levels, ids in level order (root 0, node `i`'s parent is
    /// `(i-1)/fanout`). The edge into a child at depth `d` has weight
    /// `2^(levels-1-d)`: links near the cloud root are long-latency, links
    /// near the edge devices are fast — the latency hierarchy assumed by
    /// the fog-computing schedulers in the Busch line of work. All
    /// distances have O(levels) closed forms, so million-node instances
    /// route exactly with no Dijkstra at all.
    FogTree {
        /// Number of levels (>= 1; a single level is the lone root).
        levels: u32,
        /// Children per internal node (>= 1).
        fanout: u32,
    },
}

/// Potential of a node at depth `d` in a fog tree with `levels` levels:
/// `2^(levels-1-d)`. Climbing from depth `d` to an ancestor at depth `a`
/// costs exactly `pot(a) - pot(d)`, and the edge into a depth-`d` child
/// weighs `pot(d)` — the closed forms below are all differences of
/// potentials.
#[inline]
fn fog_pot(levels: u32, depth: u32) -> Weight {
    1u64 << (levels - 1 - depth)
}

/// Depth of node `i` in a complete `fanout`-ary tree (level-order ids).
fn fog_depth(i: u32, fanout: u32) -> u32 {
    let (mut depth, mut first, mut width) = (0u32, 0u64, 1u64);
    loop {
        if (i as u64) < first + width {
            return depth;
        }
        first += width;
        width *= fanout as u64;
        depth += 1;
    }
}

/// Parent of node `i > 0` in level order.
#[inline]
fn fog_parent(i: u32, fanout: u32) -> u32 {
    (i - 1) / fanout
}

/// Ancestor of `i` at depth `target` (requires `target <= depth(i)`).
fn fog_lift(mut i: u32, fanout: u32, mut depth: u32, target: u32) -> u32 {
    while depth > target {
        i = fog_parent(i, fanout);
        depth -= 1;
    }
    i
}

impl Structured {
    /// Number of nodes described by this topology.
    pub fn n(&self) -> usize {
        match self {
            Structured::Clique { n } | Structured::Line { n } | Structured::Ring { n } => {
                *n as usize
            }
            Structured::Grid { dims } | Structured::Torus { dims } => {
                dims.iter().map(|&d| d as usize).product()
            }
            Structured::Hypercube { dim } => 1usize << dim,
            Structured::Star { rays, ray_len } => 1 + (*rays as usize) * (*ray_len as usize),
            Structured::Cluster {
                cliques,
                clique_size,
                ..
            } => (*cliques as usize) * (*clique_size as usize),
            Structured::FogTree { levels, fanout } => {
                let (mut total, mut width) = (0usize, 1usize);
                for _ in 0..*levels {
                    total += width;
                    width *= *fanout as usize;
                }
                total
            }
        }
    }

    /// Shortest-path distance between `u` and `v`.
    pub fn dist(&self, u: NodeId, v: NodeId) -> Weight {
        if u == v {
            return 0;
        }
        match self {
            Structured::Clique { .. } => 1,
            Structured::Line { .. } => u.0.abs_diff(v.0) as Weight,
            Structured::Ring { n } => {
                let d = u.0.abs_diff(v.0);
                d.min(n - d) as Weight
            }
            Structured::Grid { dims } => {
                let a = decompose(u.0, dims);
                let b = decompose(v.0, dims);
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| x.abs_diff(y) as Weight)
                    .sum()
            }
            Structured::Torus { dims } => {
                let a = decompose(u.0, dims);
                let b = decompose(v.0, dims);
                a.iter()
                    .zip(&b)
                    .zip(dims)
                    .map(|((&x, &y), &side)| {
                        let d = x.abs_diff(y);
                        d.min(side - d) as Weight
                    })
                    .sum()
            }
            Structured::Hypercube { .. } => (u.0 ^ v.0).count_ones() as Weight,
            Structured::Star { ray_len, .. } => {
                let (ru, pu) = star_coords(u, *ray_len);
                let (rv, pv) = star_coords(v, *ray_len);
                match (ru, rv) {
                    (None, Some(_)) => pv as Weight + 1,
                    (Some(_), None) => pu as Weight + 1,
                    (Some(a), Some(b)) if a == b => pu.abs_diff(pv) as Weight,
                    (Some(_), Some(_)) => (pu + pv + 2) as Weight,
                    (None, None) => unreachable!("u == v handled above"),
                }
            }
            Structured::Cluster {
                clique_size,
                bridge_weight,
                ..
            } => {
                let (cu, iu) = (u.0 / clique_size, u.0 % clique_size);
                let (cv, iv) = (v.0 / clique_size, v.0 % clique_size);
                if cu == cv {
                    1
                } else {
                    let exit = if iu == 0 { 0 } else { 1 };
                    let enter = if iv == 0 { 0 } else { 1 };
                    exit + bridge_weight + enter
                }
            }
            Structured::FogTree { levels, fanout } => {
                let (du, dv) = (fog_depth(u.0, *fanout), fog_depth(v.0, *fanout));
                // Lift both endpoints to their LCA, tracking its depth.
                let common = du.min(dv);
                let mut a = fog_lift(u.0, *fanout, du, common);
                let mut b = fog_lift(v.0, *fanout, dv, common);
                let mut da = common;
                while a != b {
                    a = fog_parent(a, *fanout);
                    b = fog_parent(b, *fanout);
                    da -= 1;
                }
                2 * fog_pot(*levels, da) - fog_pot(*levels, du) - fog_pot(*levels, dv)
            }
        }
    }

    /// First hop on a shortest path from `u` toward `v` (`u != v`).
    ///
    /// # Panics
    /// Panics if `u == v`.
    pub fn next_hop(&self, u: NodeId, v: NodeId) -> NodeId {
        assert_ne!(u, v, "next_hop requires distinct endpoints");
        match self {
            Structured::Clique { .. } => v,
            Structured::Line { .. } => {
                if v.0 > u.0 {
                    NodeId(u.0 + 1)
                } else {
                    NodeId(u.0 - 1)
                }
            }
            Structured::Ring { n } => {
                // Move along the shorter arc; ties go in +1 direction.
                let fwd = (v.0 + n - u.0) % n; // steps going +1
                let bwd = n - fwd; // steps going -1
                if fwd <= bwd {
                    NodeId((u.0 + 1) % n)
                } else {
                    NodeId((u.0 + n - 1) % n)
                }
            }
            Structured::Grid { dims } => {
                let mut a = decompose(u.0, dims);
                let b = decompose(v.0, dims);
                for i in 0..dims.len() {
                    if a[i] < b[i] {
                        a[i] += 1;
                        return NodeId(compose(&a, dims));
                    }
                    if a[i] > b[i] {
                        a[i] -= 1;
                        return NodeId(compose(&a, dims));
                    }
                }
                unreachable!("u != v implies some coordinate differs")
            }
            Structured::Torus { dims } => {
                let mut a = decompose(u.0, dims);
                let b = decompose(v.0, dims);
                for i in 0..dims.len() {
                    if a[i] == b[i] {
                        continue;
                    }
                    let side = dims[i];
                    let fwd = (b[i] + side - a[i]) % side;
                    let bwd = side - fwd;
                    a[i] = if fwd <= bwd {
                        (a[i] + 1) % side
                    } else {
                        (a[i] + side - 1) % side
                    };
                    return NodeId(compose(&a, dims));
                }
                unreachable!("u != v implies some coordinate differs")
            }
            Structured::Hypercube { .. } => {
                let diff = u.0 ^ v.0;
                NodeId(u.0 ^ (1 << diff.trailing_zeros()))
            }
            Structured::Star { ray_len, .. } => {
                let (ru, pu) = star_coords(u, *ray_len);
                let (rv, pv) = star_coords(v, *ray_len);
                match (ru, rv) {
                    // At the center: step onto v's ray.
                    (None, Some(b)) => NodeId(1 + b * ray_len),
                    // Same ray: slide along it.
                    (Some(a), Some(b)) if a == b => {
                        let np = if pv > pu { pu + 1 } else { pu - 1 };
                        NodeId(1 + a * ray_len + np)
                    }
                    // Different ray or heading to the center: move inward.
                    (Some(a), _) => {
                        if pu == 0 {
                            NodeId(0)
                        } else {
                            NodeId(1 + a * ray_len + pu - 1)
                        }
                    }
                    (None, None) => unreachable!("u != v"),
                }
            }
            Structured::Cluster { clique_size, .. } => {
                let (cu, iu) = (u.0 / clique_size, u.0 % clique_size);
                let cv = v.0 / clique_size;
                if cu == cv {
                    v
                } else if iu != 0 {
                    // Move to our own bridge first.
                    NodeId(cu * clique_size)
                } else {
                    // We are a bridge: hop to the destination clique's
                    // bridge; then (if needed) one more hop inside.
                    let dest_bridge = NodeId(cv * clique_size);
                    if v == dest_bridge {
                        v
                    } else {
                        dest_bridge
                    }
                }
            }
            Structured::FogTree { fanout, .. } => {
                let (du, dv) = (fog_depth(u.0, *fanout), fog_depth(v.0, *fanout));
                if dv > du {
                    // If u is an ancestor of v, descend toward v; else climb.
                    let child = fog_lift(v.0, *fanout, dv, du + 1);
                    if fog_parent(child, *fanout) == u.0 {
                        return NodeId(child);
                    }
                }
                NodeId(fog_parent(u.0, *fanout))
            }
        }
    }

    /// Weight of an *existing* edge `u - v`, in O(1): every variant is
    /// unit-weight except [`Structured::Cluster`], whose inter-clique
    /// bridge edges weigh `bridge_weight`. Callers must pass an actual
    /// edge of the topology (e.g. a [`Structured::next_hop`] result);
    /// the routing layer's debug assertions cross-check against the
    /// generated graph.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Weight {
        debug_assert_ne!(u, v, "edge_weight requires distinct endpoints");
        match self {
            Structured::Cluster {
                clique_size,
                bridge_weight,
                ..
            } if u.0 / clique_size != v.0 / clique_size => *bridge_weight,
            Structured::FogTree { levels, fanout } => {
                // The deeper endpoint is the child; the edge weighs its
                // potential.
                let d = fog_depth(u.0.max(v.0), *fanout);
                fog_pot(*levels, d)
            }
            _ => 1,
        }
    }

    /// Diameter in closed form.
    pub fn diameter(&self) -> Weight {
        match self {
            Structured::Clique { n } => {
                if *n > 1 {
                    1
                } else {
                    0
                }
            }
            Structured::Line { n } => (*n as Weight).saturating_sub(1),
            Structured::Ring { n } => (*n as Weight) / 2,
            Structured::Grid { dims } => dims.iter().map(|&d| (d as Weight) - 1).sum(),
            Structured::Torus { dims } => dims.iter().map(|&d| (d as Weight) / 2).sum(),
            Structured::Hypercube { dim } => *dim as Weight,
            Structured::Star { rays, ray_len } => {
                if *rays >= 2 {
                    2 * (*ray_len as Weight)
                } else {
                    *ray_len as Weight
                }
            }
            Structured::Cluster {
                cliques,
                clique_size,
                bridge_weight,
            } => {
                if *cliques <= 1 {
                    if *clique_size > 1 {
                        1
                    } else {
                        0
                    }
                } else if *clique_size > 1 {
                    bridge_weight + 2
                } else {
                    *bridge_weight
                }
            }
            Structured::FogTree { levels, fanout } => {
                // Leaf-to-root costs pot(0) - pot(levels-1) = 2^(levels-1) - 1.
                let climb = fog_pot(*levels, 0) - 1;
                if *fanout >= 2 && *levels >= 2 {
                    2 * climb // two leaves meeting at the root
                } else {
                    climb // a path (fanout 1) or the lone root
                }
            }
        }
    }
}

/// Mixed-radix decomposition of a grid/torus node id into coordinates.
fn decompose(mut id: u32, dims: &[u32]) -> Vec<u32> {
    let mut coords = Vec::with_capacity(dims.len());
    for &d in dims {
        coords.push(id % d);
        id /= d;
    }
    debug_assert_eq!(id, 0, "node id out of range for grid dims");
    coords
}

/// Inverse of [`decompose`].
fn compose(coords: &[u32], dims: &[u32]) -> u32 {
    let mut id = 0u32;
    for i in (0..dims.len()).rev() {
        id = id * dims[i] + coords[i];
    }
    id
}

/// Star coordinates: `None` = center, `Some(ray)` with position along ray.
fn star_coords(v: NodeId, ray_len: u32) -> (Option<u32>, u32) {
    if v.0 == 0 {
        (None, 0)
    } else {
        let off = v.0 - 1;
        (Some(off / ray_len), off % ray_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(s: &Structured, mut u: NodeId, v: NodeId) -> Weight {
        // Follow next_hop and count weighted steps; must equal dist.
        let mut cost = 0;
        let mut hops = 0;
        while u != v {
            let next = s.next_hop(u, v);
            assert_ne!(next, u);
            cost += s.dist(u, next);
            u = next;
            hops += 1;
            assert!(hops <= 10_000, "routing loop detected");
        }
        cost
    }

    fn check_all_pairs(s: &Structured) {
        let n = s.n();
        for u in 0..n {
            for v in 0..n {
                let (u, v) = (NodeId(u as u32), NodeId(v as u32));
                let d = s.dist(u, v);
                assert_eq!(d, s.dist(v, u), "symmetry {u} {v}");
                if u == v {
                    assert_eq!(d, 0);
                } else {
                    assert!(d >= 1);
                    assert_eq!(walk(s, u, v), d, "walk cost mismatch {u}->{v}");
                }
            }
        }
    }

    #[test]
    fn clique_routing() {
        check_all_pairs(&Structured::Clique { n: 8 });
        assert_eq!(Structured::Clique { n: 8 }.diameter(), 1);
    }

    #[test]
    fn line_routing() {
        let s = Structured::Line { n: 9 };
        check_all_pairs(&s);
        assert_eq!(s.diameter(), 8);
        assert_eq!(s.dist(NodeId(2), NodeId(7)), 5);
    }

    #[test]
    fn ring_routing() {
        for n in [2u32, 3, 4, 5, 8, 9] {
            let s = Structured::Ring { n };
            check_all_pairs(&s);
            assert_eq!(s.diameter(), (n / 2) as Weight);
        }
    }

    #[test]
    fn grid_routing() {
        let s = Structured::Grid {
            dims: vec![3, 4, 2],
        };
        assert_eq!(s.n(), 24);
        check_all_pairs(&s);
        assert_eq!(s.diameter(), 2 + 3 + 1);
    }

    #[test]
    fn torus_routing() {
        let s = Structured::Torus { dims: vec![4, 5] };
        check_all_pairs(&s);
        assert_eq!(s.diameter(), 2 + 2);
    }

    #[test]
    fn hypercube_routing() {
        let s = Structured::Hypercube { dim: 4 };
        assert_eq!(s.n(), 16);
        check_all_pairs(&s);
        assert_eq!(s.diameter(), 4);
        assert_eq!(s.dist(NodeId(0b0000), NodeId(0b1011)), 3);
    }

    #[test]
    fn star_routing() {
        let s = Structured::Star {
            rays: 3,
            ray_len: 4,
        };
        assert_eq!(s.n(), 13);
        check_all_pairs(&s);
        assert_eq!(s.diameter(), 8);
        // Outermost on ray 0 to outermost on ray 2: 4 + 4 in.
        assert_eq!(s.dist(NodeId(4), NodeId(12)), 8);
        // Center to innermost of ray 1.
        assert_eq!(s.dist(NodeId(0), NodeId(5)), 1);
    }

    #[test]
    fn cluster_routing() {
        let s = Structured::Cluster {
            cliques: 3,
            clique_size: 4,
            bridge_weight: 6,
        };
        assert_eq!(s.n(), 12);
        check_all_pairs(&s);
        assert_eq!(s.diameter(), 8);
        // Non-bridge to non-bridge across cliques: 1 + 6 + 1.
        assert_eq!(s.dist(NodeId(1), NodeId(5)), 8);
        // Bridge to bridge: γ.
        assert_eq!(s.dist(NodeId(0), NodeId(4)), 6);
        // Same clique: 1.
        assert_eq!(s.dist(NodeId(1), NodeId(3)), 1);
    }

    #[test]
    fn cluster_degenerate_sizes() {
        check_all_pairs(&Structured::Cluster {
            cliques: 4,
            clique_size: 1,
            bridge_weight: 3,
        });
        check_all_pairs(&Structured::Cluster {
            cliques: 1,
            clique_size: 5,
            bridge_weight: 3,
        });
    }

    #[test]
    fn star_single_ray() {
        let s = Structured::Star {
            rays: 1,
            ray_len: 5,
        };
        check_all_pairs(&s);
        assert_eq!(s.diameter(), 5);
    }

    #[test]
    fn fog_tree_routing() {
        let s = Structured::FogTree {
            levels: 3,
            fanout: 2,
        };
        assert_eq!(s.n(), 7);
        check_all_pairs(&s);
        // Root-adjacent edges are heavier than leaf-adjacent ones.
        assert_eq!(s.edge_weight(NodeId(0), NodeId(1)), 2);
        assert_eq!(s.edge_weight(NodeId(1), NodeId(3)), 1);
        // Leaf 3 to leaf 5 meets at the root: 1 + 2 + 2 + 1.
        assert_eq!(s.dist(NodeId(3), NodeId(5)), 6);
        assert_eq!(s.diameter(), 6);
        // Sibling leaves meet at their shared fog node.
        assert_eq!(s.dist(NodeId(3), NodeId(4)), 2);
        check_all_pairs(&Structured::FogTree {
            levels: 4,
            fanout: 3,
        });
        check_all_pairs(&Structured::FogTree {
            levels: 2,
            fanout: 5,
        });
    }

    #[test]
    fn fog_tree_degenerate_shapes() {
        let lone = Structured::FogTree {
            levels: 1,
            fanout: 4,
        };
        assert_eq!(lone.n(), 1);
        assert_eq!(lone.diameter(), 0);
        // Fanout 1 is a weighted path 0-1-...-levels-1.
        let path = Structured::FogTree {
            levels: 4,
            fanout: 1,
        };
        assert_eq!(path.n(), 4);
        check_all_pairs(&path);
        assert_eq!(path.diameter(), 7); // 4 + 2 + 1
        assert_eq!(path.dist(NodeId(0), NodeId(3)), 7);
    }

    #[test]
    fn fog_depth_level_order() {
        for (i, d) in [(0u32, 0u32), (1, 1), (2, 1), (3, 2), (6, 2), (7, 3)] {
            assert_eq!(fog_depth(i, 2), d);
        }
        assert_eq!(fog_depth(0, 1), 0);
        assert_eq!(fog_depth(5, 1), 5);
    }

    #[test]
    fn mixed_radix_roundtrip() {
        let dims = vec![3, 4, 5];
        for id in 0..60u32 {
            assert_eq!(compose(&decompose(id, &dims), &dims), id);
        }
    }
}
