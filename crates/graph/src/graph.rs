//! The weighted, undirected communication graph `G = (V, E, w)`.
//!
//! Nodes are dense integer identifiers (`NodeId`), edges carry positive
//! integer weights (`Weight`) representing message latency in synchronous
//! time steps (Section II of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node of the communication graph.
///
/// Node identifiers are dense (`0..n`) so they can index arrays directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a node id from an array index.
    ///
    /// # Panics
    /// Panics if `index` does not fit into `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range")) // dtm-lint: allow(C1) -- documented panic: the u32 node-count bound is part of from_index's contract
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Edge weight / distance / latency, in synchronous time steps.
///
/// The paper requires `w : E -> Z+`, i.e. strictly positive integers.
pub type Weight = u64;

/// Errors raised while constructing or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is not a node of the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// Edge weights must be strictly positive (`w : E -> Z+`).
    ZeroWeight {
        /// Edge endpoints.
        edge: (NodeId, NodeId),
    },
    /// Self loops carry no information in the data-flow model.
    SelfLoop {
        /// The node with the loop.
        node: NodeId,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// Edge endpoints.
        edge: (NodeId, NodeId),
    },
    /// Schedulers and the simulator require a connected graph.
    Disconnected,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::ZeroWeight { edge } => {
                write!(f, "edge ({}, {}) has zero weight", edge.0, edge.1)
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at {node}"),
            GraphError::DuplicateEdge { edge } => {
                write!(f, "duplicate edge ({}, {})", edge.0, edge.1)
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A weighted, undirected communication graph.
///
/// Stored as an adjacency list; neighbor lists are kept sorted by node id so
/// iteration order (and therefore every algorithm built on top) is
/// deterministic.
#[derive(Clone, Serialize, Deserialize)]
pub struct Graph {
    /// `adj[v]` holds `(neighbor, weight)` pairs sorted by neighbor id.
    adj: Vec<Vec<(NodeId, Weight)>>,
    /// Number of undirected edges.
    edge_count: usize,
    /// Human-readable name, e.g. `"hypercube(d=6)"`.
    name: String,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize, name: impl Into<String>) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
            name: name.into(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Human readable name of the graph / topology instance.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// Neighbors of `v` with edge weights, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Weight of the edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let list = &self.adj[u.index()];
        list.binary_search_by_key(&v, |&(nb, _)| nb)
            .ok()
            .map(|i| list[i].1)
    }

    /// Add an undirected edge with a positive weight.
    ///
    /// Maintains sorted neighbor lists. Returns an error on self loops,
    /// duplicates, zero weights or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
        let n = self.n();
        for node in [u, v] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { edge: (u, v) });
        }
        if self.edge_weight(u, v).is_some() {
            return Err(GraphError::DuplicateEdge { edge: (u, v) });
        }
        let insert = |list: &mut Vec<(NodeId, Weight)>, nb: NodeId| {
            let pos = list.partition_point(|&(x, _)| x < nb);
            list.insert(pos, (nb, w));
        };
        insert(&mut self.adj[u.index()], v);
        insert(&mut self.adj[v.index()], u);
        self.edge_count += 1;
        Ok(())
    }

    /// Iterate over all undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = NodeId::from_index(u);
            list.iter()
                .filter(move |&&(v, _)| u < v)
                .map(move |&(v, w)| (u, v, w))
        })
    }

    /// Maximum edge weight, or `None` for an edgeless graph.
    pub fn max_edge_weight(&self) -> Option<Weight> {
        self.edges().map(|(_, _, w)| w).max()
    }

    /// Minimum edge weight, or `None` for an edgeless graph.
    pub fn min_edge_weight(&self) -> Option<Weight> {
        self.edges().map(|(_, _, w)| w).min()
    }

    /// True if all edges have the same weight (vacuously true without edges).
    ///
    /// Uniform-weight graphs admit the improved coloring of Lemma 2 /
    /// Theorem 2 of the paper.
    pub fn uniform_weight(&self) -> Option<Weight> {
        let mut it = self.edges().map(|(_, _, w)| w);
        let first = it.next()?;
        if it.all(|w| w == first) {
            Some(first)
        } else {
            None
        }
    }

    /// Check that the graph is non-empty and connected.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.n() == 0 {
            return Err(GraphError::Empty);
        }
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(())
    }

    /// Breadth-first connectivity check (weights are irrelevant here).
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return false;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &(nb, _) in &self.adj[v] {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb.index());
                }
            }
        }
        count == self.n()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("name", &self.name)
            .field("n", &self.n())
            .field("edges", &self.edge_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3, "triangle");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 3).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(1));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(1)), Some(2));
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn neighbor_lists_sorted() {
        let mut g = Graph::new(4, "t");
        g.add_edge(NodeId(0), NodeId(3), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        let nbs: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|&(v, _)| v.0).collect();
        assert_eq!(nbs, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2, "t");
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(0), 1),
            Err(GraphError::SelfLoop { node: NodeId(0) })
        );
    }

    #[test]
    fn rejects_zero_weight() {
        let mut g = Graph::new(2, "t");
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(1), 0),
            Err(GraphError::ZeroWeight {
                edge: (NodeId(0), NodeId(1))
            })
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(2, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(0), 5),
            Err(GraphError::DuplicateEdge {
                edge: (NodeId(1), NodeId(0))
            })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2, "t");
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(7), 1),
            Err(GraphError::NodeOutOfRange {
                node: NodeId(7),
                n: 2
            })
        );
    }

    #[test]
    fn detects_disconnected() {
        let mut g = Graph::new(4, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.validate(), Err(GraphError::Disconnected));
    }

    #[test]
    fn empty_graph_invalid() {
        let g = Graph::new(0, "empty");
        assert_eq!(g.validate(), Err(GraphError::Empty));
        assert!(!g.is_connected());
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn uniform_weight_detection() {
        let mut g = Graph::new(3, "t");
        g.add_edge(NodeId(0), NodeId(1), 4).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 4).unwrap();
        assert_eq!(g.uniform_weight(), Some(4));
        g.add_edge(NodeId(0), NodeId(2), 5).unwrap();
        assert_eq!(g.uniform_weight(), None);
        assert_eq!(g.max_edge_weight(), Some(5));
        assert_eq!(g.min_edge_weight(), Some(4));
    }

    #[test]
    fn single_node_graph_is_connected() {
        let g = Graph::new(1, "dot");
        assert!(g.is_connected());
        g.validate().unwrap();
        assert_eq!(g.uniform_weight(), None);
    }
}
