//! The weighted, undirected communication graph `G = (V, E, w)`.
//!
//! Nodes are dense integer identifiers (`NodeId`), edges carry positive
//! integer weights (`Weight`) representing message latency in synchronous
//! time steps (Section II of the paper).
//!
//! Storage is a flat CSR (compressed sparse row) layout: one `u32` offset
//! array of length `n + 1` plus one contiguous `(NodeId, Weight)` edge
//! array holding every node's neighbor list back to back, sorted by
//! neighbor id. This keeps a 10⁵–10⁶-node graph in two cache-friendly
//! allocations (instead of `n` separate `Vec`s) while preserving the
//! exact `neighbors() -> &[(NodeId, Weight)]` slice API and deterministic
//! iteration order every algorithm in the workspace relies on. Large
//! graphs are assembled through [`GraphBuilder`] (amortized O(1) edge
//! inserts, one O(n + m) flatten); [`Graph::add_edge`] remains as a
//! convenience for small hand-built graphs and pays an O(n + m) splice
//! per call.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node of the communication graph.
///
/// Node identifiers are dense (`0..n`) so they can index arrays directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a node id from an array index.
    ///
    /// # Panics
    /// Panics if `index` does not fit into `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range")) // dtm-lint: allow(C1) -- documented panic: the u32 node-count bound is part of from_index's contract
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Edge weight / distance / latency, in synchronous time steps.
///
/// The paper requires `w : E -> Z+`, i.e. strictly positive integers.
pub type Weight = u64;

/// Errors raised while constructing or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is not a node of the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// Edge weights must be strictly positive (`w : E -> Z+`).
    ZeroWeight {
        /// Edge endpoints.
        edge: (NodeId, NodeId),
    },
    /// Self loops carry no information in the data-flow model.
    SelfLoop {
        /// The node with the loop.
        node: NodeId,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// Edge endpoints.
        edge: (NodeId, NodeId),
    },
    /// Schedulers and the simulator require a connected graph.
    Disconnected,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::ZeroWeight { edge } => {
                write!(f, "edge ({}, {}) has zero weight", edge.0, edge.1)
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at {node}"),
            GraphError::DuplicateEdge { edge } => {
                write!(f, "duplicate edge ({}, {})", edge.0, edge.1)
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Shared edge validation for [`Graph::add_edge`] and
/// [`GraphBuilder::add_edge`]: range, self-loop and zero-weight checks in
/// the documented order (duplicates are detected against the respective
/// store afterward).
fn validate_edge(n: usize, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
    for node in [u, v] {
        if node.index() >= n {
            return Err(GraphError::NodeOutOfRange { node, n });
        }
    }
    if u == v {
        return Err(GraphError::SelfLoop { node: u });
    }
    if w == 0 {
        return Err(GraphError::ZeroWeight { edge: (u, v) });
    }
    Ok(())
}

/// A weighted, undirected communication graph in CSR form.
///
/// `offsets[v]..offsets[v + 1]` indexes node `v`'s neighbor list inside
/// the flat `edges` array; neighbor lists are kept sorted by node id so
/// iteration order (and therefore every algorithm built on top) is
/// deterministic.
#[derive(Clone, Serialize, Deserialize)]
pub struct Graph {
    /// CSR row offsets, length `n + 1`; `offsets[n]` = `2 * edge_count`.
    offsets: Vec<u32>,
    /// Flat `(neighbor, weight)` pairs, per-node runs sorted by neighbor.
    edges: Vec<(NodeId, Weight)>,
    /// Number of undirected edges.
    edge_count: usize,
    /// Maximum edge weight (0 while edgeless); kept incrementally so the
    /// Dijkstra front end can choose a bucket queue in O(1).
    max_weight: Weight,
    /// Human-readable name, e.g. `"hypercube(d=6)"`.
    name: String,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize, name: impl Into<String>) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            edges: Vec::new(),
            edge_count: 0,
            max_weight: 0,
            name: name.into(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Human readable name of the graph / topology instance.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n()).map(NodeId::from_index)
    }

    /// Neighbors of `v` with edge weights, sorted by neighbor id.
    // dtm-lint: hot-path
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, Weight)] {
        let i = v.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Weight of the edge `(u, v)`, if present.
    // dtm-lint: hot-path
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let list = self.neighbors(u);
        list.binary_search_by_key(&v, |&(nb, _)| nb)
            .ok()
            .map(|i| list[i].1)
    }

    /// Add an undirected edge with a positive weight.
    ///
    /// Maintains sorted CSR runs via an O(n + m) splice — convenient for
    /// small hand-built graphs and tests; generators assembling large
    /// graphs go through [`GraphBuilder`] instead. Returns an error on
    /// self loops, duplicates, zero weights or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
        validate_edge(self.n(), u, v, w)?;
        if self.edge_weight(u, v).is_some() {
            return Err(GraphError::DuplicateEdge { edge: (u, v) });
        }
        // Absolute insert position of each endpoint's new entry, computed
        // before either splice. Inserting the higher position first keeps
        // the lower one valid; on a tie (two empty adjacent runs at the
        // same offset) the larger node index's run starts later, so its
        // entry goes in first and ends up after the other's.
        let pos = |a: NodeId, nb: NodeId| {
            let run = self.neighbors(a);
            self.offsets[a.index()] as usize + run.partition_point(|&(x, _)| x < nb)
        };
        let pu = pos(u, v);
        let pv = pos(v, u);
        let (first, second) = if (pv, v.index()) > (pu, u.index()) {
            ((pv, (u, w)), (pu, (v, w)))
        } else {
            ((pu, (v, w)), (pv, (u, w)))
        };
        self.edges.insert(first.0, first.1);
        self.edges.insert(second.0, second.1);
        for i in 0..self.offsets.len() {
            let bump = (i > u.index()) as u32 + (i > v.index()) as u32;
            self.offsets[i] += bump;
        }
        self.edge_count += 1;
        self.max_weight = self.max_weight.max(w);
        Ok(())
    }

    /// Iterate over all undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes().flat_map(|u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&(v, _)| u < v)
                .map(move |&(v, w)| (u, v, w))
        })
    }

    /// Maximum edge weight, or `None` for an edgeless graph. O(1): the
    /// maximum is maintained as edges are added.
    pub fn max_edge_weight(&self) -> Option<Weight> {
        (self.edge_count > 0).then_some(self.max_weight)
    }

    /// Minimum edge weight, or `None` for an edgeless graph.
    pub fn min_edge_weight(&self) -> Option<Weight> {
        self.edges().map(|(_, _, w)| w).min()
    }

    /// True if all edges have the same weight (vacuously true without edges).
    ///
    /// Uniform-weight graphs admit the improved coloring of Lemma 2 /
    /// Theorem 2 of the paper.
    pub fn uniform_weight(&self) -> Option<Weight> {
        let mut it = self.edges().map(|(_, _, w)| w);
        let first = it.next()?;
        if it.all(|w| w == first) {
            Some(first)
        } else {
            None
        }
    }

    /// Check that the graph is non-empty and connected.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.n() == 0 {
            return Err(GraphError::Empty);
        }
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(())
    }

    /// Breadth-first connectivity check (weights are irrelevant here).
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return false;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &(nb, _) in self.neighbors(NodeId::from_index(v)) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb.index());
                }
            }
        }
        count == self.n()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("name", &self.name)
            .field("n", &self.n())
            .field("edges", &self.edge_count)
            .finish()
    }
}

/// Incremental assembler for large graphs: per-node sorted adjacency
/// vectors during construction (amortized O(log deg) duplicate checks,
/// O(deg) inserts), flattened into the CSR [`Graph`] by [`build`] in one
/// O(n + m) pass. Validation semantics — error variants and their
/// precedence — are identical to [`Graph::add_edge`], so generators can
/// switch between the two freely.
///
/// [`build`]: GraphBuilder::build
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    /// `adj[v]` holds `(neighbor, weight)` pairs sorted by neighbor id.
    adj: Vec<Vec<(NodeId, Weight)>>,
    edge_count: usize,
    max_weight: Weight,
    name: String,
}

impl GraphBuilder {
    /// Start a builder for a graph with `n` isolated nodes.
    pub fn new(n: usize, name: impl Into<String>) -> Self {
        GraphBuilder {
            adj: vec![Vec::new(); n],
            edge_count: 0,
            max_weight: 0,
            name: name.into(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges added so far.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Weight of the edge `(u, v)`, if already added.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let list = &self.adj[u.index()];
        list.binary_search_by_key(&v, |&(nb, _)| nb)
            .ok()
            .map(|i| list[i].1)
    }

    /// Add an undirected edge with a positive weight; same validation and
    /// errors as [`Graph::add_edge`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
        validate_edge(self.n(), u, v, w)?;
        if self.edge_weight(u, v).is_some() {
            return Err(GraphError::DuplicateEdge { edge: (u, v) });
        }
        let insert = |list: &mut Vec<(NodeId, Weight)>, nb: NodeId| {
            let pos = list.partition_point(|&(x, _)| x < nb);
            list.insert(pos, (nb, w));
        };
        insert(&mut self.adj[u.index()], v);
        insert(&mut self.adj[v.index()], u);
        self.edge_count += 1;
        self.max_weight = self.max_weight.max(w);
        Ok(())
    }

    /// Flatten into the CSR [`Graph`] (O(n + m), consumes the builder).
    pub fn build(self) -> Graph {
        let n = self.adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0u32);
        for list in &self.adj {
            edges.extend_from_slice(list);
            let total = u32::try_from(edges.len()).expect("edge array exceeds u32 offsets"); // dtm-lint: allow(C1) -- documented bound: CSR offsets are u32, so 2m must fit u32
            offsets.push(total);
        }
        Graph {
            offsets,
            edges,
            edge_count: self.edge_count,
            max_weight: self.max_weight,
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3, "triangle");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 3).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(1));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(1)), Some(2));
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn neighbor_lists_sorted() {
        let mut g = Graph::new(4, "t");
        g.add_edge(NodeId(0), NodeId(3), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        let nbs: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|&(v, _)| v.0).collect();
        assert_eq!(nbs, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2, "t");
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(0), 1),
            Err(GraphError::SelfLoop { node: NodeId(0) })
        );
    }

    #[test]
    fn rejects_zero_weight() {
        let mut g = Graph::new(2, "t");
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(1), 0),
            Err(GraphError::ZeroWeight {
                edge: (NodeId(0), NodeId(1))
            })
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(2, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(0), 5),
            Err(GraphError::DuplicateEdge {
                edge: (NodeId(1), NodeId(0))
            })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2, "t");
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(7), 1),
            Err(GraphError::NodeOutOfRange {
                node: NodeId(7),
                n: 2
            })
        );
    }

    #[test]
    fn detects_disconnected() {
        let mut g = Graph::new(4, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.validate(), Err(GraphError::Disconnected));
    }

    #[test]
    fn empty_graph_invalid() {
        let g = Graph::new(0, "empty");
        assert_eq!(g.validate(), Err(GraphError::Empty));
        assert!(!g.is_connected());
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn uniform_weight_detection() {
        let mut g = Graph::new(3, "t");
        g.add_edge(NodeId(0), NodeId(1), 4).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 4).unwrap();
        assert_eq!(g.uniform_weight(), Some(4));
        g.add_edge(NodeId(0), NodeId(2), 5).unwrap();
        assert_eq!(g.uniform_weight(), None);
        assert_eq!(g.max_edge_weight(), Some(5));
        assert_eq!(g.min_edge_weight(), Some(4));
    }

    #[test]
    fn single_node_graph_is_connected() {
        let g = Graph::new(1, "dot");
        assert!(g.is_connected());
        g.validate().unwrap();
        assert_eq!(g.uniform_weight(), None);
    }

    /// A builder-built graph is indistinguishable from the same edges
    /// spliced in one at a time: same CSR runs, same queries.
    #[test]
    fn builder_matches_incremental_splices() {
        let edges = [
            (0u32, 3u32, 2u64),
            (0, 1, 1),
            (2, 3, 4),
            (1, 3, 1),
            (0, 2, 7),
        ];
        let mut a = Graph::new(4, "t");
        let mut b = GraphBuilder::new(4, "t");
        for &(u, v, w) in &edges {
            a.add_edge(NodeId(u), NodeId(v), w).unwrap();
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
        let b = b.build();
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.max_edge_weight(), b.max_edge_weight());
        for v in a.nodes() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn builder_validation_matches_graph() {
        let mut b = GraphBuilder::new(3, "t");
        assert_eq!(
            b.add_edge(NodeId(0), NodeId(5), 1),
            Err(GraphError::NodeOutOfRange {
                node: NodeId(5),
                n: 3
            })
        );
        assert_eq!(
            b.add_edge(NodeId(1), NodeId(1), 1),
            Err(GraphError::SelfLoop { node: NodeId(1) })
        );
        assert_eq!(
            b.add_edge(NodeId(0), NodeId(1), 0),
            Err(GraphError::ZeroWeight {
                edge: (NodeId(0), NodeId(1))
            })
        );
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        assert_eq!(b.edge_weight(NodeId(1), NodeId(0)), Some(2));
        assert_eq!(
            b.add_edge(NodeId(1), NodeId(0), 2),
            Err(GraphError::DuplicateEdge {
                edge: (NodeId(1), NodeId(0))
            })
        );
        assert_eq!(b.edge_count(), 1);
    }

    /// Splice ordering edge case: inserting into empty adjacent runs must
    /// land each entry inside its own node's CSR run.
    #[test]
    fn splice_into_empty_adjacent_runs() {
        let mut g = Graph::new(5, "t");
        // First edge between two isolated interior nodes: both runs are
        // empty and share the same offset.
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        assert_eq!(g.neighbors(NodeId(2)), &[(NodeId(3), 1)]);
        assert_eq!(g.neighbors(NodeId(3)), &[(NodeId(2), 1)]);
        g.add_edge(NodeId(4), NodeId(0), 2).unwrap();
        g.add_edge(NodeId(1), NodeId(4), 3).unwrap();
        assert_eq!(g.neighbors(NodeId(0)), &[(NodeId(4), 2)]);
        assert_eq!(g.neighbors(NodeId(4)), &[(NodeId(0), 2), (NodeId(1), 3)]);
        assert_eq!(g.degree(NodeId(2)), 1);
        assert!(g.is_connected() || g.validate().is_err());
    }
}
