//! [`Network`]: a communication graph together with a distance and routing
//! oracle. This is the object schedulers and the simulator query.
//!
//! The oracle is tiered by graph size, most exact tier first:
//!
//! 1. **Structured** — closed-form answers for the paper's named
//!    topologies ([`crate::structured`]), any size.
//! 2. **Dense** (`n ≤ 256`) — an `n × n` all-pairs table built from
//!    per-target Dijkstra trees, so the hot `distance` / `next_hop` calls
//!    are two flat array reads. Byte-identical to the lazy tier.
//! 3. **Lazy trees** (`n ≤ 4096`) — one exact Dijkstra shortest-path tree
//!    per *target* node, computed on first use (routing in the data-flow
//!    model is always "toward the next requesting transaction", so trees
//!    are naturally keyed by destination).
//! 4. **Landmark** (`n > 4096`) — the approximate
//!    [`crate::oracle::LandmarkOracle`]: distances become deterministic
//!    upper bounds with additive stretch `≤ 2R`, and routing follows
//!    landmark trees with memoized paths. This is the tier that carries
//!    10⁵–10⁶-node networks.
//!
//! Tiers 1–3 agree exactly (tie-breaking included); the property tests in
//! this module and in `oracle` pin both that equivalence and the landmark
//! tier's stretch bound.

use crate::graph::{Graph, NodeId, Weight};
use crate::oracle::LandmarkOracle;
use crate::shortest_paths::ShortestPathTree;
use crate::structured::Structured;
use parking_lot::RwLock;
use std::sync::{Arc, OnceLock};

/// Largest unstructured graph for which the dense all-pairs fast path is
/// materialized (`n²` table entries; 256² × 12 bytes ≈ 0.8 MB).
const DENSE_LIMIT: usize = 256;

/// Largest unstructured graph served by exact per-target shortest-path
/// trees; beyond this the landmark oracle takes over (a full tree cache
/// would cost `O(n)` memory *per routing target*).
const LAZY_LIMIT: usize = 4096;

/// Dense all-pairs routing table, row-major by *target* node:
/// `dist[target.index() * n + from.index()]`. Built from the same
/// per-target [`ShortestPathTree`]s the lazy cache would compute, so its
/// answers (including tie-breaking) are identical by construction.
struct DenseRouting {
    n: usize,
    dist: Vec<Weight>,
    /// First hop from `from` toward `target`; `u32::MAX` on the diagonal.
    next: Vec<u32>,
}

impl DenseRouting {
    fn build(graph: &Graph) -> Self {
        let n = graph.n();
        let mut dist = vec![0; n * n];
        let mut next = vec![u32::MAX; n * n];
        for target in graph.nodes() {
            let tree = ShortestPathTree::compute(graph, target);
            let row = target.index() * n;
            for from in graph.nodes() {
                dist[row + from.index()] = tree.dist(from);
                next[row + from.index()] = tree.next_hop(from).map_or(u32::MAX, |p| p.0);
            }
        }
        DenseRouting { n, dist, next }
    }
}

/// A communication graph with a distance / routing oracle.
///
/// Cheap to clone (`Arc` internals); safe to share across threads.
#[derive(Clone)]
pub struct Network {
    inner: Arc<Inner>,
}

struct Inner {
    graph: Graph,
    structured: Option<Structured>,
    /// Lazily computed shortest-path trees, indexed by *target* node.
    trees: RwLock<Vec<Option<Arc<ShortestPathTree>>>>,
    /// Dense all-pairs fast path; `None` inside once initialized means
    /// "not applicable" (structured oracle present, or graph too large).
    dense: OnceLock<Option<DenseRouting>>,
    /// Landmark tier for graphs above [`LAZY_LIMIT`]; `None` inside once
    /// initialized means "not applicable" (exact tier in charge).
    landmark: OnceLock<Option<LandmarkOracle>>,
    diameter: OnceLock<Weight>,
}

impl Network {
    /// Wrap a validated graph. `structured` supplies closed-form answers and
    /// must describe the same graph (verified by the topology tests).
    ///
    /// # Panics
    /// Panics if the graph is empty or disconnected, or if `structured`
    /// disagrees with the graph's node count.
    pub fn new(graph: Graph, structured: Option<Structured>) -> Self {
        graph
            .validate()
            .unwrap_or_else(|e| panic!("invalid network graph {}: {e}", graph.name()));
        if let Some(s) = &structured {
            assert_eq!(
                s.n(),
                graph.n(),
                "structured oracle node count mismatch for {}",
                graph.name()
            );
        }
        let n = graph.n();
        // The per-target tree cache only serves tier 3; don't reserve a
        // slot per node on structured or landmark-scale networks.
        let tree_slots = if structured.is_some() || n > LAZY_LIMIT {
            0
        } else {
            n
        };
        Network {
            inner: Arc::new(Inner {
                graph,
                structured,
                trees: RwLock::new(vec![None; tree_slots]),
                dense: OnceLock::new(),
                landmark: OnceLock::new(),
                diameter: OnceLock::new(),
            }),
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.inner.graph.n()
    }

    /// Name of the topology instance.
    pub fn name(&self) -> &str {
        self.inner.graph.name()
    }

    /// The closed-form oracle, if this network is a structured topology.
    pub fn structured(&self) -> Option<&Structured> {
        self.inner.structured.as_ref()
    }

    /// Shortest-path distance between two nodes. Exact on structured,
    /// dense and lazy-tree tiers; on the landmark tier a deterministic
    /// upper bound within additive `2R` of the metric (see
    /// [`crate::oracle`]).
    // dtm-lint: hot-path
    pub fn distance(&self, u: NodeId, v: NodeId) -> Weight {
        if u == v {
            return 0;
        }
        if let Some(s) = &self.inner.structured {
            return s.dist(u, v);
        }
        if let Some(d) = self.dense() {
            return d.dist[v.index() * d.n + u.index()];
        }
        if let Some(lm) = self.landmark() {
            return lm.distance(u, v);
        }
        self.tree(v).dist(u)
    }

    /// First hop from `from` on a shortest path toward `target` (on the
    /// landmark tier: on the oracle's routed path, whose total cost never
    /// exceeds [`Network::distance`]).
    ///
    /// # Panics
    /// Panics if `from == target`.
    // dtm-lint: hot-path
    pub fn next_hop(&self, from: NodeId, target: NodeId) -> NodeId {
        assert_ne!(from, target, "next_hop requires distinct endpoints");
        if let Some(s) = &self.inner.structured {
            return s.next_hop(from, target);
        }
        if let Some(d) = self.dense() {
            let hop = d.next[target.index() * d.n + from.index()];
            debug_assert_ne!(hop, u32::MAX, "connected graph routes everywhere");
            return NodeId(hop);
        }
        if let Some(lm) = self.landmark() {
            return lm.next_hop(from, target);
        }
        self.tree(target)
            .next_hop(from)
            .expect("connected graph: every node routes to every target") // dtm-lint: allow(C1) -- Network::new rejects disconnected graphs, so every tree reaches every node
    }

    /// First hop from `from` toward `target` together with that edge's
    /// weight — the forward phase's per-departure query, answered in one
    /// oracle probe. On any shortest-path hop the edge weight equals the
    /// distance drop `dist(from, target) - dist(next, target)`, so no
    /// adjacency-list scan is needed.
    ///
    /// # Panics
    /// Panics if `from == target`.
    // dtm-lint: hot-path
    pub fn hop_toward(&self, from: NodeId, target: NodeId) -> (NodeId, Weight) {
        assert_ne!(from, target, "hop_toward requires distinct endpoints");
        let (next, w) = if let Some(s) = &self.inner.structured {
            let next = s.next_hop(from, target);
            (next, s.edge_weight(from, next))
        } else if let Some(d) = self.dense() {
            let row = target.index() * d.n;
            let hop = d.next[row + from.index()];
            debug_assert_ne!(hop, u32::MAX, "connected graph routes everywhere");
            (
                NodeId(hop),
                d.dist[row + from.index()] - d.dist[row + hop as usize],
            )
        } else if let Some(lm) = self.landmark() {
            // Landmark distances are estimates, so the distance-drop trick
            // does not apply; hops are tree edges, read the weight directly.
            let next = lm.next_hop(from, target);
            let w = self
                .inner
                .graph
                .edge_weight(from, next)
                .expect("landmark-routed hops follow graph edges"); // dtm-lint: allow(C1) -- oracle paths walk shortest-path-tree edges, which are graph edges by construction
            (next, w)
        } else {
            let tree = self.tree(target);
            let next = tree
                .next_hop(from)
                .expect("connected graph: every node routes to every target"); // dtm-lint: allow(C1) -- Network::new rejects disconnected graphs, so every tree reaches every node
            (next, tree.dist(from) - tree.dist(next))
        };
        debug_assert_eq!(
            Some(w),
            self.inner.graph.edge_weight(from, next),
            "distance drop along a shortest-path hop is the edge weight"
        );
        (next, w)
    }

    /// Full shortest path from `u` to `v` (inclusive endpoints).
    pub fn path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            cur = self.next_hop(cur, v);
            path.push(cur);
        }
        path
    }

    /// Graph diameter `D` (cached after first computation). Exact on
    /// structured and exact-tier networks; on the landmark tier a
    /// deterministic upper bound that also dominates every reported
    /// distance (all consumers — bucket levels, cover depth, adaptive
    /// horizons — only require an upper bound).
    pub fn diameter(&self) -> Weight {
        *self.inner.diameter.get_or_init(|| {
            if let Some(s) = &self.inner.structured {
                s.diameter()
            } else if let Some(lm) = self.landmark() {
                lm.diameter_bound()
            } else {
                crate::shortest_paths::diameter(&self.inner.graph)
            }
        })
    }

    /// The quantity `n * D` that bounds the worst sequential schedule
    /// (Lemma 3); bucket levels range up to `log2(n*D) + 1`.
    pub fn nd_product(&self) -> u64 {
        (self.n() as u64).saturating_mul(self.diameter().max(1))
    }

    /// Maximum bucket level `log2(n*D) + 1` from Lemma 3.
    pub fn max_bucket_level(&self) -> u32 {
        let nd = self.nd_product().max(1);
        // ceil(log2(nd)) + 1.
        let ceil_log = 64 - (nd - 1).leading_zeros();
        ceil_log + 1
    }

    /// Which tier answers this network's distance/next-hop queries:
    /// `"structured"` (closed-form), `"dense"` (all-pairs table),
    /// `"landmark"` (approximate oracle) or `"lazy-tree"` (on-demand
    /// shortest-path trees). Purely a function of the construction
    /// parameters — nothing is built to answer this.
    pub fn routing_tier(&self) -> &'static str {
        if self.inner.structured.is_some() {
            "structured"
        } else if self.inner.graph.n() <= DENSE_LIMIT {
            "dense"
        } else if self.inner.graph.n() > LAZY_LIMIT {
            "landmark"
        } else {
            "lazy-tree"
        }
    }

    /// Additive slack of reported distances over true shortest-path
    /// distances: `0` on the exact tiers, `2R` (twice the landmark
    /// covering radius) on the landmark tier. Forces the oracle build on
    /// first call for landmark-tier networks.
    pub fn distance_slack(&self) -> Weight {
        match self.landmark() {
            Some(lm) => lm.stretch_radius().saturating_mul(2),
            None => 0,
        }
    }

    /// The dense all-pairs table, built on first use for unstructured
    /// graphs with at most [`DENSE_LIMIT`] nodes; `None` otherwise.
    fn dense(&self) -> Option<&DenseRouting> {
        self.inner
            .dense
            .get_or_init(|| {
                (self.inner.structured.is_none() && self.inner.graph.n() <= DENSE_LIMIT)
                    .then(|| DenseRouting::build(&self.inner.graph))
            })
            .as_ref()
    }

    /// The landmark oracle, built on first use for unstructured graphs
    /// above [`LAZY_LIMIT`] nodes; `None` otherwise.
    fn landmark(&self) -> Option<&LandmarkOracle> {
        self.inner
            .landmark
            .get_or_init(|| {
                (self.inner.structured.is_none() && self.inner.graph.n() > LAZY_LIMIT)
                    .then(|| LandmarkOracle::build(&self.inner.graph))
            })
            .as_ref()
    }

    /// Shortest-path tree toward `target`, computing and caching on demand.
    fn tree(&self, target: NodeId) -> Arc<ShortestPathTree> {
        if let Some(t) = &self.inner.trees.read()[target.index()] {
            return Arc::clone(t);
        }
        let tree = Arc::new(ShortestPathTree::compute(&self.inner.graph, target));
        let mut guard = self.inner.trees.write();
        // A racing writer may have filled the slot; keep the first value.
        Arc::clone(guard[target.index()].get_or_insert(tree))
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.name())
            .field("n", &self.n())
            .field("structured", &self.inner.structured.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn weighted_path() -> Network {
        let mut g = Graph::new(4, "wpath");
        g.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 3).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 4).unwrap();
        Network::new(g, None)
    }

    #[test]
    fn distances_via_dijkstra() {
        let net = weighted_path();
        assert_eq!(net.distance(NodeId(0), NodeId(3)), 9);
        assert_eq!(net.distance(NodeId(3), NodeId(0)), 9);
        assert_eq!(net.distance(NodeId(1), NodeId(1)), 0);
    }

    #[test]
    fn path_extraction() {
        let net = weighted_path();
        assert_eq!(
            net.path(NodeId(0), NodeId(3)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(net.path(NodeId(2), NodeId(2)), vec![NodeId(2)]);
    }

    #[test]
    fn diameter_cached() {
        let net = weighted_path();
        assert_eq!(net.diameter(), 9);
        assert_eq!(net.diameter(), 9);
    }

    #[test]
    fn structured_oracle_used() {
        let mut g = Graph::new(4, "clique4");
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                g.add_edge(NodeId(u), NodeId(v), 1).unwrap();
            }
        }
        let net = Network::new(g, Some(Structured::Clique { n: 4 }));
        assert_eq!(net.distance(NodeId(0), NodeId(3)), 1);
        assert_eq!(net.next_hop(NodeId(0), NodeId(3)), NodeId(3));
        assert_eq!(net.diameter(), 1);
    }

    #[test]
    fn max_bucket_level_formula() {
        // n=4, D=9 -> nD=36, ceil(log2 36)=6, +1 = 7.
        let net = weighted_path();
        assert_eq!(net.nd_product(), 36);
        assert_eq!(net.max_bucket_level(), 7);
    }

    #[test]
    #[should_panic(expected = "invalid network graph")]
    fn rejects_disconnected() {
        let mut g = Graph::new(3, "bad");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let _ = Network::new(g, None);
    }

    #[test]
    fn dense_fast_path_matches_trees() {
        // Random weighted graph small enough for the dense table: every
        // distance/next_hop answer must equal the per-target tree's.
        let net = crate::topology::random(24, 3, 5, 42);
        assert!(net.dense().is_some(), "small unstructured graph is dense");
        for t in 0..24u32 {
            let tree = ShortestPathTree::compute(net.graph(), NodeId(t));
            for u in 0..24u32 {
                assert_eq!(net.distance(NodeId(u), NodeId(t)), tree.dist(NodeId(u)));
                if u != t {
                    assert_eq!(
                        net.next_hop(NodeId(u), NodeId(t)),
                        tree.next_hop(NodeId(u)).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn dense_fast_path_gating() {
        // Structured topologies answer via closed forms: no dense table.
        let net = crate::topology::hypercube(4);
        let _ = net.distance(NodeId(0), NodeId(5));
        assert!(net.dense().is_none());
        // Graphs above the size limit fall back to the lazy tree cache.
        let mut g = Graph::new(DENSE_LIMIT + 1, "bigpath");
        for u in 0..DENSE_LIMIT as u32 {
            g.add_edge(NodeId(u), NodeId(u + 1), 1).unwrap();
        }
        let net = Network::new(g, None);
        assert_eq!(net.distance(NodeId(0), NodeId(10)), 10);
        assert!(net.dense().is_none());
    }

    #[test]
    fn hop_toward_matches_next_hop_and_edge_weight() {
        // All three oracle backends: structured (hypercube), dense table
        // (small unstructured), lazy trees (above the dense limit).
        let nets = [
            crate::topology::hypercube(4),
            // Cluster exercises the one non-unit edge weight (γ bridges).
            crate::topology::cluster(4, 5, 9),
            crate::topology::random(24, 3, 5, 7),
            {
                let mut g = Graph::new(DENSE_LIMIT + 1, "bigpath");
                for u in 0..DENSE_LIMIT as u32 {
                    g.add_edge(NodeId(u), NodeId(u + 1), 1 + u as u64 % 3)
                        .unwrap();
                }
                Network::new(g, None)
            },
        ];
        for net in &nets {
            let n = net.n() as u32;
            for u in (0..n).step_by(5) {
                for v in (0..n).step_by(7) {
                    if u == v {
                        continue;
                    }
                    let (next, w) = net.hop_toward(NodeId(u), NodeId(v));
                    assert_eq!(next, net.next_hop(NodeId(u), NodeId(v)));
                    assert_eq!(Some(w), net.graph().edge_weight(NodeId(u), next));
                }
            }
        }
    }

    #[test]
    fn landmark_tier_activates_above_lazy_limit() {
        use crate::graph::GraphBuilder;
        let n = LAZY_LIMIT + 104;
        let mut b = GraphBuilder::new(n, "longpath");
        for u in 0..(n - 1) as u32 {
            b.add_edge(NodeId(u), NodeId(u + 1), 1 + u as u64 % 3).unwrap();
        }
        let net = Network::new(b.build(), None);
        assert!(net.dense().is_none());
        assert!(net.landmark().is_some(), "big graph uses the landmark tier");
        // On a path the true metric is the prefix-weight difference; the
        // oracle must upper-bound it within additive 2R, stay symmetric,
        // and route at a total cost within its own promise.
        let prefix: Vec<Weight> = {
            let mut p = vec![0];
            for u in 0..(n - 1) as u32 {
                let w = net.graph().edge_weight(NodeId(u), NodeId(u + 1)).unwrap();
                p.push(p[u as usize] + w);
            }
            p
        };
        let r2 = 2 * net.landmark().unwrap().stretch_radius();
        for (u, v) in [(0u32, 17u32), (4_000, 13), (900, 901), (2_048, 4_100)] {
            let truth = prefix[u.max(v) as usize] - prefix[u.min(v) as usize];
            let est = net.distance(NodeId(u), NodeId(v));
            assert!(est >= truth && est <= truth + r2, "stretch bound");
            assert_eq!(est, net.distance(NodeId(v), NodeId(u)), "symmetry");
            let (mut cur, mut cost, mut hops) = (NodeId(u), 0, 0usize);
            while cur != NodeId(v) {
                let (next, w) = net.hop_toward(cur, NodeId(v));
                assert_eq!(Some(w), net.graph().edge_weight(cur, next));
                cost += w;
                cur = next;
                hops += 1;
                assert!(hops <= n, "routing must terminate");
            }
            assert!(cost <= est, "routed cost must not exceed the promise");
            assert!(net.diameter() >= est, "diameter bound dominates");
        }
    }

    #[test]
    fn concurrent_tree_cache() {
        let net = weighted_path();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let net = net.clone();
                s.spawn(move || {
                    for t in 0..4u32 {
                        for u in 0..4u32 {
                            let _ = net.distance(NodeId(u), NodeId(t));
                        }
                    }
                });
            }
        });
        assert_eq!(net.distance(NodeId(0), NodeId(3)), 9);
    }
}

#[cfg(test)]
mod metric_tests {
    use super::*;
    use crate::topology;
    use proptest::prelude::*;

    proptest! {
        /// The distance oracle is a metric: symmetric, zero iff equal,
        /// triangle inequality — on weighted random graphs (Dijkstra path)
        /// and structured topologies (closed forms).
        #[test]
        fn distance_is_a_metric(seed in 0u64..60, topo in 0u8..4) {
            let net = match topo {
                0 => topology::random(18, 3, 5, seed),
                1 => topology::cluster(3, 3, 4),
                2 => topology::torus(&[4, 4]),
                _ => topology::star(3, 4),
            };
            let n = net.n() as u32;
            for u in 0..n {
                for v in 0..n {
                    let duv = net.distance(NodeId(u), NodeId(v));
                    prop_assert_eq!(duv, net.distance(NodeId(v), NodeId(u)));
                    prop_assert_eq!(duv == 0, u == v);
                    for w in (0..n).step_by(3) {
                        let duw = net.distance(NodeId(u), NodeId(w));
                        let dwv = net.distance(NodeId(w), NodeId(v));
                        prop_assert!(duv <= duw + dwv, "triangle violated");
                    }
                }
            }
        }

        /// Following next_hop from u to v costs exactly distance(u, v).
        #[test]
        fn routing_realizes_distances(seed in 0u64..60) {
            let net = topology::random(16, 3, 4, seed);
            let n = net.n() as u32;
            for u in 0..n {
                for v in 0..n {
                    if u == v { continue; }
                    let path = net.path(NodeId(u), NodeId(v));
                    let cost: Weight = path
                        .windows(2)
                        .map(|p| net.graph().edge_weight(p[0], p[1]).expect("edge"))
                        .sum();
                    prop_assert_eq!(cost, net.distance(NodeId(u), NodeId(v)));
                }
            }
        }
    }
}
