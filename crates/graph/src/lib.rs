//! # dtm-graph
//!
//! Weighted communication graphs for distributed transactional memory
//! scheduling, as defined in Section II of Busch, Herlihy, Popovic and
//! Sharma, *"Dynamic Scheduling in Distributed Transactional Memory"*
//! (IPDPS 2020).
//!
//! The paper models the network as a weighted graph `G = (V, E, w)` with a
//! positive integer weight function `w : E -> Z+`; sending a message over an
//! edge `e` takes `w(e)` synchronous time steps, and objects travel along
//! shortest paths. This crate provides:
//!
//! * [`Graph`] — the weighted undirected communication graph;
//! * [`shortest_paths`] — Dijkstra shortest-path trees, path extraction and
//!   diameter computation;
//! * [`Network`] — a graph plus a tiered distance / routing oracle
//!   (closed forms, dense table, lazy per-target trees, or landmark
//!   estimates), the object every scheduler and the simulator talk to;
//! * [`oracle`] — the landmark (ALT-style) approximate oracle tier that
//!   scales routing to 10⁵–10⁶-node networks;
//! * [`topology`] — generators for the specialized architectures the paper
//!   analyzes: clique, hypercube, butterfly, d-dimensional grid, line,
//!   cluster and star (plus ring, torus, tree and random graphs used as
//!   additional workloads);
//! * [`cover`] — the hierarchical sparse cover decomposition (Gupta et al.
//!   \[14\], Sharma & Busch \[28\]) required by the distributed bucket
//!   scheduler of Section V.
//!
//! # Example
//!
//! ```
//! use dtm_graph::{topology, NodeId};
//!
//! let net = topology::hypercube(4); // 16 nodes
//! assert_eq!(net.n(), 16);
//! assert_eq!(net.diameter(), 4);
//! // Closed-form routing: distances and next hops are O(1).
//! assert_eq!(net.distance(NodeId(0b0000), NodeId(0b1011)), 3);
//! let hop = net.next_hop(NodeId(0), NodeId(0b1011));
//! assert!(net.distance(hop, NodeId(0b1011)) == 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cover;
pub mod graph;
pub mod network;
pub mod oracle;
pub mod shortest_paths;
pub mod structured;
pub mod topology;

pub use cover::{Cluster, ClusterId, CoverError, Height, SparseCover};
pub use graph::{Graph, GraphError, NodeId, Weight};
pub use network::Network;
pub use oracle::LandmarkOracle;
pub use shortest_paths::ShortestPathTree;
pub use structured::Structured;
pub use topology::Topology;
