//! Dijkstra shortest-path trees, path extraction and eccentricities.
//!
//! Objects in the data-flow model travel along shortest paths (Section II),
//! so every scheduler and the simulator need distances and next-hop routing.
//! A [`ShortestPathTree`] rooted at a node `s` answers both `dist(v, s)` and
//! "first hop from `v` toward `s`" queries, which is exactly the shape
//! object routing needs (route *toward* the next requesting transaction).

use crate::graph::{Graph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel parent for the root (and unreachable nodes).
const NO_PARENT: u32 = u32::MAX;

/// A shortest-path tree rooted at `root`.
///
/// For every node `v`, `dist(v)` is the shortest-path distance from `v` to
/// the root, and `parent(v)` is the neighbor of `v` on a shortest path
/// toward the root (ties broken toward the smallest node id, so routing is
/// deterministic).
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    root: NodeId,
    dist: Vec<Weight>,
    parent: Vec<u32>,
}

impl ShortestPathTree {
    /// Run Dijkstra from `root` over the whole graph.
    ///
    /// Complexity `O((m + n) log n)` with a binary heap.
    pub fn compute(graph: &Graph, root: NodeId) -> Self {
        let n = graph.n();
        assert!(root.index() < n, "root {root} out of range");
        let mut dist = vec![Weight::MAX; n];
        let mut parent = vec![NO_PARENT; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
        dist[root.index()] = 0;
        heap.push(Reverse((0, root.0)));
        while let Some(Reverse((d, v))) = heap.pop() {
            let vi = v as usize;
            if done[vi] {
                continue;
            }
            done[vi] = true;
            for &(nb, w) in graph.neighbors(NodeId(v)) {
                let nd = d + w;
                let nbi = nb.index();
                // Strict improvement, or equal distance through a smaller
                // parent id: keeps routing deterministic across runs.
                if nd < dist[nbi] || (nd == dist[nbi] && v < parent[nbi]) {
                    dist[nbi] = nd;
                    parent[nbi] = v;
                    // An equal-distance parent swap on a settled node needs
                    // no re-push: its distance is final and its children were
                    // relaxed against that distance already.
                    if !done[nbi] {
                        heap.push(Reverse((nd, nb.0)));
                    }
                }
            }
        }
        ShortestPathTree { root, dist, parent }
    }

    /// The root of this tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Distance from `v` to the root. `Weight::MAX` if unreachable.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Weight {
        self.dist[v.index()]
    }

    /// Neighbor of `v` on a shortest path toward the root.
    ///
    /// Returns `None` for the root itself and for unreachable nodes.
    #[inline]
    pub fn next_hop(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.index()];
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// Full shortest path from `v` to the root, inclusive of both endpoints.
    ///
    /// # Panics
    /// Panics if `v` cannot reach the root.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        assert!(
            self.dist(v) != Weight::MAX,
            "{v} cannot reach root {}",
            self.root
        );
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.next_hop(cur) {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(path.last().copied(), Some(self.root));
        path
    }

    /// Eccentricity of the root: max distance from any reachable node.
    pub fn eccentricity(&self) -> Weight {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != Weight::MAX)
            .max()
            .unwrap_or(0)
    }

    /// True if every node reaches the root.
    pub fn spanning(&self) -> bool {
        self.dist.iter().all(|&d| d != Weight::MAX)
    }
}

/// All nodes within distance `radius` of `center` (inclusive), together
/// with their distances, via Dijkstra with early cut-off. Cost is
/// proportional to the ball size, not the graph size.
pub fn bounded_ball(graph: &Graph, center: NodeId, radius: Weight) -> Vec<(NodeId, Weight)> {
    let mut dist: std::collections::BTreeMap<NodeId, Weight> = std::collections::BTreeMap::new();
    let mut heap: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
    dist.insert(center, 0);
    heap.push(Reverse((0, center.0)));
    let mut out = Vec::new();
    while let Some(Reverse((d, v))) = heap.pop() {
        let v = NodeId(v);
        if dist.get(&v) != Some(&d) {
            continue; // stale entry
        }
        out.push((v, d));
        for &(nb, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd > radius {
                continue;
            }
            if dist.get(&nb).is_none_or(|&cur| nd < cur) {
                dist.insert(nb, nd);
                heap.push(Reverse((nd, nb.0)));
            }
        }
    }
    out.sort_unstable_by_key(|&(v, _)| v);
    out
}

/// Exact diameter by running Dijkstra from every node: `O(n (m+n) log n)`.
///
/// Acceptable for the graph sizes used in scheduling experiments (up to a
/// few thousand nodes); structured topologies provide closed forms instead
/// (see [`crate::structured`]).
pub fn diameter(graph: &Graph) -> Weight {
    graph
        .nodes()
        .map(|v| ShortestPathTree::compute(graph, v).eccentricity())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// 0 -1- 1 -1- 2 -1- 3 plus a heavy shortcut 0 -5- 3.
    fn path_with_shortcut() -> Graph {
        let mut g = Graph::new(4, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(3), 5).unwrap();
        g
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        let g = path_with_shortcut();
        let t = ShortestPathTree::compute(&g, NodeId(3));
        assert_eq!(t.dist(NodeId(0)), 3);
        assert_eq!(t.dist(NodeId(3)), 0);
        assert_eq!(t.path_to_root(NodeId(0)).len(), 4);
    }

    #[test]
    fn shortcut_used_when_cheaper() {
        let mut g = path_with_shortcut();
        // Make the direct edge competitive.
        let mut g2 = Graph::new(4, "t2");
        for (u, v, w) in g.edges() {
            let w = if (u, v) == (NodeId(0), NodeId(3)) {
                2
            } else {
                w
            };
            g2.add_edge(u, v, w).unwrap();
        }
        g = g2;
        let t = ShortestPathTree::compute(&g, NodeId(3));
        assert_eq!(t.dist(NodeId(0)), 2);
        assert_eq!(t.path_to_root(NodeId(0)), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn next_hop_walks_toward_root() {
        let g = path_with_shortcut();
        let t = ShortestPathTree::compute(&g, NodeId(3));
        assert_eq!(t.next_hop(NodeId(0)), Some(NodeId(1)));
        assert_eq!(t.next_hop(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.next_hop(NodeId(2)), Some(NodeId(3)));
        assert_eq!(t.next_hop(NodeId(3)), None);
    }

    #[test]
    fn unreachable_nodes_have_max_dist() {
        let mut g = Graph::new(3, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        let t = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(t.dist(NodeId(2)), Weight::MAX);
        assert_eq!(t.next_hop(NodeId(2)), None);
        assert!(!t.spanning());
    }

    #[test]
    fn diameter_of_weighted_path() {
        let mut g = Graph::new(3, "t");
        g.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 7).unwrap();
        assert_eq!(diameter(&g), 9);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths from 3 to 0: via 1 or via 2; parent must pick
        // the smaller intermediate node deterministically.
        let mut g = Graph::new(4, "diamond");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        let t = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(t.next_hop(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn tie_break_picks_smallest_id_parent_everywhere() {
        // Stacked equal-weight diamonds: 0-{1,2}-3-{4,5}-6, all weight 1.
        // Every node with several optimal predecessors must route through
        // the smallest-id one, regardless of heap pop order.
        let mut g = Graph::new(7, "diamonds");
        for (u, v) in [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ] {
            g.add_edge(NodeId(u), NodeId(v), 1).unwrap();
        }
        let t = ShortestPathTree::compute(&g, NodeId(0));
        for v in g.nodes() {
            let Some(p) = t.next_hop(v) else { continue };
            // The chosen parent lies on a shortest path...
            let w = g.edge_weight(v, p).unwrap();
            assert_eq!(t.dist(p) + w, t.dist(v), "parent of {v} not optimal");
            // ...and is the smallest-id neighbor among all optimal ones.
            let best = g
                .neighbors(v)
                .iter()
                .filter(|&&(u, w)| t.dist(u) + w == t.dist(v))
                .map(|&(u, _)| u)
                .min()
                .unwrap();
            assert_eq!(p, best, "parent of {v} not the smallest-id option");
        }
        assert_eq!(t.next_hop(NodeId(3)), Some(NodeId(1)));
        assert_eq!(t.next_hop(NodeId(6)), Some(NodeId(4)));
    }

    #[test]
    fn single_node_tree() {
        let g = Graph::new(1, "dot");
        let t = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(t.dist(NodeId(0)), 0);
        assert_eq!(t.eccentricity(), 0);
        assert!(t.spanning());
        assert_eq!(t.path_to_root(NodeId(0)), vec![NodeId(0)]);
    }
}
