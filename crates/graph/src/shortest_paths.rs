//! Dijkstra shortest-path trees, path extraction and eccentricities.
//!
//! Objects in the data-flow model travel along shortest paths (Section II),
//! so every scheduler and the simulator need distances and next-hop routing.
//! A [`ShortestPathTree`] rooted at a node `s` answers both `dist(v, s)` and
//! "first hop from `v` toward `s`" queries, which is exactly the shape
//! object routing needs (route *toward* the next requesting transaction).
//!
//! Two priority-queue backends drive the same relaxation loop: a binary
//! heap (`O((m + n) log n)`, any weights) and a Dial bucket queue
//! (`O(m + D)` for integer weights bounded by [`DIAL_MAX_WEIGHT`]) —
//! [`ShortestPathTree::compute`] picks per graph. They produce **identical
//! trees**: the parent rule "strict improvement, or equal distance through
//! a smaller parent id" (with equal-distance parent swaps allowed on
//! settled nodes) makes the chosen parent a pure function of the final
//! distance labels, independent of queue pop order — every node ends up
//! with the smallest-id neighbor among its optimal predecessors. The
//! `dial_matches_heap` property test pins this.

use crate::graph::{Graph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel parent for the root (and unreachable nodes).
const NO_PARENT: u32 = u32::MAX;

/// Largest maximum edge weight for which [`ShortestPathTree::compute`]
/// uses the Dial bucket queue (bucket ring of `C + 1` entries; beyond
/// this the empty-bucket scan cost outweighs the heap's log factor).
pub const DIAL_MAX_WEIGHT: Weight = 64;

/// A shortest-path tree rooted at `root`.
///
/// For every node `v`, `dist(v)` is the shortest-path distance from `v` to
/// the root, and `parent(v)` is the neighbor of `v` on a shortest path
/// toward the root (ties broken toward the smallest node id, so routing is
/// deterministic).
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    root: NodeId,
    dist: Vec<Weight>,
    parent: Vec<u32>,
}

impl ShortestPathTree {
    /// Run Dijkstra from `root` over the whole graph.
    ///
    /// Uses the Dial bucket queue when every edge weight is at most
    /// [`DIAL_MAX_WEIGHT`] (`O(m + D)`), the binary heap otherwise
    /// (`O((m + n) log n)`); the resulting tree is identical either way
    /// (see module docs).
    pub fn compute(graph: &Graph, root: NodeId) -> Self {
        match graph.max_edge_weight() {
            Some(c) if c <= DIAL_MAX_WEIGHT => Self::compute_dial(graph, root, c),
            _ => Self::compute_heap(graph, root),
        }
    }

    /// Binary-heap Dijkstra (any positive weights).
    pub fn compute_heap(graph: &Graph, root: NodeId) -> Self {
        let n = graph.n();
        assert!(root.index() < n, "root {root} out of range");
        let mut dist = vec![Weight::MAX; n];
        let mut parent = vec![NO_PARENT; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
        dist[root.index()] = 0;
        heap.push(Reverse((0, root.0)));
        while let Some(Reverse((d, v))) = heap.pop() {
            let vi = v as usize;
            if done[vi] {
                continue;
            }
            done[vi] = true;
            for &(nb, w) in graph.neighbors(NodeId(v)) {
                let nd = d + w;
                let nbi = nb.index();
                // Strict improvement, or equal distance through a smaller
                // parent id: keeps routing deterministic across runs.
                if nd < dist[nbi] || (nd == dist[nbi] && v < parent[nbi]) {
                    dist[nbi] = nd;
                    parent[nbi] = v;
                    // An equal-distance parent swap on a settled node needs
                    // no re-push: its distance is final and its children were
                    // relaxed against that distance already.
                    if !done[nbi] {
                        heap.push(Reverse((nd, nb.0)));
                    }
                }
            }
        }
        ShortestPathTree { root, dist, parent }
    }

    /// Dial (bucket queue) Dijkstra for integer weights bounded by `c`:
    /// a ring of `c + 1` buckets indexed by distance mod `c + 1`. Every
    /// pending label lies in `[cur, cur + c]`, so bucket residues are
    /// unambiguous; stale entries are skipped via the `done` bitmap.
    /// `O(m + D)` time, `O(n + c)` extra space.
    pub fn compute_dial(graph: &Graph, root: NodeId, c: Weight) -> Self {
        let n = graph.n();
        assert!(root.index() < n, "root {root} out of range");
        debug_assert!(graph.max_edge_weight().unwrap_or(0) <= c, "weight bound");
        let ring = c as usize + 1;
        let mut dist = vec![Weight::MAX; n];
        let mut parent = vec![NO_PARENT; n];
        let mut done = vec![false; n];
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); ring];
        let mut pending = 1usize;
        dist[root.index()] = 0;
        buckets[0].push(root.0);
        let mut cur: Weight = 0;
        while pending > 0 {
            let slot = (cur % ring as Weight) as usize;
            // Drain with swap_remove-free pops; intra-bucket order is
            // irrelevant because the parent rule is pop-order independent
            // and positive weights never relax into the current bucket.
            while let Some(v) = buckets[slot].pop() {
                pending -= 1;
                let vi = v as usize;
                if done[vi] {
                    continue; // stale label superseded by a smaller one
                }
                debug_assert_eq!(dist[vi], cur, "bucket residue resolves uniquely");
                done[vi] = true;
                for &(nb, w) in graph.neighbors(NodeId(v)) {
                    let nd = cur + w;
                    let nbi = nb.index();
                    if nd < dist[nbi] || (nd == dist[nbi] && v < parent[nbi]) {
                        dist[nbi] = nd;
                        parent[nbi] = v;
                        if !done[nbi] {
                            buckets[(nd % ring as Weight) as usize].push(nb.0);
                            pending += 1;
                        }
                    }
                }
            }
            cur += 1;
        }
        ShortestPathTree { root, dist, parent }
    }

    /// The root of this tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Distance from `v` to the root. `Weight::MAX` if unreachable.
    // dtm-lint: hot-path
    #[inline]
    pub fn dist(&self, v: NodeId) -> Weight {
        self.dist[v.index()]
    }

    /// Neighbor of `v` on a shortest path toward the root.
    ///
    /// Returns `None` for the root itself and for unreachable nodes.
    // dtm-lint: hot-path
    #[inline]
    pub fn next_hop(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.index()];
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// Full shortest path from `v` to the root, inclusive of both endpoints.
    ///
    /// # Panics
    /// Panics if `v` cannot reach the root.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        assert!(
            self.dist(v) != Weight::MAX,
            "{v} cannot reach root {}",
            self.root
        );
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.next_hop(cur) {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(path.last().copied(), Some(self.root));
        path
    }

    /// Eccentricity of the root: max distance from any reachable node.
    pub fn eccentricity(&self) -> Weight {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != Weight::MAX)
            .max()
            .unwrap_or(0)
    }

    /// True if every node reaches the root.
    pub fn spanning(&self) -> bool {
        self.dist.iter().all(|&d| d != Weight::MAX)
    }
}

/// Reusable scratch for [`bounded_ball_into`]: an epoch-stamped flat
/// distance array (O(1) amortized reset — bumping the epoch invalidates
/// every stamp at once) plus the Dijkstra heap. Repeated ball carving
/// during sparse-cover construction reuses one scratch across thousands
/// of calls, paying neither the `BTreeMap` log factor nor a fresh
/// allocation per ball.
#[derive(Clone, Debug, Default)]
pub struct BallScratch {
    /// `dist[v]` is valid iff `stamp[v] == epoch`.
    dist: Vec<Weight>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(Weight, u32)>>,
}

impl BallScratch {
    /// Fresh scratch; arrays grow to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new ball: size the arrays and invalidate old stamps.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, Weight::MAX);
            self.stamp.resize(n, u32::MAX);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == u32::MAX {
            // One-in-4-billion wrap: u32::MAX is the "never stamped"
            // sentinel, so skip it and clear any stale sentinels.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn get(&self, v: usize) -> Weight {
        if self.stamp[v] == self.epoch {
            self.dist[v]
        } else {
            Weight::MAX
        }
    }

    #[inline]
    fn set(&mut self, v: usize, d: Weight) {
        self.dist[v] = d;
        self.stamp[v] = self.epoch;
    }
}

/// All nodes within distance `radius` of `center` (inclusive), with their
/// distances, appended to `out` sorted by node id. Dijkstra with early
/// cut-off over `scratch`: cost proportional to the ball size, not the
/// graph size, and allocation-free once the scratch is warm.
pub fn bounded_ball_into(
    graph: &Graph,
    center: NodeId,
    radius: Weight,
    scratch: &mut BallScratch,
    out: &mut Vec<(NodeId, Weight)>,
) {
    out.clear();
    scratch.begin(graph.n());
    scratch.set(center.index(), 0);
    scratch.heap.push(Reverse((0, center.0)));
    while let Some(Reverse((d, v))) = scratch.heap.pop() {
        let vi = v as usize;
        if scratch.get(vi) != d {
            continue; // stale entry
        }
        out.push((NodeId(v), d));
        for &(nb, w) in graph.neighbors(NodeId(v)) {
            let nd = d + w;
            if nd > radius {
                continue;
            }
            if nd < scratch.get(nb.index()) {
                scratch.set(nb.index(), nd);
                scratch.heap.push(Reverse((nd, nb.0)));
            }
        }
    }
    out.sort_unstable_by_key(|&(v, _)| v);
}

/// Convenience wrapper over [`bounded_ball_into`] with a throwaway
/// scratch. Callers issuing many balls (cover construction) should hold
/// a [`BallScratch`] and call the `_into` form directly.
pub fn bounded_ball(graph: &Graph, center: NodeId, radius: Weight) -> Vec<(NodeId, Weight)> {
    let mut scratch = BallScratch::new();
    let mut out = Vec::new();
    bounded_ball_into(graph, center, radius, &mut scratch, &mut out);
    out
}

/// Exact diameter by running Dijkstra from every node: `O(n (m+n) log n)`.
///
/// Acceptable for the graph sizes used in scheduling experiments (up to a
/// few thousand nodes); structured topologies provide closed forms and
/// the landmark oracle tier an estimate instead (see [`crate::structured`]
/// and [`crate::oracle`]).
pub fn diameter(graph: &Graph) -> Weight {
    graph
        .nodes()
        .map(|v| ShortestPathTree::compute(graph, v).eccentricity())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// 0 -1- 1 -1- 2 -1- 3 plus a heavy shortcut 0 -5- 3.
    fn path_with_shortcut() -> Graph {
        let mut g = Graph::new(4, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(3), 5).unwrap();
        g
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        let g = path_with_shortcut();
        let t = ShortestPathTree::compute(&g, NodeId(3));
        assert_eq!(t.dist(NodeId(0)), 3);
        assert_eq!(t.dist(NodeId(3)), 0);
        assert_eq!(t.path_to_root(NodeId(0)).len(), 4);
    }

    #[test]
    fn shortcut_used_when_cheaper() {
        let mut g = path_with_shortcut();
        // Make the direct edge competitive.
        let mut g2 = Graph::new(4, "t2");
        for (u, v, w) in g.edges() {
            let w = if (u, v) == (NodeId(0), NodeId(3)) {
                2
            } else {
                w
            };
            g2.add_edge(u, v, w).unwrap();
        }
        g = g2;
        let t = ShortestPathTree::compute(&g, NodeId(3));
        assert_eq!(t.dist(NodeId(0)), 2);
        assert_eq!(t.path_to_root(NodeId(0)), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn next_hop_walks_toward_root() {
        let g = path_with_shortcut();
        let t = ShortestPathTree::compute(&g, NodeId(3));
        assert_eq!(t.next_hop(NodeId(0)), Some(NodeId(1)));
        assert_eq!(t.next_hop(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.next_hop(NodeId(2)), Some(NodeId(3)));
        assert_eq!(t.next_hop(NodeId(3)), None);
    }

    #[test]
    fn unreachable_nodes_have_max_dist() {
        let mut g = Graph::new(3, "t");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        for t in [
            ShortestPathTree::compute(&g, NodeId(0)),
            ShortestPathTree::compute_heap(&g, NodeId(0)),
            ShortestPathTree::compute_dial(&g, NodeId(0), 1),
        ] {
            assert_eq!(t.dist(NodeId(2)), Weight::MAX);
            assert_eq!(t.next_hop(NodeId(2)), None);
            assert!(!t.spanning());
        }
    }

    #[test]
    fn diameter_of_weighted_path() {
        let mut g = Graph::new(3, "t");
        g.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 7).unwrap();
        assert_eq!(diameter(&g), 9);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths from 3 to 0: via 1 or via 2; parent must pick
        // the smaller intermediate node deterministically.
        let mut g = Graph::new(4, "diamond");
        g.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        let t = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(t.next_hop(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn tie_break_picks_smallest_id_parent_everywhere() {
        // Stacked equal-weight diamonds: 0-{1,2}-3-{4,5}-6, all weight 1.
        // Every node with several optimal predecessors must route through
        // the smallest-id one, regardless of queue pop order — in both
        // queue backends.
        let mut g = Graph::new(7, "diamonds");
        for (u, v) in [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ] {
            g.add_edge(NodeId(u), NodeId(v), 1).unwrap();
        }
        for t in [
            ShortestPathTree::compute_heap(&g, NodeId(0)),
            ShortestPathTree::compute_dial(&g, NodeId(0), 1),
        ] {
            for v in g.nodes() {
                let Some(p) = t.next_hop(v) else { continue };
                // The chosen parent lies on a shortest path...
                let w = g.edge_weight(v, p).unwrap();
                assert_eq!(t.dist(p) + w, t.dist(v), "parent of {v} not optimal");
                // ...and is the smallest-id neighbor among all optimal ones.
                let best = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&(u, w)| t.dist(u) + w == t.dist(v))
                    .map(|&(u, _)| u)
                    .min()
                    .unwrap();
                assert_eq!(p, best, "parent of {v} not the smallest-id option");
            }
            assert_eq!(t.next_hop(NodeId(3)), Some(NodeId(1)));
            assert_eq!(t.next_hop(NodeId(6)), Some(NodeId(4)));
        }
    }

    #[test]
    fn single_node_tree() {
        let g = Graph::new(1, "dot");
        let t = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(t.dist(NodeId(0)), 0);
        assert_eq!(t.eccentricity(), 0);
        assert!(t.spanning());
        assert_eq!(t.path_to_root(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn ball_scratch_reuse_across_calls() {
        let g = path_with_shortcut();
        let mut scratch = BallScratch::new();
        let mut out = Vec::new();
        bounded_ball_into(&g, NodeId(0), 2, &mut scratch, &mut out);
        assert_eq!(out, vec![(NodeId(0), 0), (NodeId(1), 1), (NodeId(2), 2)]);
        // Second ball from a different center on the same scratch: stale
        // stamps from the first ball must be invisible.
        bounded_ball_into(&g, NodeId(3), 1, &mut scratch, &mut out);
        assert_eq!(out, vec![(NodeId(2), 1), (NodeId(3), 0)]);
        // Radius 0 = just the center.
        bounded_ball_into(&g, NodeId(1), 0, &mut scratch, &mut out);
        assert_eq!(out, vec![(NodeId(1), 0)]);
    }

    #[test]
    fn bounded_ball_matches_tree_distances() {
        let g = path_with_shortcut();
        let ball = bounded_ball(&g, NodeId(0), 3);
        let tree = ShortestPathTree::compute(&g, NodeId(0));
        assert_eq!(ball.len(), 4);
        for (v, d) in ball {
            assert_eq!(d, tree.dist(v));
        }
    }
}

#[cfg(test)]
mod dial_tests {
    use super::*;
    use crate::topology;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Dial and heap Dijkstra produce byte-identical trees (distances
        /// AND parents) on random weighted graphs — the guarantee that
        /// lets `compute` switch backends without perturbing any golden
        /// trace.
        #[test]
        fn dial_matches_heap(seed in 0u64..60, n in 2u32..40, w in 1u64..6) {
            let net = topology::random(n, 3, w, seed);
            let g = net.graph();
            let c = g.max_edge_weight().unwrap();
            for root in g.nodes() {
                let a = ShortestPathTree::compute_heap(g, root);
                let b = ShortestPathTree::compute_dial(g, root, c);
                for v in g.nodes() {
                    prop_assert_eq!(a.dist(v), b.dist(v));
                    prop_assert_eq!(a.next_hop(v), b.next_hop(v));
                }
            }
        }

        /// Balls computed through the epoch-stamped scratch agree with a
        /// full tree truncated at the radius.
        #[test]
        fn bounded_ball_matches_truncated_tree(seed in 0u64..40, n in 2u32..30, r in 0u64..12) {
            let net = topology::random(n, 3, 4, seed);
            let g = net.graph();
            let mut scratch = BallScratch::new();
            let mut out = Vec::new();
            for center in g.nodes() {
                bounded_ball_into(g, center, r, &mut scratch, &mut out);
                let tree = ShortestPathTree::compute(g, center);
                let expect: Vec<(NodeId, Weight)> = g
                    .nodes()
                    .filter(|&v| tree.dist(v) <= r)
                    .map(|v| (v, tree.dist(v)))
                    .collect();
                prop_assert_eq!(&out, &expect);
            }
        }
    }
}
